#!/usr/bin/env python3
"""Regenerate ``benchmarks/manifests/scaling.json`` — the committed
scaling-family sweep manifest used by ``repro sweep``, ``make
sweep-smoke`` and the sweep benchmark.

The manifest is a plain materialisation of
:func:`repro.batch.scaling_items`; committing it keeps the CLI
acceptance path (``repro sweep benchmarks/manifests/scaling.json``)
free of any generator dependency, while this script keeps the file
honest when the family definition changes.

Usage: ``PYTHONPATH=src python tools/gen_scaling_manifest.py``
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.batch import scaling_items  # noqa: E402

SIZES = (4, 8, 16, 32)
TARGET = ROOT / "benchmarks" / "manifests" / "scaling.json"


def main() -> int:
    items = [
        {
            "name": item.name,
            "source": item.source,
            "include_io": item.include_io,
            "engine": item.engine,
        }
        for item in scaling_items(sizes=SIZES)
    ]
    TARGET.parent.mkdir(parents=True, exist_ok=True)
    TARGET.write_text(
        json.dumps({"items": items}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {len(items)} item(s) to {TARGET}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
