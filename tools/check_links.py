#!/usr/bin/env python3
"""Fail on broken intra-repo Markdown links (the CI docs job).

Scans every tracked ``*.md`` file for inline links and reference
definitions, resolves relative targets against the linking file, and
exits non-zero listing any target that does not exist.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
skipped — this gate is about repo-internal rot, not the internet.

Usage: ``python tools/check_links.py [root]`` (root defaults to the
repository root, i.e. the parent of this file's directory).
"""

from __future__ import annotations

import pathlib
import re
import sys

# [text](target) — stop at the first unescaped closing paren; and
# [ref]: target reference-style definitions at line start.
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}
# Machine-extracted documents whose links point at assets that were
# never part of the repo (figure scans from the related-work dump).
SKIP_FILES = {"PAPERS.md"}


def markdown_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if path.name in SKIP_FILES:
            continue
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def link_targets(text: str):
    for pattern in (INLINE, REFERENCE):
        for match in pattern.finditer(text):
            yield match.group(1)


def check(root: pathlib.Path):
    broken = []
    for source in markdown_files(root):
        for target in link_targets(source.read_text(encoding="utf-8")):
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = source.parent / path_part
            if not resolved.exists():
                broken.append(
                    f"{source.relative_to(root)}: broken link -> {target}"
                )
    return broken


def main() -> int:
    root = (
        pathlib.Path(sys.argv[1]).resolve()
        if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent
    )
    broken = check(root)
    for line in broken:
        print(line)
    if broken:
        print(f"{len(broken)} broken intra-repo Markdown link(s)")
        return 1
    count = sum(1 for _ in markdown_files(root))
    print(f"OK: no broken intra-repo links in {count} Markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
