#!/usr/bin/env python3
"""Fail on missing module/public-definition docstrings (``make verify``).

The service and batch subsystems are operated, not just imported — an
undocumented public function there is an operations gap, not a style
nit.  This gate walks the enforced trees with :mod:`ast` and exits
non-zero listing every module, public function, public class, or
public method that has no docstring.

"Public" follows the usual convention: names not starting with ``_``.
Nested (function-local) definitions are skipped — they are
implementation detail — as are ``__dunder__`` methods other than
``__init__`` on dataclass-free classes (dunders inherit well-known
contracts).  Property setters and ``@overload`` stubs carry no new
contract and are skipped too.

Usage: ``python tools/docstring_lint.py [path ...]`` (defaults to the
enforced trees: ``src/repro/service`` and ``src/repro/batch``).
"""

from __future__ import annotations

import ast
import pathlib
import sys

#: The trees where docstrings are load-bearing (see module docstring).
DEFAULT_TARGETS = ("src/repro/service", "src/repro/batch")


def is_public(name: str) -> bool:
    return not name.startswith("_")


def is_skippable(node: ast.AST) -> bool:
    """Decorated defs whose docstring would duplicate the wrapped
    contract: property setters/deleters and typing overloads."""
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Attribute) and decorator.attr in (
            "setter",
            "deleter",
        ):
            return True
        if isinstance(decorator, ast.Name) and decorator.id == "overload":
            return True
    return False


def missing_docstrings(path: pathlib.Path):
    """Yield ``(lineno, kind, qualname)`` for every offender in a file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    if ast.get_docstring(tree) is None:
        yield 1, "module", path.stem

    def walk(nodes, prefix: str, depth: int):
        for node in nodes:
            if isinstance(node, ast.ClassDef):
                if is_public(node.name):
                    qual = f"{prefix}{node.name}"
                    if ast.get_docstring(node) is None:
                        yield node.lineno, "class", qual
                    yield from walk(node.body, f"{qual}.", depth + 1)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if depth > 1:
                    continue  # function-local defs are implementation
                if not is_public(node.name) or is_skippable(node):
                    continue
                if ast.get_docstring(node) is None:
                    kind = "method" if prefix else "function"
                    yield node.lineno, kind, f"{prefix}{node.name}"

    yield from walk(tree.body, "", 0)


def python_files(target: pathlib.Path):
    if target.is_file():
        yield target
        return
    yield from sorted(target.rglob("*.py"))


def main(argv) -> int:
    """Lint the given paths (or the default trees); 0 = clean."""
    root = pathlib.Path(__file__).resolve().parent.parent
    targets = [pathlib.Path(arg) for arg in argv] or [
        root / target for target in DEFAULT_TARGETS
    ]
    offenders = []
    checked = 0
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
        for path in python_files(target):
            checked += 1
            for lineno, kind, qualname in missing_docstrings(path):
                offenders.append((path, lineno, kind, qualname))
    if offenders:
        print(f"{len(offenders)} missing docstring(s):")
        for path, lineno, kind, qualname in offenders:
            try:
                shown = path.relative_to(root)
            except ValueError:
                shown = path
            print(f"  {shown}:{lineno}: {kind} {qualname}")
        return 1
    print(f"docstring lint: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
