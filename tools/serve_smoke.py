#!/usr/bin/env python3
"""End-to-end smoke for ``repro serve`` (the ``make serve-smoke`` gate).

Boots the real server as a subprocess on an ephemeral port, then
checks the operational contract an instance must honour:

1. ``GET /healthz`` answers 200 with ``status: ok``;
2. ``POST /v1/compile`` (cold) answers 200 with ``X-Cache: miss`` and
   a body byte-identical to ``repro compile``'s stdout for the same
   loop — the service's core contract;
3. the same request again answers from the cache (``X-Cache: hit``)
   with identical bytes;
4. ``GET /metrics`` parses as OpenMetrics and carries the request
   counters;
5. ``SIGTERM`` drains cleanly: the process exits 0 within the grace.

Usage: ``python tools/serve_smoke.py [loop-file]`` (defaults to
``examples/l1.loop``).  Exits non-zero with a diagnostic on the first
violated check.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def http(port: int, method: str, path: str, payload=None):
    """One HTTP exchange against the booted server (stdlib sockets,
    so the smoke exercises the same framing clients will)."""
    body = json.dumps(payload).encode() if payload is not None else b""
    head = [f"{method} {path} HTTP/1.1", "Host: smoke", "Connection: close"]
    if body:
        head.append(f"Content-Length: {len(body)}")
    request = ("\r\n".join(head) + "\r\n\r\n").encode() + body
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(request)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    headtext, _, response_body = data.partition(b"\r\n\r\n")
    lines = headtext.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, response_body


def main() -> int:
    """Run the five checks; 0 only when every one holds."""
    loop_file = sys.argv[1] if len(sys.argv) > 1 else str(
        ROOT / "examples" / "l1.loop"
    )
    source = pathlib.Path(loop_file).read_text(encoding="utf-8")

    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env.pop("REPRO_CACHE", None)

    expected = subprocess.run(
        [sys.executable, "-m", "repro", "compile", loop_file, "--no-cache"],
        capture_output=True,
        env=env,
        timeout=300,
    )
    if expected.returncode != 0:
        fail(f"repro compile failed: {expected.stderr.decode()[:200]}")

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "2",
                "--cache-dir", str(pathlib.Path(tmp) / "cache"),
                "--drain-grace", "10",
            ],
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            port = None
            while time.monotonic() < deadline:
                line = process.stderr.readline()
                if "listening on" in line:
                    port = int(line.rsplit(":", 1)[1])
                    break
            if port is None:
                fail("server never announced its port")

            status, _, body = http(port, "GET", "/healthz")
            if status != 200 or json.loads(body)["status"] != "ok":
                fail(f"healthz: status={status} body={body[:120]!r}")
            print(f"serve-smoke: healthz ok on port {port}")

            status, headers, body = http(
                port, "POST", "/v1/compile", {"source": source}
            )
            if status != 200:
                fail(f"cold compile: status={status} body={body[:200]!r}")
            if headers.get("x-cache") != "miss":
                fail(f"cold compile: X-Cache={headers.get('x-cache')!r}")
            if body != expected.stdout:
                fail("cold compile body differs from `repro compile` stdout")
            print(f"serve-smoke: cold compile byte-identical ({len(body)} bytes)")

            status, headers, warm = http(
                port, "POST", "/v1/compile", {"source": source}
            )
            if status != 200 or headers.get("x-cache") != "hit":
                fail(f"warm compile: status={status} X-Cache={headers.get('x-cache')!r}")
            if warm != expected.stdout:
                fail("warm compile body differs from `repro compile` stdout")
            print("serve-smoke: warm compile served from cache, same bytes")

            status, _, body = http(port, "GET", "/metrics")
            if status != 200:
                fail(f"metrics: status={status}")
            sys.path.insert(0, str(ROOT / "src"))
            from repro.obs import parse_exposition

            parse_exposition(body.decode("utf-8"))
            if b"service_requests_compile_total" not in body:
                fail("metrics: request counters missing from exposition")
            print("serve-smoke: metrics exposition is valid OpenMetrics")

            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            if code != 0:
                fail(f"SIGTERM drain exited {code}")
            print("serve-smoke: SIGTERM drained cleanly")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
    print("serve-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
