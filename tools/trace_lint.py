#!/usr/bin/env python3
"""Validate a merged Chrome/Perfetto span trace (the CI trace gate).

``repro sweep --trace`` writes the merged cross-process trace of a
sweep; this linter checks that the file is something a trace viewer —
and our own tooling — can actually use:

* the document parses (truncation is tolerated, like Chrome's loader,
  but is reported and fails under ``--strict``);
* every event carries the required trace-event fields for its phase
  type, with sane types (integer ``ts``/``dur``, non-negative ``dur``);
* every ``pid`` that owns span slices has ``process_name`` metadata
  (the lane is labeled), and the ``otherData.lanes`` table agrees;
* span slices carry the identity triple (``args.span_id``, a
  ``parent_id`` key, ``status``) and share one ``trace_id`` when the
  document declares one;
* non-metadata events are sorted by ``(ts, pid)`` — the determinism
  contract of :func:`repro.obs.trace_merge.merge_traces`;
* with ``--require-lanes N``: at least N lanes are named ``worker-*``
  (one per sweep worker; the parent lane does not count).

Usage: ``python tools/trace_lint.py TRACE.json [--require-lanes N]
[--strict]``.  Exits non-zero listing every violation.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.trace import load_trace_events  # noqa: E402

#: Fields every trace event must carry, by phase type.
_REQUIRED_COMMON = ("name", "ph", "pid")


def lint_trace(path, require_lanes=0, strict=False):
    """Return a list of violation strings (empty = clean)."""
    problems = []
    try:
        events, truncated = load_trace_events(path)
    except (OSError, UnicodeDecodeError) as error:
        return [f"unreadable trace: {error}"]
    if truncated:
        message = "document is truncated (recovered complete events only)"
        if strict:
            problems.append(message)
        else:
            print(f"note: {message}", file=sys.stderr)
    if not events:
        return problems + ["trace holds no events"]

    lane_names = {}
    span_pids = set()
    last_key = None
    for index, event in enumerate(events):
        where = f"event #{index}"
        for field in _REQUIRED_COMMON:
            if field not in event:
                problems.append(f"{where}: missing field {field!r}")
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "process_name":
                lane_names[event.get("pid")] = (
                    event.get("args", {}).get("name")
                )
            continue
        ts = event.get("ts")
        if not isinstance(ts, int):
            problems.append(f"{where}: non-integer ts {ts!r}")
            continue
        key = (ts, event.get("pid", 0))
        if last_key is not None and key < last_key:
            problems.append(
                f"{where}: out of order — (ts, pid) {key} after {last_key}"
            )
        last_key = key
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if event.get("cat") == "span":
            span_pids.add(event.get("pid"))
            args = event.get("args", {})
            if not args.get("span_id"):
                problems.append(f"{where}: span slice without span_id")
            if "parent_id" not in args:
                problems.append(f"{where}: span slice without parent_id key")
            if "status" not in args:
                problems.append(f"{where}: span slice without status")

    for pid in sorted(span_pids, key=str):
        if pid not in lane_names:
            problems.append(f"pid {pid} owns spans but has no process_name")

    # otherData checks need the full document; skip them for truncated
    # or bare-array traces, where otherData never made it to disk.
    document = _full_document(path)
    if document is not None:
        other = document.get("otherData", {})
        declared = other.get("lanes")
        if isinstance(declared, dict):
            actual = {str(pid): name for pid, name in lane_names.items()}
            if declared != actual:
                problems.append(
                    f"otherData.lanes {declared} disagrees with "
                    f"process_name metadata {actual}"
                )
        if span_pids and not other.get("trace_id"):
            problems.append("merged span trace without otherData.trace_id")

    if require_lanes:
        workers = [
            name
            for name in lane_names.values()
            if isinstance(name, str) and name.startswith("worker-")
        ]
        if len(workers) < require_lanes:
            problems.append(
                f"expected >= {require_lanes} worker lane(s), found "
                f"{len(workers)}: {sorted(workers)}"
            )
    return problems


def _full_document(path):
    import json

    try:
        document = json.loads(
            pathlib.Path(path).read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="merged Chrome trace file to lint")
    parser.add_argument(
        "--require-lanes",
        type=int,
        default=0,
        metavar="N",
        help="fail unless >= N lanes are named worker-*",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat a truncated document as a failure",
    )
    args = parser.parse_args(argv)
    problems = lint_trace(
        args.trace, require_lanes=args.require_lanes, strict=args.strict
    )
    if problems:
        for problem in problems:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        print(f"{len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"{args.trace}: trace is lint-clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
