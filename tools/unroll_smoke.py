#!/usr/bin/env python3
"""End-to-end smoke for rate-optimal unrolling (``make unroll-smoke``).

Drives the real CLI (``repro compile --unroll auto``) over two loops
whose optimal rate γ is a genuine fraction p/q with q > 1, and checks
the closed-gap contract from the emitted payloads:

1. ``examples/interleave.loop`` — ack-bound at 1/3 under ``U = 1``,
   dependence bound γ* = 2/3; ``--unroll auto`` must pick ``U = 2``
   and report an achieved per-base-iteration rate of *exactly* 2/3
   (Fraction equality, not float tolerance);
2. ``examples/frac5.loop`` — natively fractional γ = 2/5 reached by
   the 2-periodic base schedule, so ``auto`` must keep ``U = 1`` and
   still report achieved == γ* exactly;
3. every payload is schema 2 and carries ``unroll``,
   ``achieved_rate`` and ``dependence_bound``;
4. an out-of-range factor (``--unroll 0``) must exit non-zero with a
   diagnostic, not a traceback.

Prints the closure table for the two loops on success.  Exits
non-zero with a diagnostic on the first violated check.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
from fractions import Fraction

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.report import render_rate_closure  # noqa: E402

#: loop file -> (expected U, expected achieved == γ* as a Fraction)
EXPECTED = {
    "examples/interleave.loop": (2, Fraction(2, 3)),
    "examples/frac5.loop": (1, Fraction(2, 5)),
}


def fail(message: str) -> None:
    print(f"unroll-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    """One ``repro`` invocation through the same entry point users hit."""
    env_src = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


def compile_payload(loop: str, *extra: str) -> dict:
    proc = run_cli("compile", loop, *extra)
    if proc.returncode != 0:
        fail(f"`repro compile {loop} {' '.join(extra)}` exited "
             f"{proc.returncode}:\n{proc.stderr}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as error:
        fail(f"{loop}: stdout is not JSON ({error})")
        raise AssertionError  # unreachable; keeps the type checker honest


def main() -> None:
    rows = []
    for loop, (expected_u, bound) in EXPECTED.items():
        base = compile_payload(loop)
        payload = compile_payload(loop, "--unroll", "auto")

        if payload.get("payload_schema") != 2:
            fail(f"{loop}: expected payload_schema 2, got "
                 f"{payload.get('payload_schema')!r}")
        for key in ("unroll", "achieved_rate", "dependence_bound"):
            if key not in payload:
                fail(f"{loop}: payload is missing {key!r}")

        achieved = Fraction(payload["achieved_rate"])
        gamma = Fraction(payload["dependence_bound"])
        if gamma.denominator <= 1:
            fail(f"{loop}: γ* = {gamma} is not fractional — the smoke "
                 "needs denominator > 1 to prove exactness")
        if gamma != bound:
            fail(f"{loop}: expected γ* = {bound}, got {gamma}")
        if payload["unroll"] != expected_u:
            fail(f"{loop}: auto picked U = {payload['unroll']}, "
                 f"expected U = {expected_u}")
        if achieved != gamma:
            fail(f"{loop}: achieved {achieved} != optimal {gamma} — the "
                 "rate gap is open")

        rows.append({
            "loop": pathlib.Path(loop).stem,
            "base_rate": Fraction(base["achieved_rate"]),
            "dependence_bound": gamma,
            "unroll": payload["unroll"],
            "achieved_rate": achieved,
        })

    # a rejected factor must be a clean diagnostic, never a traceback
    proc = run_cli("compile", "examples/interleave.loop", "--unroll", "0")
    if proc.returncode == 0:
        fail("`--unroll 0` was accepted; it must be rejected")
    if "Traceback" in proc.stderr:
        fail(f"`--unroll 0` crashed with a traceback:\n{proc.stderr}")

    print(render_rate_closure(
        rows, title="unroll-smoke: achieved == optimal (Fraction-exact)"
    ))
    print("unroll-smoke: OK")


if __name__ == "__main__":
    main()
