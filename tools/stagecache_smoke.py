#!/usr/bin/env python3
"""End-to-end smoke for the staged compiler core
(``make stagecache-smoke``).

Drives the real CLI over a temporary cache directory and checks the
per-stage artifact cache contract end to end:

1. ``repro compile --unroll auto`` on ``examples/interleave.loop``
   (cold) and then ``--unroll 2`` (the resolved factor) against the
   same cache directory must emit payloads that agree on every shared
   fact — the second run is served from upstream artifacts;
2. the stage store exists on disk (``<cache>/stages/<stage>/…``) and
   holds one artifact per cacheable stage after the cold compile;
3. a warm ``repro sweep`` over the same cache reports per-item cache
   hits AND the byte-identical merged payload of a cold sweep in a
   fresh directory;
4. a sweep containing a broken loop names the failing stage in its
   error record (``"stage": "parse"``);
5. ``repro compile`` of a broken loop prints ``failing stage: parse``
   to stderr and exits non-zero, without a traceback.

Prints a short summary on success.  Exits non-zero with a diagnostic
on the first violated check.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
LOOP = "examples/interleave.loop"

#: stages every cold core compile must persist (no SCP, verify on)
EXPECTED_STAGES = {
    "parse",
    "translate",
    "rate_analysis",
    "unroll",
    "build_pn",
    "simulate",
    "extract_kernel",
    "rate",
    "verify",
}


def fail(message: str) -> None:
    print(f"stagecache-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    """One ``repro`` invocation through the same entry point users hit."""
    env_src = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


def compile_payload(loop: str, *extra: str) -> dict:
    proc = run_cli("compile", loop, *extra)
    if proc.returncode != 0:
        fail(f"`repro compile {loop} {' '.join(extra)}` exited "
             f"{proc.returncode}:\n{proc.stderr}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as error:
        fail(f"{loop}: stdout is not JSON ({error})")
        raise AssertionError  # unreachable; keeps the type checker honest


def check_upstream_reuse(cache: pathlib.Path) -> dict:
    auto = compile_payload(LOOP, "--abstract", "--unroll", "auto",
                           "--cache-dir", str(cache))
    factor = auto.get("unroll")
    if not isinstance(factor, int) or factor <= 1:
        fail(f"{LOOP}: auto should resolve a factor > 1, got {factor!r}")

    stage_root = cache / "stages"
    if not stage_root.is_dir():
        fail(f"stage store {stage_root} was not created")
    populated = {p.name for p in stage_root.iterdir() if any(p.iterdir())}
    missing = EXPECTED_STAGES - populated
    if missing:
        fail(f"stage store is missing artifacts for: {sorted(missing)}")

    explicit = compile_payload(LOOP, "--abstract", "--unroll", str(factor),
                               "--cache-dir", str(cache))
    for field in ("rate", "achieved_rate", "frustum", "schedule", "unroll"):
        if auto.get(field) != explicit.get(field):
            fail(f"auto vs explicit-U payloads disagree on {field!r}")
    return {"factor": factor, "stages": sorted(populated)}


def check_sweep(cache: pathlib.Path) -> None:
    manifest = {
        "items": [
            {"name": "interleave", "source":
             (ROOT / LOOP).read_text(), "include_io": False,
             "unroll": "auto"},
            {"name": "broken", "source": "this is not a loop"},
        ]
    }
    with tempfile.TemporaryDirectory() as tmp:
        manifest_path = pathlib.Path(tmp) / "manifest.json"
        cold_out = pathlib.Path(tmp) / "cold.json"
        warm_out = pathlib.Path(tmp) / "warm.json"
        manifest_path.write_text(json.dumps(manifest))

        cold = run_cli("sweep", str(manifest_path), "--cache-dir",
                       str(pathlib.Path(tmp) / "fresh-cache"),
                       "-o", str(cold_out), "--no-progress")
        if cold.returncode != 1:  # one item errors by design
            fail(f"cold sweep exited {cold.returncode} (expected 1):\n"
                 f"{cold.stderr}")
        warm = run_cli("sweep", str(manifest_path), "--cache-dir",
                       str(cache), "-o", str(warm_out), "--no-progress")
        if warm.returncode != 1:
            fail(f"warm sweep exited {warm.returncode} (expected 1):\n"
                 f"{warm.stderr}")

        # drop the whole-payload (L1) entries so a third sweep is
        # rebuilt from per-stage artifacts alone — and still merges to
        # the same bytes
        for entry in cache.glob("*.json"):
            entry.unlink()
        staged_out = pathlib.Path(tmp) / "staged.json"
        staged_run = run_cli("sweep", str(manifest_path), "--cache-dir",
                             str(cache), "-o", str(staged_out),
                             "--no-progress")
        if staged_run.returncode != 1:
            fail(f"staged sweep exited {staged_run.returncode} "
                 f"(expected 1):\n{staged_run.stderr}")
        if "stage cache:" not in staged_run.stdout:
            fail("staged sweep output lacks the stage-cache summary line")
        if json.loads(staged_out.read_text()) != json.loads(
            warm_out.read_text()
        ):
            fail("stage-store rebuild merged to different payload bytes")

        cold_merged = json.loads(cold_out.read_text())
        warm_merged = json.loads(warm_out.read_text())
        if cold_merged != warm_merged:
            fail("cold and warm sweeps merged to different payloads")
        errors = [i for i in cold_merged["items"] if i["status"] == "error"]
        if len(errors) != 1:
            fail(f"expected exactly one errored item, got {len(errors)}")
        if errors[0].get("error", {}).get("stage") != "parse":
            fail("sweep error record does not name its failing stage: "
                 f"{errors[0].get('error')}")


def check_failing_stage_diagnostic() -> None:
    with tempfile.NamedTemporaryFile("w", suffix=".loop") as handle:
        handle.write("definitely not a loop\n")
        handle.flush()
        proc = run_cli("compile", handle.name, "--cache-dir",
                       str(ROOT / "does-not-matter"))
    if proc.returncode == 0:
        fail("compiling a broken loop exited 0")
    if "Traceback" in proc.stderr:
        fail(f"broken loop produced a traceback:\n{proc.stderr}")
    if "failing stage: parse" not in proc.stderr:
        fail("stderr lacks the 'failing stage: parse' line:\n"
             f"{proc.stderr}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-stagecache-") as tmp:
        cache = pathlib.Path(tmp) / "cache"
        reuse = check_upstream_reuse(cache)
        check_sweep(cache)
        check_failing_stage_diagnostic()
    print("stagecache-smoke: OK "
          f"(auto factor {reuse['factor']}, "
          f"{len(reuse['stages'])} stages persisted, "
          "cold == warm, failing stages attributed)")


if __name__ == "__main__":
    main()
