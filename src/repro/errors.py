"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the major
subsystems: net construction, dataflow-graph construction, the loop
frontend, simulation, and analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class NetConstructionError(ReproError):
    """Raised when a Petri net is assembled inconsistently.

    Examples: adding an arc whose endpoints do not exist, duplicating a
    place name, or connecting a place to a place.
    """


class MarkingError(ReproError):
    """Raised for invalid markings (negative tokens, unknown places)."""


class NotAMarkedGraphError(ReproError):
    """Raised when a marked-graph-only operation is applied to a net in
    which some place does not have exactly one producer and one consumer."""


class FiringError(ReproError):
    """Raised when a transition is fired without being enabled."""


class SimulationError(ReproError):
    """Raised when a timed simulation cannot make progress or exceeds a
    configured step budget without reaching the requested condition."""


class DataflowError(ReproError):
    """Raised for ill-formed dataflow graphs (e.g. an SDSP arc whose
    endpoints are missing, or a switch node with no control input)."""


class LoopIRError(ReproError):
    """Raised by the loop frontend: parse errors, references to
    undefined values, unsupported dependence distances, and so on."""


class ScheduleError(ReproError):
    """Raised when a derived schedule is internally inconsistent or
    fails validation against its dependence/resource constraints."""


class AnalysisError(ReproError):
    """Raised by graph analyses (cycle-time computation, storage
    optimisation) when the input has no well-defined answer, e.g. a
    cycle with zero tokens (deadlocked net)."""


class LedgerError(ReproError):
    """Raised by the run ledger: malformed records, unknown schema
    versions, or unreadable ledger files."""


class RegressionError(ReproError):
    """Raised by the benchmark regression gate when its inputs are
    unusable (missing baseline, unreadable results)."""
