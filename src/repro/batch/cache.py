"""The content-addressed on-disk compile cache.

A compilation is a pure function of its inputs, and its deterministic
payload (:meth:`repro.pipeline.CompiledLoopSummary.payload`) is a
stable, hashable artifact — the cycle-time core being cached is the
marked-graph periodic-schedule machinery, whose outputs (kernel,
schedule steps, rate as an exact ``p/q``) are canonical by
construction.  So the cache maps

    sha256(stable_json({source, scalars, pipeline_stages, include_io,
                        engine, unroll, cache schema version}))

to one JSON file holding the payload plus an embedded payload hash.

Integrity rules:

* **atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``-d into place, so a crashed or killed
  worker can never leave a half-written entry behind, and two workers
  racing on the same key both land a complete (identical) file;
* **verified reads** — a load recomputes the payload hash and checks
  the stored key/schema; any mismatch (truncation, bit rot, a schema
  bump) counts as a miss, bumps the ``batch.cache.corrupt`` counter,
  and the entry is removed so the slot heals on the next store.

Counters (`batch.cache.{hit,miss,corrupt,store}`) always go to the
metrics registry — explicit ``counter()`` calls work even while the
registry is disabled, so sweep records can report hit rates without
the profiling machinery switched on.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Mapping, Optional, Union

from ..obs.ledger import resolve_env_dir
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.schema import stable_json

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_SCHEMA_VERSION",
    "atomic_write_json",
    "cache_key",
    "default_cache_dir",
    "resolve_cache_dir",
    "CompileCache",
]

#: Bump whenever the cached payload layout or the key derivation
#: changes — old entries then simply stop matching and are recompiled.
#: Version 2: ``unroll`` joined the key inputs and the payload gained
#: ``payload_schema``/``unroll``/``achieved_rate``/``dependence_bound``
#: fields, so a warm cache written by a pre-unrolling build misses
#: cleanly instead of answering a ``U = q`` request with a ``U = 1``
#: payload.
CACHE_SCHEMA_VERSION = 2

#: Environment toggle: falsy values disable the cache, truthy values
#: select :func:`default_cache_dir`, anything else is an explicit
#: directory (validated writable).  Shares its parser — and therefore
#: its exact truthy/falsy vocabulary — with ``REPRO_LEDGER``.
CACHE_ENV_VAR = "REPRO_CACHE"

_PathLike = Union[str, pathlib.Path]


def default_cache_dir(root: Optional[_PathLike] = None) -> pathlib.Path:
    """``<root>/.repro-cache`` (root defaults to the cwd)."""
    base = pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    return base / ".repro-cache"


def resolve_cache_dir(
    value: Optional[str] = None,
    root: Optional[_PathLike] = None,
) -> Optional[pathlib.Path]:
    """Resolve the ``REPRO_CACHE`` toggle (``value`` defaults to the
    environment variable) with the shared ledger/cache env parser:
    ``None`` when the cache is off, a directory path when it is on."""
    if value is None:
        value = os.environ.get(CACHE_ENV_VAR)
    return resolve_env_dir(
        value, default=default_cache_dir(root), purpose="compile cache"
    )


def cache_key(
    source: str,
    scalars: Optional[Mapping[str, float]] = None,
    pipeline_stages: Optional[int] = None,
    include_io: bool = True,
    engine: str = "event",
    unroll: Union[int, str] = 1,
) -> str:
    """The content address of one compilation: a sha256 over the
    canonical JSON of every input ``compile_loop`` result depends on,
    plus the cache schema version.

    ``unroll`` enters the key as requested — ``"auto"`` and the factor
    it happens to resolve to are distinct addresses, because the
    resolution depends on the analysis, not only on the inputs hashed
    here."""
    canonical = stable_json(
        {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "source": source,
            "scalars": (
                {str(k): float(v) for k, v in scalars.items()}
                if scalars
                else None
            ),
            "pipeline_stages": pipeline_stages,
            "include_io": bool(include_io),
            "engine": engine,
            "unroll": unroll,
        }
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _payload_sha256(payload: Mapping[str, Any]) -> str:
    return hashlib.sha256(stable_json(payload).encode("utf-8")).hexdigest()


def atomic_write_json(
    target: pathlib.Path, entry: Mapping[str, Any], key_hint: str = "entry"
) -> pathlib.Path:
    """Atomically write ``entry`` as indented canonical JSON.

    The write discipline every content-addressed store in the repo
    shares (:class:`CompileCache`, the per-stage
    :class:`~repro.compiler.store.ArtifactStore`): stage the bytes in a
    temp file inside the target directory (same filesystem, so the
    final ``os.replace`` is atomic), so a crashed or killed writer can
    never leave a half-written entry behind, and two writers racing on
    the same key both land a complete (identical) file.
    """
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, staging = tempfile.mkstemp(
        prefix=f".{key_hint[:16]}.", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(stable_json(entry, indent=2) + "\n")
        os.replace(staging, target)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return target


class CompileCache:
    """Content-addressed store of compile payloads, one JSON file per
    key, safe for concurrent readers and writers.

    The class is intentionally pickle-friendly (it holds only the
    directory path), so sweep workers can carry one into a
    ``ProcessPoolExecutor``; each process talks to its own registry.
    """

    def __init__(
        self,
        directory: _PathLike,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self._registry = registry

    # Keep instances picklable: the registry is process-local state and
    # is re-resolved lazily on the other side of a fork/spawn.
    def __getstate__(self) -> Dict[str, Any]:
        return {"directory": self.directory}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.directory = state["directory"]
        self._registry = None

    @property
    def registry(self) -> MetricsRegistry:
        """Where cache counters land (the bound registry, or the
        process-wide default when none was given)."""
        return self._registry if self._registry is not None else default_registry()

    def _count(self, outcome: str) -> None:
        self.registry.counter(f"batch.cache.{outcome}").inc()

    def path_for(self, key: str) -> pathlib.Path:
        """The on-disk entry for ``key`` (one JSON file per entry)."""
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on miss.

        A corrupt entry — malformed JSON, wrong embedded key or schema
        version, payload-hash mismatch — is treated as a miss, counted
        under ``batch.cache.corrupt``, and deleted so the next store
        rewrites it cleanly.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self._count("miss")
            return None
        entry = self._decode(text, key)
        if entry is None:
            self._count("corrupt")
            self._count("miss")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._count("hit")
        return entry["payload"]

    def _decode(self, text: str, key: str) -> Optional[Dict[str, Any]]:
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(entry, dict):
            return None
        schema = entry.get("cache_schema")
        # Any mismatch is a miss, but the two directions differ in
        # kind: an *older* entry is stale (recompile and overwrite), a
        # *newer* one was written by a later build whose payload layout
        # this reader cannot interpret — serving it would smuggle
        # fields past `CompiledLoopSummary.from_payload`'s version
        # gate.  Both are rejected here, before the payload is touched.
        if not isinstance(schema, int) or schema != CACHE_SCHEMA_VERSION:
            return None
        if entry.get("key") != key:
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None
        if entry.get("payload_sha256") != _payload_sha256(payload):
            return None
        return entry

    def store(self, key: str, payload: Mapping[str, Any]) -> pathlib.Path:
        """Atomically persist ``payload`` under ``key``.

        The entry is staged in a temp file inside the cache directory
        (same filesystem, so the final ``os.replace`` is atomic); a
        worker dying mid-write leaves only a stray ``.tmp`` file, never
        a truncated entry another worker could read.
        """
        entry = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "payload": dict(payload),
            "payload_sha256": _payload_sha256(payload),
        }
        target = atomic_write_json(self.path_for(key), entry, key_hint=key)
        self._count("store")
        return target

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(
            1
            for path in self.directory.iterdir()
            if path.suffix == ".json"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompileCache({str(self.directory)!r})"
