"""Batch compilation: content-addressed caching + process-pool sweeps.

``compile_loop`` is a pure function of ``(source, scalars,
pipeline_stages, include_io, engine)``, and the benchmark/sweep
workloads (the scaling family, the Livermore kernels, the ablations)
recompile the same nets over and over.  This package exploits both
facts:

* :mod:`repro.batch.cache` — a content-addressed on-disk compile cache
  keyed by a canonical hash of the compilation inputs (plus a cache
  schema version), storing the serialized deterministic payload of
  :class:`repro.pipeline.CompiledLoopSummary` and rehydrating it
  without re-simulating.  Entries are written atomically (temp file +
  rename) and verified against an embedded payload hash on load, so a
  torn or corrupted entry is recompiled, never trusted.
* :mod:`repro.batch.manifest` — sweep manifests: JSON files listing
  loops/configs, plus the generated scaling-family manifest.
* :mod:`repro.batch.sweep` — :func:`compile_many` and the ``repro
  sweep`` CLI driver: fan a manifest out over a
  ``ProcessPoolExecutor``, merge results deterministically (manifest
  order, not completion order), isolate per-item failures into
  structured error records, and report cache hit/miss counters through
  the metrics registry and the run ledger.
* :mod:`repro.batch.progress` — the live single-line TTY progress
  display (done/total, ETA, hit rate, stragglers) driven by
  ``compile_many`` through a small dispatch/finish/close protocol.

Quick use::

    from repro.batch import CompileCache, compile_many, scaling_items

    result = compile_many(
        scaling_items(sizes=(4, 8, 16)),
        workers=4,
        cache=CompileCache("/tmp/repro-cache"),
    )
    print(result.cache_stats())          # {'hits': 0, 'misses': 6, ...}
    print(result.merged_payload())       # deterministic, manifest order
"""

from .cache import (
    CACHE_ENV_VAR,
    CACHE_SCHEMA_VERSION,
    CompileCache,
    cache_key,
    default_cache_dir,
    resolve_cache_dir,
)
from .manifest import SweepItem, load_manifest, scaling_items
from .progress import StatusLine, SweepProgress
from .sweep import (
    SweepItemResult,
    SweepResult,
    compile_item_task,
    compile_many,
    compile_one,
    item_result_from_entry,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_SCHEMA_VERSION",
    "CompileCache",
    "cache_key",
    "default_cache_dir",
    "resolve_cache_dir",
    "SweepItem",
    "load_manifest",
    "scaling_items",
    "StatusLine",
    "SweepItemResult",
    "SweepResult",
    "SweepProgress",
    "compile_item_task",
    "compile_many",
    "compile_one",
    "item_result_from_entry",
]
