"""Live console telemetry: the reusable single-line status renderer
and the sweep progress display built on it.

``repro sweep`` over a hundred loops used to be a black box until the
merge printed.  :class:`SweepProgress` turns it into a live line on
stderr::

    sweep 37/96 39% | eta 0:42 | hits 31/35 (89%) | 1 error | running: chain-64, recurrence-128

The in-place rendering itself — carriage-return overwrite, width
clamping, throttling, auto-off when the stream is not a terminal — is
:class:`StatusLine`, shared with ``repro serve``'s graceful-drain
status ("drain: 3 in-flight, 8s left").  It never crashes when the
terminal width is unavailable: a missing/raising ``fileno``, an unset
or empty ``COLUMNS`` (systemd units, CI runners) all degrade to an
80-column fallback.

* **auto-off**: the line renders only when the stream is a TTY (so
  piped/CI output stays clean) and ``--no-progress`` forces it off;
* **ETA** is the classic remaining = elapsed / done × (total − done);
* **hit rate** counts hits over completed items that performed a cache
  lookup (the same denominator as
  :attr:`repro.batch.sweep.SweepResult.hit_rate`);
* **stragglers**: the oldest not-yet-finished items in dispatch order —
  for a process pool that executes its queue FIFO, the first ``workers``
  of them are the items actually running.

The reporter is also the progress *protocol*: :func:`repro.batch.sweep.
compile_many` calls ``dispatch``/``finish``/``close`` whether or not
rendering is enabled, so tests can substitute a recording double.
"""

from __future__ import annotations

import os
import sys
from time import perf_counter
from typing import IO, List, Optional

__all__ = ["StatusLine", "SweepProgress"]

#: Width used when neither the stream nor the environment can say.
_FALLBACK_COLUMNS = 80


def _fmt_eta(seconds: float) -> str:
    """Render a duration as ``m:ss`` (or ``h:mm:ss`` past an hour)."""
    seconds = max(0, int(round(seconds)))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class StatusLine:
    """One in-place status line on a stream (shared renderer).

    ``enabled=None`` (the default) auto-detects: render only when
    ``stream`` is a terminal.  Updates are throttled to one render per
    ``min_interval`` seconds unless forced; :meth:`clear` erases the
    line so a final summary can take its place.

    Width detection is deliberately paranoid — the renderer is used
    from CLI sweeps *and* from a long-running server's drain path, so
    it must survive streams with no file descriptor, closed
    descriptors, and ``COLUMNS`` being unset or empty under systemd or
    CI (where :func:`shutil.get_terminal_size` can be unhelpful).
    Every failure mode degrades to an 80-column fallback.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        enabled: Optional[bool] = None,
        min_interval: float = 0.1,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            try:
                enabled = bool(isatty and isatty())
            except (OSError, ValueError):
                enabled = False
        self.enabled = enabled
        self.min_interval = min_interval
        self._last_render = -1.0
        self._dirty = False

    def width(self) -> int:
        """The usable line width, never raising.

        Tries the stream's own terminal size first (progress renders on
        stderr, which may be a TTY even when stdout is piped), then the
        ``COLUMNS`` environment variable, then the 80-column fallback.
        """
        columns = 0
        fileno = getattr(self.stream, "fileno", None)
        if fileno is not None:
            try:
                columns = os.get_terminal_size(fileno()).columns
            except (OSError, ValueError, AttributeError):
                columns = 0
        if columns <= 0:
            try:
                columns = int(os.environ.get("COLUMNS", ""))
            except ValueError:
                columns = 0
        if columns <= 0:
            columns = _FALLBACK_COLUMNS
        return max(20, columns - 1)

    def update(self, text: str, force: bool = False) -> None:
        """Render ``text`` in place (throttled unless ``force``)."""
        if not self.enabled:
            return
        now = perf_counter()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        width = self.width()
        self.stream.write("\r" + text[:width].ljust(width))
        self.stream.flush()
        self._dirty = True

    def clear(self) -> None:
        """Erase the line (whatever replaces it starts on clean space)."""
        if self.enabled and self._dirty:
            self.stream.write("\r" + " " * self.width() + "\r")
            self.stream.flush()
            self._dirty = False


class SweepProgress:
    """Single-line, in-place progress reporting for ``compile_many``.

    ``enabled=None`` (the default) auto-detects: render only when
    ``stream`` is a terminal.  ``workers`` bounds how many dispatched
    items can truly be in flight — the straggler list shows the oldest
    unfinished items up to that many.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[IO[str]] = None,
        enabled: Optional[bool] = None,
        workers: int = 1,
        min_interval: float = 0.1,
    ) -> None:
        self.line = StatusLine(
            stream=stream, enabled=enabled, min_interval=min_interval
        )
        self.total = total
        self.workers = max(1, workers)
        self.done = 0
        self.hits = 0
        self.lookups = 0
        self.errors = 0
        self._pending: List[str] = []  # dispatch order, unfinished only
        self._started = perf_counter()

    @property
    def enabled(self) -> bool:
        """Whether the line actually renders (delegated to the renderer)."""
        return self.line.enabled

    @property
    def stream(self) -> IO[str]:
        """The stream the renderer writes to."""
        return self.line.stream

    # -- protocol (always called; cheap when disabled) ------------------
    def dispatch(self, name: str) -> None:
        """An item was handed to a worker (or is about to run serially)."""
        self._pending.append(name)
        self._render()

    def finish(
        self, name: str, cache_hit: bool, cache_lookup: bool, error: bool
    ) -> None:
        """An item completed (successfully or not)."""
        self.done += 1
        if cache_lookup and not error:
            self.lookups += 1
            if cache_hit:
                self.hits += 1
        if error:
            self.errors += 1
        try:
            self._pending.remove(name)
        except ValueError:
            pass
        self._render(force=self.done == self.total)

    def close(self) -> None:
        """Erase the progress line (the final summary replaces it)."""
        self.line.clear()

    # -- rendering ------------------------------------------------------
    def _line(self) -> str:
        elapsed = perf_counter() - self._started
        pct = (100 * self.done) // self.total if self.total else 100
        parts = [f"sweep {self.done}/{self.total} {pct}%"]
        if 0 < self.done < self.total:
            remaining = elapsed / self.done * (self.total - self.done)
            parts.append(f"eta {_fmt_eta(remaining)}")
        if self.lookups:
            rate = 100.0 * self.hits / self.lookups
            parts.append(f"hits {self.hits}/{self.lookups} ({rate:.0f}%)")
        if self.errors:
            parts.append(f"{self.errors} error(s)")
        running = self._pending[: self.workers]
        if running:
            parts.append("running: " + ", ".join(running))
        return " | ".join(parts)

    def _render(self, force: bool = False) -> None:
        if not self.enabled:
            return
        self.line.update(self._line(), force=force)
