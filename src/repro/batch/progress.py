"""Live sweep telemetry: the single-line TTY progress display.

``repro sweep`` over a hundred loops used to be a black box until the
merge printed.  :class:`SweepProgress` turns it into a live line on
stderr::

    sweep 37/96 39% | eta 0:42 | hits 31/35 (89%) | 1 error | running: chain-64, recurrence-128

* **auto-off**: the line renders only when the stream is a TTY (so
  piped/CI output stays clean) and ``--no-progress`` forces it off;
* **ETA** is the classic remaining = elapsed / done × (total − done);
* **hit rate** counts hits over completed items that performed a cache
  lookup (the same denominator as
  :attr:`repro.batch.sweep.SweepResult.hit_rate`);
* **stragglers**: the oldest not-yet-finished items in dispatch order —
  for a process pool that executes its queue FIFO, the first ``workers``
  of them are the items actually running.

The reporter is also the progress *protocol*: :func:`repro.batch.sweep.
compile_many` calls ``dispatch``/``finish``/``close`` whether or not
rendering is enabled, so tests can substitute a recording double.
"""

from __future__ import annotations

import shutil
import sys
from time import perf_counter
from typing import IO, List, Optional

__all__ = ["SweepProgress"]


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class SweepProgress:
    """Single-line, in-place progress reporting for ``compile_many``.

    ``enabled=None`` (the default) auto-detects: render only when
    ``stream`` is a terminal.  ``workers`` bounds how many dispatched
    items can truly be in flight — the straggler list shows the oldest
    unfinished items up to that many.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[IO[str]] = None,
        enabled: Optional[bool] = None,
        workers: int = 1,
        min_interval: float = 0.1,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty and isatty())
        self.enabled = enabled
        self.total = total
        self.workers = max(1, workers)
        self.min_interval = min_interval
        self.done = 0
        self.hits = 0
        self.lookups = 0
        self.errors = 0
        self._pending: List[str] = []  # dispatch order, unfinished only
        self._started = perf_counter()
        self._last_render = -1.0
        self._dirty = False

    # -- protocol (always called; cheap when disabled) ------------------
    def dispatch(self, name: str) -> None:
        """An item was handed to a worker (or is about to run serially)."""
        self._pending.append(name)
        self._render()

    def finish(
        self, name: str, cache_hit: bool, cache_lookup: bool, error: bool
    ) -> None:
        """An item completed (successfully or not)."""
        self.done += 1
        if cache_lookup and not error:
            self.lookups += 1
            if cache_hit:
                self.hits += 1
        if error:
            self.errors += 1
        try:
            self._pending.remove(name)
        except ValueError:
            pass
        self._render(force=self.done == self.total)

    def close(self) -> None:
        """Erase the progress line (the final summary replaces it)."""
        if self.enabled and self._dirty:
            self.stream.write("\r" + " " * self._width() + "\r")
            self.stream.flush()

    # -- rendering ------------------------------------------------------
    def _width(self) -> int:
        try:
            return max(20, shutil.get_terminal_size().columns - 1)
        except (ValueError, OSError):  # pragma: no cover - exotic TTYs
            return 79

    def _line(self) -> str:
        elapsed = perf_counter() - self._started
        pct = (100 * self.done) // self.total if self.total else 100
        parts = [f"sweep {self.done}/{self.total} {pct}%"]
        if 0 < self.done < self.total:
            remaining = elapsed / self.done * (self.total - self.done)
            parts.append(f"eta {_fmt_eta(remaining)}")
        if self.lookups:
            rate = 100.0 * self.hits / self.lookups
            parts.append(f"hits {self.hits}/{self.lookups} ({rate:.0f}%)")
        if self.errors:
            parts.append(f"{self.errors} error(s)")
        running = self._pending[: self.workers]
        if running:
            parts.append("running: " + ", ".join(running))
        return " | ".join(parts)

    def _render(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = perf_counter()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        width = self._width()
        line = self._line()[:width]
        self.stream.write("\r" + line.ljust(width))
        self.stream.flush()
        self._dirty = True
