"""Sweep manifests: which loops to compile, with which configs.

A manifest is a JSON file — either a bare list of items or
``{"items": [...]}`` — where each item is::

    {
      "name": "recurrence-32",          // required, unique label
      "source": "do chain: ...",        // inline loop text, or
      "file": "loops/l2.loop",          //   a path relative to the manifest
      "scalars": {"k": 3.0},            // optional
      "pipeline_stages": 8,             // optional (SDSP-SCP-PN)
      "include_io": true,               // optional, default true
      "engine": "event",                // optional, default "event"
      "unroll": 2                       // optional, default 1; int or "auto"
    }

:func:`scaling_items` generates the scaling-family manifest
programmatically (the same chain/recurrence families as
``benchmarks/bench_scaling.py``), and ``tools/gen_scaling_manifest.py``
writes it to ``benchmarks/manifests/scaling.json`` for the CLI.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..errors import ReproError
from ..loops.unroll import validate_unroll

__all__ = ["SweepItem", "load_manifest", "scaling_items", "chain_source"]

_PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class SweepItem:
    """One manifest entry: a loop plus its compilation config.

    Plain data only — instances cross process boundaries (pickled into
    sweep workers) and feed :func:`repro.batch.cache.cache_key`.
    """

    name: str
    source: str
    scalars: Optional[Dict[str, float]] = None
    pipeline_stages: Optional[int] = None
    include_io: bool = True
    engine: str = "event"
    #: Unroll factor: a positive int up to
    #: :data:`repro.loops.unroll.MAX_UNROLL`, or ``"auto"``.
    unroll: Union[int, str] = 1

    @classmethod
    def from_mapping(
        cls,
        data: Mapping[str, Any],
        base_dir: Optional[_PathLike] = None,
        index: Optional[int] = None,
    ) -> "SweepItem":
        """Validate one manifest item; ``file`` entries are resolved
        relative to ``base_dir`` (the manifest's directory)."""
        where = f"manifest item {index}" if index is not None else "manifest item"
        if not isinstance(data, Mapping):
            raise ReproError(f"{where}: expected a mapping, got {type(data).__name__}")
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ReproError(f"{where}: 'name' must be a non-empty string")
        source = data.get("source")
        file_ref = data.get("file")
        if (source is None) == (file_ref is None):
            raise ReproError(
                f"{where} ({name!r}): exactly one of 'source' or 'file' "
                "is required"
            )
        if file_ref is not None:
            path = pathlib.Path(file_ref)
            if not path.is_absolute() and base_dir is not None:
                path = pathlib.Path(base_dir) / path
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as error:
                raise ReproError(
                    f"{where} ({name!r}): cannot read loop file: {error}"
                ) from error
        scalars = data.get("scalars")
        if scalars is not None:
            if not isinstance(scalars, Mapping):
                raise ReproError(f"{where} ({name!r}): 'scalars' must be a mapping")
            scalars = {str(k): float(v) for k, v in scalars.items()}
        stages = data.get("pipeline_stages")
        if stages is not None:
            stages = int(stages)
        engine = str(data.get("engine", "event"))
        if engine not in ("step", "event"):
            raise ReproError(
                f"{where} ({name!r}): engine must be 'step' or 'event', "
                f"got {engine!r}"
            )
        unroll = validate_unroll(
            data.get("unroll", 1), where=f"{where} ({name!r}): 'unroll'"
        )
        return cls(
            name=name,
            source=str(source),
            scalars=scalars,
            pipeline_stages=stages,
            include_io=bool(data.get("include_io", True)),
            engine=engine,
            unroll=unroll,
        )


def load_manifest(path: _PathLike) -> List[SweepItem]:
    """Parse a manifest file into validated :class:`SweepItem` s.

    Duplicate names are rejected — the merged sweep payload is keyed by
    manifest position but reported by name, and a duplicate would make
    cache-hit accounting ambiguous to readers.
    """
    target = pathlib.Path(path)
    try:
        data = json.loads(target.read_text(encoding="utf-8"))
    except OSError as error:
        raise ReproError(f"cannot read manifest {target}: {error}") from error
    except json.JSONDecodeError as error:
        raise ReproError(f"{target}: malformed manifest JSON ({error})") from error
    if isinstance(data, Mapping):
        data = data.get("items")
    if not isinstance(data, list) or not data:
        raise ReproError(
            f"{target}: manifest must be a non-empty list of items "
            "(or {'items': [...]})"
        )
    items = [
        SweepItem.from_mapping(entry, base_dir=target.parent, index=index)
        for index, entry in enumerate(data)
    ]
    seen: Dict[str, int] = {}
    for index, item in enumerate(items):
        if item.name in seen:
            raise ReproError(
                f"{target}: duplicate item name {item.name!r} "
                f"(items {seen[item.name]} and {index})"
            )
        seen[item.name] = index
    return items


def chain_source(n: int, recurrence: bool) -> str:
    """The scaling-family loop body of size ``n``: a dependence chain,
    optionally closed with a distance-1 carried arc from the last
    statement back to the first (one long critical cycle)."""
    lines = [f"do {'recurrence' if recurrence else 'chain'}{n}:"]
    first_rhs = (
        f"IN[i] + T{n - 1}[i-1]" if recurrence else "IN[i] + 1"
    )
    lines.append(f"  T0[i] = {first_rhs}")
    for k in range(1, n):
        lines.append(f"  T{k}[i] = T{k - 1}[i] + IN[i]")
    return "\n".join(lines)


def scaling_items(
    sizes: Sequence[int] = (4, 8, 16, 32),
    families: Iterable[str] = ("chain", "recurrence"),
    engine: str = "event",
) -> List[SweepItem]:
    """The scaling-family sweep: ``chain``/``recurrence`` loops over
    ``sizes``, in deterministic (family-major) manifest order."""
    items: List[SweepItem] = []
    for family in families:
        if family not in ("chain", "recurrence"):
            raise ReproError(f"unknown scaling family {family!r}")
        for n in sizes:
            items.append(
                SweepItem(
                    name=f"{family}-{n}",
                    source=chain_source(n, recurrence=family == "recurrence"),
                    include_io=False,
                    engine=engine,
                )
            )
    return items
