"""``compile_many``: fan a sweep manifest out over a process pool.

Design rules, all of which the test suite pins down:

* **deterministic merge** — results are ordered by manifest index, not
  completion order, so the merged payload is byte-identical for
  ``workers=1`` vs ``workers=N`` and for cold vs warm cache;
* **failure isolation** — an item that raises (parse error,
  :class:`~repro.errors.ScheduleError`, ...) becomes a structured
  ``{"type", "message"}`` error record at its manifest position; the
  rest of the batch is unaffected and no half-written cache entry can
  result (stores are atomic, and failures are never cached);
* **volatile vs stable** — cache hit/miss counts are measurement
  artifacts (they differ between cold and warm runs by definition), so
  they live in :meth:`SweepResult.cache_stats` and the metrics
  registry, never inside :meth:`SweepResult.merged_payload`.

Workers are plain module-level functions over plain data
(:class:`~repro.batch.manifest.SweepItem`), so the pool works under
both fork and spawn start methods.
"""

from __future__ import annotations

import pathlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..obs.metrics import MetricsRegistry, default_registry
from .cache import CompileCache, cache_key
from .manifest import SweepItem

__all__ = ["SweepItemResult", "SweepResult", "compile_many"]

_CACHE_OUTCOMES = ("hit", "miss", "corrupt", "store")


@dataclass
class SweepItemResult:
    """One manifest item's outcome, at its manifest position."""

    index: int
    name: str
    status: str  # "ok" | "error"
    payload: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, str]] = None
    cache_hit: bool = False
    cache_stats: Optional[Dict[str, int]] = None
    key: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary(self):
        """Rehydrate the full :class:`repro.pipeline.CompiledLoopSummary`
        (``None`` for error items)."""
        if self.payload is None:
            return None
        from ..pipeline import CompiledLoopSummary

        return CompiledLoopSummary.from_payload(self.payload)

    def record(self) -> Dict[str, Any]:
        """The deterministic per-item entry of the merged payload —
        deliberately free of cache/worker information."""
        entry: Dict[str, Any] = {"name": self.name, "status": self.status}
        if self.error is not None:
            entry["error"] = dict(self.error)
        else:
            entry["payload"] = self.payload
        return entry


@dataclass
class SweepResult:
    """Everything one :func:`compile_many` call produced."""

    items: List[SweepItemResult]
    workers: int
    cache_dir: Optional[str] = None

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def n_errors(self) -> int:
        return sum(1 for item in self.items if not item.ok)

    @property
    def errors(self) -> List[SweepItemResult]:
        return [item for item in self.items if not item.ok]

    def merged_payload(self) -> Dict[str, Any]:
        """The stable merged record: manifest order, no volatile data.

        Byte-identical (under :func:`repro.obs.stable_json`) across
        worker counts and cache states — the acceptance property of the
        batch subsystem.
        """
        return {
            "n_items": self.n_items,
            "n_errors": self.n_errors,
            "items": [item.record() for item in self.items],
        }

    def cache_stats(self) -> Dict[str, int]:
        """Aggregated cache counters over every item (volatile —
        reported through ``timing.metrics`` in ledger records)."""
        totals = {outcome: 0 for outcome in _CACHE_OUTCOMES}
        totals["items"] = self.n_items
        totals["errors"] = self.n_errors
        for item in self.items:
            for outcome, count in (item.cache_stats or {}).items():
                totals[outcome] = totals.get(outcome, 0) + count
        return totals

    @property
    def hit_rate(self) -> float:
        """Cache hits over items (0.0 when the cache was off)."""
        if not self.items:
            return 0.0
        return sum(1 for item in self.items if item.cache_hit) / len(self.items)


def _compile_item(
    task: Tuple[int, SweepItem, Optional[str]]
) -> Dict[str, Any]:
    """Worker: compile (or rehydrate) one item.  Never raises for
    per-item failures — those become structured error dicts — so one
    bad loop cannot kill the batch."""
    index, item, cache_dir = task
    registry = MetricsRegistry()  # process-local; merged by the parent
    cache = (
        CompileCache(cache_dir, registry=registry)
        if cache_dir is not None
        else None
    )
    key = cache_key(
        item.source,
        scalars=item.scalars,
        pipeline_stages=item.pipeline_stages,
        include_io=item.include_io,
        engine=item.engine,
    )
    payload: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, str]] = None
    cache_hit = False
    if cache is not None:
        payload = cache.load(key)
        cache_hit = payload is not None
    if payload is None:
        from ..pipeline import compile_loop

        try:
            compiled = compile_loop(
                item.source,
                scalars=item.scalars,
                pipeline_stages=item.pipeline_stages,
                include_io=item.include_io,
                engine=item.engine,
            )
        except Exception as exc:  # noqa: BLE001 — isolate *any* failure
            error = {"type": type(exc).__name__, "message": str(exc)}
        else:
            payload = compiled.summary().payload()
            if cache is not None:
                cache.store(key, payload)
    stats = {
        outcome: registry.counter(f"batch.cache.{outcome}").value
        for outcome in _CACHE_OUTCOMES
    }
    return {
        "index": index,
        "name": item.name,
        "status": "error" if error is not None else "ok",
        "payload": payload,
        "error": error,
        "cache_hit": cache_hit,
        "cache_stats": stats,
        "key": key,
    }


def _as_item(entry: Union[SweepItem, Mapping[str, Any]], index: int) -> SweepItem:
    if isinstance(entry, SweepItem):
        return entry
    return SweepItem.from_mapping(entry, index=index)


def compile_many(
    items: Sequence[Union[SweepItem, Mapping[str, Any]]],
    workers: int = 1,
    cache: Optional[CompileCache] = None,
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> SweepResult:
    """Compile every manifest item, optionally in parallel and through
    the compile cache.

    Parameters
    ----------
    items:
        :class:`SweepItem` s or plain mappings (validated on entry).
    workers:
        ``1`` (default) compiles serially in-process; ``N > 1`` fans
        out over a ``ProcessPoolExecutor`` with ``N`` processes.
        Results are merged in manifest order either way.
    cache / cache_dir:
        An existing :class:`CompileCache`, or a directory to open one
        in.  Omit both to compile everything from scratch.
    registry:
        Metrics registry for the aggregated ``batch.cache.*`` /
        ``batch.sweep.*`` counters (default: the process-wide one).
    """
    if workers < 1:
        raise ReproError(f"sweep needs >= 1 worker, got {workers}")
    if cache is not None and cache_dir is not None:
        raise ReproError("pass either `cache` or `cache_dir`, not both")
    directory = (
        str(cache.directory)
        if cache is not None
        else (str(cache_dir) if cache_dir is not None else None)
    )
    sweep_items = [_as_item(entry, index) for index, entry in enumerate(items)]
    tasks = [
        (index, item, directory) for index, item in enumerate(sweep_items)
    ]

    if workers == 1 or len(tasks) <= 1:
        raw = [_compile_item(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            raw = list(pool.map(_compile_item, tasks))

    raw.sort(key=lambda result: result["index"])  # manifest order, always
    results = [
        SweepItemResult(
            index=entry["index"],
            name=entry["name"],
            status=entry["status"],
            payload=entry["payload"],
            error=entry["error"],
            cache_hit=entry["cache_hit"],
            cache_stats=entry["cache_stats"],
            key=entry["key"],
        )
        for entry in raw
    ]
    result = SweepResult(
        items=results, workers=workers, cache_dir=directory
    )

    target_registry = registry if registry is not None else default_registry()
    stats = result.cache_stats()
    for outcome in _CACHE_OUTCOMES:
        if stats.get(outcome):
            target_registry.counter(f"batch.cache.{outcome}").inc(
                stats[outcome]
            )
    target_registry.counter("batch.sweep.items").inc(result.n_items)
    target_registry.counter("batch.sweep.errors").inc(result.n_errors)
    return result
