"""``compile_many``: fan a sweep manifest out over a process pool.

Design rules, all of which the test suite pins down:

* **deterministic merge** — results are ordered by manifest index, not
  completion order, so the merged payload is byte-identical for
  ``workers=1`` vs ``workers=N`` and for cold vs warm cache;
* **failure isolation** — an item that raises (parse error,
  :class:`~repro.errors.ScheduleError`, ...) becomes a structured
  ``{"type", "message"}`` error record at its manifest position; the
  rest of the batch is unaffected and no half-written cache entry can
  result (stores are atomic, and failures are never cached);
* **volatile vs stable** — cache hit/miss counts, wall clocks, span
  timings and worker lanes are measurement artifacts (they differ
  between cold and warm runs by definition), so they live in
  :meth:`SweepResult.cache_stats` / :meth:`SweepResult.timing_summary`
  and the metrics registry, never inside
  :meth:`SweepResult.merged_payload`.

Workers are plain module-level functions over plain data
(:class:`~repro.batch.manifest.SweepItem`), so the pool works under
both fork and spawn start methods.

Cross-process tracing: pass a truthy :class:`~repro.obs.spans.Tracer`
(and, for ``workers > 1``, a ``shard_dir``) and every worker joins the
parent's trace via a pool initializer — each pool process builds its
own :class:`~repro.obs.spans.Tracer` from the propagated
:class:`~repro.obs.spans.TraceContext` and streams finished spans into
a JSONL shard keyed by its pid (``spans-<pid>.jsonl``).  Item compiles
become ``item:<name>`` spans with ``cache.lookup`` / ``compile`` /
``cache.store`` children, and the pipeline's :class:`~repro.obs.events.
PhaseTimer` events (parse, translate, detect-frustum, ...) are
converted into child spans too, so the merged trace shows the full
pipeline nested inside every item, one lane per worker.
"""

from __future__ import annotations

import os
import pathlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..obs.events import EventSink, Instrumentation, PhaseTimer
from ..obs.metrics import Histogram, MetricsRegistry, default_registry
from ..obs.spans import (
    NULL_TRACER,
    SpanShardWriter,
    TraceContext,
    Tracer,
    shard_paths,
)
from .cache import CompileCache, cache_key
from .manifest import SweepItem
from .progress import SweepProgress

__all__ = [
    "SweepItemResult",
    "SweepResult",
    "compile_item_task",
    "compile_one",
    "compile_many",
    "item_result_from_entry",
    "pool_worker_init",
]

_CACHE_OUTCOMES = ("hit", "miss", "corrupt", "store")
_STAGE_OUTCOMES = ("hit", "miss", "corrupt", "store", "hydrate")


@dataclass
class SweepItemResult:
    """One manifest item's outcome, at its manifest position.

    ``wall``, ``worker`` and ``phases`` are volatile measurement
    artifacts (like ``cache_stats``): the item's compile wall-clock,
    the lane that ran it, and — when span tracing was on — its
    per-phase seconds.  ``stage_stats`` / ``stage_outcomes`` describe
    the per-stage artifact cache (counter totals, and each compiler
    stage's resolution: ``computed`` / ``hit`` / ``hydrated``) when the
    item went through the staged compiler.  None of them reach
    :meth:`record` — except the failing *stage* name inside ``error``,
    which is deterministic (a failure recurs at the same stage whether
    its upstream artifacts were cached or not).
    """

    index: int
    name: str
    status: str  # "ok" | "error"
    payload: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, str]] = None
    cache_hit: bool = False
    cache_lookup: bool = False
    cache_stats: Optional[Dict[str, int]] = None
    key: Optional[str] = None
    wall: float = 0.0
    worker: Optional[str] = None
    phases: Optional[Dict[str, float]] = None
    stage_stats: Optional[Dict[str, int]] = None
    stage_outcomes: Optional[Dict[str, str]] = None

    @property
    def ok(self) -> bool:
        """Whether the item compiled (or rehydrated) successfully."""
        return self.status == "ok"

    def summary(self):
        """Rehydrate the full :class:`repro.pipeline.CompiledLoopSummary`
        (``None`` for error items)."""
        if self.payload is None:
            return None
        from ..pipeline import CompiledLoopSummary

        return CompiledLoopSummary.from_payload(self.payload)

    def record(self) -> Dict[str, Any]:
        """The deterministic per-item entry of the merged payload —
        deliberately free of cache/worker information."""
        entry: Dict[str, Any] = {"name": self.name, "status": self.status}
        if self.error is not None:
            entry["error"] = dict(self.error)
        else:
            entry["payload"] = self.payload
        return entry


@dataclass
class SweepResult:
    """Everything one :func:`compile_many` call produced.

    ``span_shards`` lists the per-worker JSONL span-shard files of a
    traced parallel sweep (empty when tracing was off or the sweep ran
    serially in-process) — feed them to
    :func:`repro.obs.trace_merge.merge_traces`.
    """

    items: List[SweepItemResult]
    workers: int
    cache_dir: Optional[str] = None
    span_shards: List[str] = field(default_factory=list)

    @property
    def n_items(self) -> int:
        """How many manifest items the sweep processed."""
        return len(self.items)

    @property
    def n_errors(self) -> int:
        """How many items failed to compile."""
        return sum(1 for item in self.items if not item.ok)

    @property
    def errors(self) -> List[SweepItemResult]:
        """The failed items, in manifest order."""
        return [item for item in self.items if not item.ok]

    def merged_payload(self) -> Dict[str, Any]:
        """The stable merged record: manifest order, no volatile data.

        Byte-identical (under :func:`repro.obs.stable_json`) across
        worker counts and cache states — the acceptance property of the
        batch subsystem.
        """
        return {
            "n_items": self.n_items,
            "n_errors": self.n_errors,
            "items": [item.record() for item in self.items],
        }

    def cache_stats(self) -> Dict[str, int]:
        """Aggregated cache counters over every item (volatile —
        reported through ``timing.metrics`` in ledger records)."""
        totals = {outcome: 0 for outcome in _CACHE_OUTCOMES}
        totals["items"] = self.n_items
        totals["errors"] = self.n_errors
        for item in self.items:
            for outcome, count in (item.cache_stats or {}).items():
                totals[outcome] = totals.get(outcome, 0) + count
        return totals

    def stage_cache_stats(self) -> Dict[str, Any]:
        """Aggregated per-stage artifact-cache counters over every item
        (volatile, like :meth:`cache_stats`): totals per outcome plus a
        ``by_stage`` breakdown of how each compiler stage resolved
        (``computed`` / ``hit`` / ``hydrated``) across the items that
        went through the staged compiler."""
        totals: Dict[str, Any] = {
            outcome: 0 for outcome in _STAGE_OUTCOMES
        }
        by_stage: Dict[str, Dict[str, int]] = {}
        for item in self.items:
            for outcome, count in (item.stage_stats or {}).items():
                totals[outcome] = totals.get(outcome, 0) + count
            for stage, outcome in (item.stage_outcomes or {}).items():
                per = by_stage.setdefault(stage, {})
                per[outcome] = per.get(outcome, 0) + 1
        totals["by_stage"] = {
            stage: dict(sorted(outcomes.items()))
            for stage, outcomes in sorted(by_stage.items())
        }
        return totals

    @property
    def hit_rate(self) -> float:
        """Cache hits over the items whose lookup could have been
        served: items that actually performed a cache lookup **and**
        compiled successfully.

        Two groups are deliberately excluded from the denominator:

        * items compiled with the cache off — they performed no lookup,
          so they say nothing about the cache (a sweep with no lookups
          at all reports ``0.0``);
        * errored items — failures are never stored (see the module
          docstring), so their lookups can never hit by design;
          counting them would pin a fully-warm sweep over a manifest
          containing one known-bad loop below 100% forever and make
          ``--require-hits`` unsatisfiable.
        """
        looked_up = [i for i in self.items if i.cache_lookup and i.ok]
        if not looked_up:
            return 0.0
        return sum(1 for item in looked_up if item.cache_hit) / len(looked_up)

    def timing_summary(self) -> Dict[str, Any]:
        """The volatile per-lane / per-phase timing summary stored
        under ``timing.spans`` in sweep ledger records.

        * ``lanes`` — items and busy seconds per worker lane;
        * ``critical_path`` — the lane whose busy time bounds the
          sweep's wall clock (items are independent, so the slowest
          chain of item spans is the busiest worker's), with its
          slowest items;
        * ``phases`` — p50/p95 per pipeline phase (and ``item`` for
          whole-item compiles) via
          :meth:`~repro.obs.metrics.Histogram.percentile`, each tagged
          ``exact_percentiles`` (``False`` once the retained-sample
          window overflowed — printers mark those with ``~``).
        """
        lanes: Dict[str, Dict[str, Any]] = {}
        phase_hists: Dict[str, Histogram] = {}

        def observe(phase: str, seconds: float) -> None:
            hist = phase_hists.get(phase)
            if hist is None:
                hist = phase_hists[phase] = Histogram(phase)
            hist.observe(seconds)

        for item in self.items:
            lane = lanes.setdefault(
                item.worker or "unknown",
                {"items": 0, "busy_seconds": 0.0},
            )
            lane["items"] += 1
            lane["busy_seconds"] += item.wall
            observe("item", item.wall)
            for phase, seconds in (item.phases or {}).items():
                observe(phase, seconds)

        critical: Optional[Dict[str, Any]] = None
        if lanes:
            worker = max(lanes, key=lambda w: lanes[w]["busy_seconds"])
            chain = sorted(
                (i for i in self.items if (i.worker or "unknown") == worker),
                key=lambda i: -i.wall,
            )
            critical = {
                "worker": worker,
                "busy_seconds": lanes[worker]["busy_seconds"],
                "items": [
                    {"name": i.name, "seconds": i.wall} for i in chain[:5]
                ],
            }
        return {
            "n_items": self.n_items,
            "busy_seconds": sum(item.wall for item in self.items),
            "lanes": lanes,
            "critical_path": critical,
            "phases": {
                name: {
                    "count": hist.count,
                    "p50": hist.percentile(50),
                    "p95": hist.percentile(95),
                    "exact_percentiles": hist.exact_percentiles,
                }
                for name, hist in sorted(phase_hists.items())
            },
        }


class _PhaseSpanSink(EventSink):
    """Converts the pipeline's :class:`PhaseTimer` events into child
    spans of the currently open item span, and collects the per-phase
    seconds the worker reports back to the parent."""

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self.phases: Dict[str, float] = {}

    def emit(self, event) -> None:
        if isinstance(event, PhaseTimer):
            self._tracer.record_completed(
                f"phase:{event.phase}", event.seconds
            )
            self.phases[event.phase] = (
                self.phases.get(event.phase, 0.0) + event.seconds
            )


#: Per-process tracing state, installed by :func:`pool_worker_init` in pool
#: workers (and set temporarily by :func:`compile_many` for serial,
#: in-process sweeps).  Module-level so it survives across the many
#: ``compile_item_task`` calls one pool process serves.
_WORKER_TRACER: Optional[Tracer] = None
_WORKER_SHARD: Optional[SpanShardWriter] = None


def pool_worker_init(
    context: Optional[Tuple[str, Optional[str], float]],
    shard_dir: Optional[str],
) -> None:
    """Pool initializer: join the parent's trace and open this worker's
    span shard.  Runs once per pool process, so every spawned worker
    owns a lane (shard header) even before its first item."""
    global _WORKER_TRACER, _WORKER_SHARD
    if context is None or shard_dir is None:
        _WORKER_TRACER = None
        _WORKER_SHARD = None
        return
    tracer = Tracer(
        context=TraceContext.from_tuple(context),
        worker=f"worker-{os.getpid()}",
    )
    shard = SpanShardWriter(
        pathlib.Path(shard_dir) / f"spans-{os.getpid()}.jsonl", tracer
    )
    tracer.writer = shard.write
    _WORKER_TRACER = tracer
    _WORKER_SHARD = shard


def compile_item_task(
    task: Tuple[int, SweepItem, Optional[str]]
) -> Dict[str, Any]:
    """Worker: compile (or rehydrate) one item.  Never raises for
    per-item failures — those become structured error dicts — so one
    bad loop cannot kill the batch.

    This is the module-level (hence picklable) unit of work shared by
    the sweep pool, the serial in-process path, and ``repro serve``'s
    long-lived compilation pool; ``task`` is ``(manifest index,
    SweepItem, cache directory or None)``.
    """
    index, item, cache_dir = task
    tracer = _WORKER_TRACER if _WORKER_TRACER is not None else NULL_TRACER
    registry = MetricsRegistry()  # process-local; merged by the parent
    cache = (
        CompileCache(cache_dir, registry=registry)
        if cache_dir is not None
        else None
    )
    key = cache_key(
        item.source,
        scalars=item.scalars,
        pipeline_stages=item.pipeline_stages,
        include_io=item.include_io,
        engine=item.engine,
        unroll=item.unroll,
    )
    payload: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, str]] = None
    cache_hit = False
    phases: Optional[Dict[str, float]] = None
    stage_outcomes: Optional[Dict[str, str]] = None
    started = perf_counter()
    with tracer.span(f"item:{item.name}", item=item.name, index=index):
        if cache is not None:
            with tracer.span("cache.lookup"):
                payload = cache.load(key)
            cache_hit = payload is not None
        if payload is None:
            # Imported lazily (like compile_loop below): repro.compiler
            # pulls in this package for the shared atomic-write helper,
            # so a module-level import here would be circular.
            from ..compiler import (
                ArtifactStore,
                compile_staged,
                failing_stage,
                make_request,
                stage_store_dir,
            )

            if tracer.enabled:
                phase_sink = _PhaseSpanSink(tracer)
                obs = Instrumentation(
                    sinks=[phase_sink],
                    metrics=MetricsRegistry(enabled=False),
                )
            else:
                phase_sink = None
                obs = None
            try:
                with tracer.span("compile"):
                    if cache_dir is not None:
                        # A whole-payload miss with the cache on: run
                        # the staged compiler against the per-stage
                        # artifact store beside the L1 entries, so any
                        # upstream work a previous (even differently
                        # parameterised) compile already did is reused.
                        request = make_request(
                            item.source,
                            scalars=item.scalars,
                            pipeline_stages=item.pipeline_stages,
                            include_io=item.include_io,
                            engine=item.engine,
                            unroll=item.unroll,
                        )
                        store = ArtifactStore(
                            stage_store_dir(cache_dir), registry=registry
                        )
                        payload, stage_outcomes = compile_staged(
                            request,
                            store,
                            **(
                                {"instrumentation": obs}
                                if obs is not None
                                else {}
                            ),
                        )
                    else:
                        from ..pipeline import compile_loop

                        compiled = compile_loop(
                            item.source,
                            scalars=item.scalars,
                            pipeline_stages=item.pipeline_stages,
                            include_io=item.include_io,
                            engine=item.engine,
                            unroll=item.unroll,
                            **(
                                {"instrumentation": obs}
                                if obs is not None
                                else {}
                            ),
                        )
                        payload = compiled.summary().payload()
            except Exception as exc:  # noqa: BLE001 — isolate *any* failure
                error = {"type": type(exc).__name__, "message": str(exc)}
                stage = failing_stage(exc)
                if stage is not None:
                    error["stage"] = stage
            else:
                if cache is not None:
                    with tracer.span("cache.store"):
                        cache.store(key, payload)
            if phase_sink is not None:
                phases = phase_sink.phases
    wall = perf_counter() - started
    stats = {
        outcome: registry.counter(f"batch.cache.{outcome}").value
        for outcome in _CACHE_OUTCOMES
    }
    stage_stats = {
        outcome: registry.counter(f"stage.cache.{outcome}").value
        for outcome in _STAGE_OUTCOMES
    }
    return {
        "index": index,
        "name": item.name,
        "status": "error" if error is not None else "ok",
        "payload": payload,
        "error": error,
        "cache_hit": cache_hit,
        "cache_lookup": cache is not None,
        "cache_stats": stats,
        "key": key,
        "wall": wall,
        "worker": tracer.worker if tracer.enabled else f"worker-{os.getpid()}",
        "phases": phases,
        "stage_stats": stage_stats,
        "stage_outcomes": stage_outcomes,
    }


def _as_item(entry: Union[SweepItem, Mapping[str, Any]], index: int) -> SweepItem:
    if isinstance(entry, SweepItem):
        return entry
    return SweepItem.from_mapping(entry, index=index)


def item_result_from_entry(entry: Mapping[str, Any]) -> SweepItemResult:
    """Rehydrate the plain-dict return of :func:`compile_item_task`
    (it crosses the process boundary as a dict) into a
    :class:`SweepItemResult`."""
    return SweepItemResult(
        index=entry["index"],
        name=entry["name"],
        status=entry["status"],
        payload=entry["payload"],
        error=entry["error"],
        cache_hit=entry["cache_hit"],
        cache_lookup=entry["cache_lookup"],
        cache_stats=entry["cache_stats"],
        key=entry["key"],
        wall=entry["wall"],
        worker=entry["worker"],
        phases=entry["phases"],
        stage_stats=entry.get("stage_stats"),
        stage_outcomes=entry.get("stage_outcomes"),
    )


def compile_one(
    item: Union[SweepItem, Mapping[str, Any]],
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
) -> SweepItemResult:
    """Compile a single item in-process, optionally through the cache.

    The one-item convenience over :func:`compile_item_task` used by
    ``repro compile`` and by tests that want the exact payload the
    service and the sweep driver would produce for the same input.
    """
    task = (
        0,
        _as_item(item, 0),
        str(cache_dir) if cache_dir is not None else None,
    )
    return item_result_from_entry(compile_item_task(task))


def compile_many(
    items: Sequence[Union[SweepItem, Mapping[str, Any]]],
    workers: int = 1,
    cache: Optional[CompileCache] = None,
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    registry: Optional[MetricsRegistry] = None,
    progress: Optional[SweepProgress] = None,
    tracer: Optional[Tracer] = None,
    shard_dir: Optional[Union[str, pathlib.Path]] = None,
) -> SweepResult:
    """Compile every manifest item, optionally in parallel and through
    the compile cache.

    Parameters
    ----------
    items:
        :class:`SweepItem` s or plain mappings (validated on entry).
    workers:
        ``1`` (default) compiles serially in-process; ``N > 1`` fans
        out over a ``ProcessPoolExecutor`` with ``N`` processes.
        Results are merged in manifest order either way.
    cache / cache_dir:
        An existing :class:`CompileCache`, or a directory to open one
        in.  Omit both to compile everything from scratch.
    registry:
        Metrics registry for the aggregated ``batch.cache.*`` /
        ``batch.sweep.*`` counters and the ``sweep.item`` /
        ``sweep.phase.*`` timers (default: the process-wide one).
    progress:
        A :class:`~repro.batch.progress.SweepProgress` reporter.  Its
        ``dispatch``/``finish``/``close`` protocol is driven as items
        are handed out and *complete* (completion order, not manifest
        order), so the display is live even though results merge
        deterministically.
    tracer / shard_dir:
        A truthy :class:`~repro.obs.spans.Tracer` turns span tracing
        on.  Serial sweeps trace in-process into the tracer itself;
        parallel sweeps additionally need ``shard_dir``, a directory
        where every pool worker writes its ``spans-<pid>.jsonl`` shard
        (listed afterwards in :attr:`SweepResult.span_shards`).
    """
    global _WORKER_TRACER
    if workers < 1:
        raise ReproError(f"sweep needs >= 1 worker, got {workers}")
    if cache is not None and cache_dir is not None:
        raise ReproError("pass either `cache` or `cache_dir`, not both")
    directory = (
        str(cache.directory)
        if cache is not None
        else (str(cache_dir) if cache_dir is not None else None)
    )
    tracing = tracer is not None and bool(tracer)
    if tracing and workers > 1 and shard_dir is None:
        raise ReproError("a traced parallel sweep needs a shard_dir")
    sweep_items = [_as_item(entry, index) for index, entry in enumerate(items)]
    tasks = [
        (index, item, directory) for index, item in enumerate(sweep_items)
    ]

    raw: List[Dict[str, Any]] = []
    shards: List[str] = []
    if workers == 1 or len(tasks) <= 1:
        previous = _WORKER_TRACER
        _WORKER_TRACER = tracer if tracing else None
        try:
            for task in tasks:
                if progress is not None:
                    progress.dispatch(task[1].name)
                entry = compile_item_task(task)
                raw.append(entry)
                if progress is not None:
                    progress.finish(
                        entry["name"],
                        cache_hit=entry["cache_hit"],
                        cache_lookup=entry["cache_lookup"],
                        error=entry["status"] == "error",
                    )
        finally:
            _WORKER_TRACER = previous
    else:
        initargs: Tuple[Any, ...] = (None, None)
        if tracing:
            initargs = (
                tracer.make_context().to_tuple(),
                str(shard_dir),
            )
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=pool_worker_init,
            initargs=initargs,
        ) as pool:
            futures = {}
            for task in tasks:
                futures[pool.submit(compile_item_task, task)] = task[1].name
                if progress is not None:
                    progress.dispatch(task[1].name)
            for future in as_completed(futures):
                entry = future.result()
                raw.append(entry)
                if progress is not None:
                    progress.finish(
                        entry["name"],
                        cache_hit=entry["cache_hit"],
                        cache_lookup=entry["cache_lookup"],
                        error=entry["status"] == "error",
                    )
        if tracing:
            shards = [str(path) for path in shard_paths(shard_dir)]
    if progress is not None:
        progress.close()

    raw.sort(key=lambda result: result["index"])  # manifest order, always
    results = [item_result_from_entry(entry) for entry in raw]
    result = SweepResult(
        items=results,
        workers=workers,
        cache_dir=directory,
        span_shards=shards,
    )

    target_registry = registry if registry is not None else default_registry()
    stats = result.cache_stats()
    for outcome in _CACHE_OUTCOMES:
        if stats.get(outcome):
            target_registry.counter(f"batch.cache.{outcome}").inc(
                stats[outcome]
            )
    stage_stats = result.stage_cache_stats()
    for outcome in _STAGE_OUTCOMES:
        if stage_stats.get(outcome):
            target_registry.counter(f"stage.cache.{outcome}").inc(
                stage_stats[outcome]
            )
    target_registry.counter("batch.sweep.items").inc(result.n_items)
    target_registry.counter("batch.sweep.errors").inc(result.n_errors)
    for item in results:
        target_registry.record_time("sweep.item", item.wall)
        for phase, seconds in (item.phases or {}).items():
            target_registry.record_time(f"sweep.phase.{phase}", seconds)
    return result
