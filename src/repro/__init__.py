'''repro: reproduction of Gao, Wong & Ning, "A Timed Petri-Net Model
for Fine-Grain Loop Scheduling" (PLDI 1991).

The library compiles loops to static dataflow software pipelines
(SDSPs), models them as timed Petri nets (SDSP-PN / SDSP-SCP-PN),
detects the cyclic frustum of the behavior graph under the earliest
firing rule, and derives verified time-optimal software-pipelined
schedules, plus storage optimisation, classic baselines, and the
benchmark harness reproducing the paper's tables and figures.

Quickstart::

    from repro import compile_loop

    source = (
        "doall L1:\n"
        "  A[i] = X[i] + 5\n"
        "  B[i] = Y[i] + A[i]\n"
        "  C[i] = A[i] + Z[i]\n"
        "  D[i] = B[i] + C[i]\n"
        "  E[i] = W[i] + D[i]\n"
    )
    result = compile_loop(source)
    print(result.schedule.rate)        # 1/2, the time-optimal rate
    print(result.frustum.length)       # steady-state period
'''

from .pipeline import (
    CompiledLoop,
    CompiledLoopSummary,
    FrustumSummary,
    compile_loop,
)

__version__ = "1.0.0"

__all__ = [
    "CompiledLoop",
    "CompiledLoopSummary",
    "FrustumSummary",
    "compile_loop",
    "__version__",
]
