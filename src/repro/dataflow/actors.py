"""Actor (node) catalogue for static dataflow graphs.

Each node of an SDSP dataflow graph represents one machine instruction
(Section 2: "Each node (or actor) in the graph represents a single
instruction").  This module defines the operator repertoire used by the
loop frontend and the value-level interpreter:

* ``LOAD`` — fetches successive elements of an input array (the
  "successive waves of elements ... fetched and fed into the graph" of
  Section 2); an optional iteration-relative ``offset`` models
  subscripts like ``Z[k+10]``.
* ``STORE`` — writes successive elements of an output array.
* ``BINOP`` / ``UNOP`` — arithmetic; either operand of a ``BINOP`` may
  be an immediate constant (the paper's Figure 1 folds the literal 5
  into the graph the same way).
* ``IDENTITY`` — a pass-through/pipe node.
* ``SWITCH`` / ``MERGE`` — the conditional actors of Section 3.2, with
  the *modified* firing rule that produces and consumes dummy tokens on
  unselected branches so that structurally they behave exactly like
  ordinary nodes (and the conditional graph remains an ordinary SDSP).

The :data:`DUMMY` sentinel is the dummy token circulated by
switch/merge on unselected branches.
"""

from __future__ import annotations

import enum
import math
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import DataflowError

__all__ = [
    "ActorKind",
    "Actor",
    "DUMMY",
    "BINARY_OPERATIONS",
    "UNARY_OPERATIONS",
    "load",
    "sink",
    "store",
    "binop",
    "unop",
    "identity",
    "switch",
    "merge",
]


class _Dummy:
    """Singleton dummy-token value (Section 3.2's altered switch/merge
    firing rule)."""

    _instance: Optional["_Dummy"] = None

    def __new__(cls) -> "_Dummy":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DUMMY"


DUMMY = _Dummy()


class ActorKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    BINOP = "binop"
    UNOP = "unop"
    IDENTITY = "identity"
    SWITCH = "switch"
    MERGE = "merge"
    SINK = "sink"


BINARY_OPERATIONS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "min": min,
    "max": max,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
}

UNARY_OPERATIONS: Dict[str, Callable[[Any], Any]] = {
    "neg": operator.neg,
    "abs": abs,
    "sqrt": math.sqrt,
    "not": operator.not_,
}


@dataclass(frozen=True)
class Actor:
    """An instruction node.

    ``arity`` is the number of *data* input ports (0-indexed,
    contiguous).  ``params`` carries kind-specific attributes:

    ========  =====================================================
    kind      params
    ========  =====================================================
    LOAD      ``array`` (str), ``offset`` (int, default 0)
    STORE     ``array`` (str)
    BINOP     ``op`` (str); optionally ``immediate`` (value) and
              ``immediate_port`` (0 or 1)
    UNOP      ``op`` (str)
    SWITCH    — (port 0 = control, port 1 = data)
    MERGE     — (port 0 = control, port 1 = true data,
              port 2 = false data)
    ========  =====================================================
    """

    name: str
    kind: ActorKind
    arity: int
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        for candidate, value in self.params:
            if candidate == key:
                return value
        return default

    @property
    def is_source(self) -> bool:
        """True for actors with no data inputs (they are throttled only
        by acknowledgement arcs in the SDSP)."""
        return self.arity == 0

    @property
    def label(self) -> str:
        """A short human-readable operation label for renderings."""
        if self.kind is ActorKind.LOAD:
            offset = self.param("offset", 0)
            suffix = f"+{offset}" if offset > 0 else (str(offset) if offset else "")
            return f"{self.param('array')}[i{suffix}]"
        if self.kind is ActorKind.STORE:
            return f"{self.param('array')}[i]:="
        if self.kind in (ActorKind.BINOP, ActorKind.UNOP):
            return str(self.param("op"))
        return self.kind.value

    # ------------------------------------------------------------------
    # Evaluation (used by the interpreter)
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Sequence[Any], context: "EvalContext") -> List[Any]:
        """Apply the actor to one token per input port; return one value
        per *output port* (most actors have a single output port whose
        value is broadcast along every outgoing arc; SWITCH has two
        output ports: 0 = true branch, 1 = false branch)."""
        if len(inputs) != self.arity:
            raise DataflowError(
                f"actor {self.name!r} expects {self.arity} inputs, got "
                f"{len(inputs)}"
            )
        # Dummy propagation (Section 3.2): an actor inside an unselected
        # conditional branch receives dummy tokens and forwards them, so
        # structurally it fires exactly like a selected one.  Merge is
        # the only actor that inspects dummies itself.
        if self.kind is not ActorKind.MERGE and any(
            value is DUMMY for value in inputs
        ):
            if self.kind is ActorKind.SWITCH:
                return [DUMMY, DUMMY]
            if self.kind is ActorKind.STORE:
                raise DataflowError(
                    f"store {self.name!r} received a dummy token; stores "
                    "must sit after the merge of a conditional"
                )
            if self.kind is ActorKind.SINK:
                return []
            return [DUMMY]
        if self.kind is ActorKind.LOAD:
            array = context.arrays[self.param("array")]
            index = context.firing_index(self.name) + self.param("offset", 0)
            return [array[index]]
        if self.kind is ActorKind.STORE:
            context.record_store(self.param("array"), inputs[0])
            return []
        if self.kind is ActorKind.BINOP:
            op_name = self.param("op")
            function = BINARY_OPERATIONS.get(op_name)
            if function is None:
                raise DataflowError(f"unknown binary operation {op_name!r}")
            immediate_port = self.param("immediate_port")
            if immediate_port is None:
                left, right = inputs
            elif immediate_port == 0:
                left, (right,) = self.param("immediate"), inputs
            else:
                (left,), right = inputs, self.param("immediate")
            return [function(left, right)]
        if self.kind is ActorKind.UNOP:
            function = UNARY_OPERATIONS.get(self.param("op"))
            if function is None:
                raise DataflowError(f"unknown unary operation {self.param('op')!r}")
            return [function(inputs[0])]
        if self.kind is ActorKind.IDENTITY:
            return [inputs[0]]
        if self.kind is ActorKind.SINK:
            return []
        if self.kind is ActorKind.SWITCH:
            control, value = inputs
            if control:
                return [value, DUMMY]
            return [DUMMY, value]
        if self.kind is ActorKind.MERGE:
            control, true_value, false_value = inputs
            if control is DUMMY:
                # the whole conditional sits in an unselected outer
                # branch (nested conditionals): fire on dummies like any
                # regular node
                if true_value is not DUMMY or false_value is not DUMMY:
                    raise DataflowError(
                        f"merge {self.name!r} has a dummy control but a "
                        "real data token; nested conditional gating is "
                        "inconsistent"
                    )
                return [DUMMY]
            selected = true_value if control else false_value
            unselected = false_value if control else true_value
            if unselected is not DUMMY:
                raise DataflowError(
                    f"merge {self.name!r} received a real token on its "
                    "unselected branch; switch/merge pairing is broken"
                )
            if selected is DUMMY:
                raise DataflowError(
                    f"merge {self.name!r} received a dummy token on its "
                    "selected branch"
                )
            return [selected]
        raise DataflowError(f"unhandled actor kind {self.kind}")  # pragma: no cover


class EvalContext:
    """Interpreter-side services an actor may need: the input arrays,
    per-actor firing indices (for LOAD subscripts) and output recording
    (for STORE)."""

    def __init__(self, arrays: Dict[str, Sequence[Any]]) -> None:
        self.arrays = dict(arrays)
        self._firing_counts: Dict[str, int] = {}
        self.stores: Dict[str, List[Any]] = {}

    def firing_index(self, actor_name: str) -> int:
        return self._firing_counts.get(actor_name, 0)

    def bump_firing(self, actor_name: str) -> None:
        self._firing_counts[actor_name] = self._firing_counts.get(actor_name, 0) + 1

    def record_store(self, array: str, value: Any) -> None:
        self.stores.setdefault(array, []).append(value)


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def load(name: str, array: str, offset: int = 0) -> Actor:
    """An array-element fetch node ``array[i + offset]``."""
    return Actor(name, ActorKind.LOAD, 0, (("array", array), ("offset", offset)))


def store(name: str, array: str) -> Actor:
    """An array-element store node ``array[i] := input``."""
    return Actor(name, ActorKind.STORE, 1, (("array", array),))


def binop(
    name: str,
    op: str,
    immediate: Any = None,
    immediate_port: Optional[int] = None,
) -> Actor:
    """A binary arithmetic node; supply ``immediate``/``immediate_port``
    to fold one constant operand into the instruction."""
    if op not in BINARY_OPERATIONS:
        raise DataflowError(f"unknown binary operation {op!r}")
    if (immediate is None) != (immediate_port is None):
        raise DataflowError("immediate and immediate_port must be given together")
    if immediate_port is None:
        return Actor(name, ActorKind.BINOP, 2, (("op", op),))
    if immediate_port not in (0, 1):
        raise DataflowError("immediate_port must be 0 or 1")
    return Actor(
        name,
        ActorKind.BINOP,
        1,
        (("op", op), ("immediate", immediate), ("immediate_port", immediate_port)),
    )


def unop(name: str, op: str) -> Actor:
    if op not in UNARY_OPERATIONS:
        raise DataflowError(f"unknown unary operation {op!r}")
    return Actor(name, ActorKind.UNOP, 1, (("op", op),))


def identity(name: str) -> Actor:
    return Actor(name, ActorKind.IDENTITY, 1)


def switch(name: str) -> Actor:
    """Port 0 = boolean control, port 1 = data; output port 0 feeds the
    true branch, output port 1 the false branch (dummy on the other)."""
    return Actor(name, ActorKind.SWITCH, 2)


def merge(name: str) -> Actor:
    """Port 0 = boolean control, port 1 = true-branch data, port 2 =
    false-branch data; consumes a dummy from the unselected branch."""
    return Actor(name, ActorKind.MERGE, 3)


def sink(name: str) -> Actor:
    """Discards one token per firing (real or dummy).  Sinks absorb the
    values a SWITCH routes to a branch that does not use them, keeping
    the conditional subgraph well-formed (every switch output consumed,
    every place bounded)."""
    return Actor(name, ActorKind.SINK, 1)
