"""Static dataflow graph substrate (the SDSP program representation).

Actors, data arcs (forward and feedback), a fluent builder, SDSP
well-formedness validation, and a value-level pipelined interpreter
used to verify that derived schedules preserve loop semantics.
"""

from .actors import (
    DUMMY,
    Actor,
    ActorKind,
    BINARY_OPERATIONS,
    UNARY_OPERATIONS,
    binop,
    identity,
    load,
    merge,
    sink,
    store,
    switch,
    unop,
)
from .graph import ArcKind, DataArc, DataflowGraph
from .builder import GraphBuilder, OutputRef
from .validate import ValidationReport, require_valid, validate
from .interp import InterpreterResult, interpret

__all__ = [
    "DUMMY",
    "Actor",
    "ActorKind",
    "BINARY_OPERATIONS",
    "UNARY_OPERATIONS",
    "binop",
    "identity",
    "load",
    "merge",
    "sink",
    "store",
    "switch",
    "unop",
    "ArcKind",
    "DataArc",
    "DataflowGraph",
    "GraphBuilder",
    "OutputRef",
    "ValidationReport",
    "require_valid",
    "validate",
    "InterpreterResult",
    "interpret",
]
