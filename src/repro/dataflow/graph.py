"""Static dataflow graphs (the SDSP program representation).

A *static dataflow software pipeline* (Section 3.2) is a dataflow graph
``G = (V, E, E', F, F')`` where ``V`` is the set of instruction nodes,
``E`` the forward data arcs, ``E'`` the feedback data arcs (loop-carried
dependences, one iteration of distance in this paper), and ``F``/``F'``
the acknowledgement arcs paired with ``E``/``E'``.

This module represents the *data* part — nodes plus forward/feedback
data arcs with their initial tokens.  Acknowledgement arcs are always
the exact reversal of data arcs with complementary initial tokens, so
they are derived (see :meth:`DataflowGraph.acknowledgement_arcs` and
the SDSP-PN construction in :mod:`repro.core.sdsp_pn`) rather than
stored; the storage optimiser in :mod:`repro.core.storage` manipulates
them explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..errors import DataflowError
from .actors import Actor, ActorKind

__all__ = ["ArcKind", "DataArc", "DataflowGraph"]


class ArcKind(enum.Enum):
    """Forward data arcs connect producers to consumers within one
    iteration; feedback arcs carry values to the *next* iteration and
    hold their initial tokens (the values live before iteration 0)."""

    FORWARD = "forward"
    FEEDBACK = "feedback"


@dataclass(frozen=True)
class DataArc:
    """A data dependence arc.

    ``source_port`` distinguishes the two outputs of a SWITCH actor
    (0 = true branch, 1 = false branch); every other actor has a single
    output port 0.  ``target_port`` selects the consumer's operand.
    ``initial_tokens`` is 0 on forward arcs and >= 1 on feedback arcs
    (static dataflow permits at most one token per arc, so in a valid
    SDSP it is exactly 1).
    """

    source: str
    target: str
    target_port: int
    kind: ArcKind = ArcKind.FORWARD
    source_port: int = 0
    initial_tokens: int = 0

    @property
    def identifier(self) -> str:
        """Stable arc name used for places in the SDSP-PN."""
        return f"{self.source}.{self.source_port}->{self.target}.{self.target_port}"

    @property
    def is_feedback(self) -> bool:
        return self.kind is ArcKind.FEEDBACK


class DataflowGraph:
    """A mutable static dataflow graph.

    Use :class:`repro.dataflow.builder.GraphBuilder` for ergonomic
    construction; this class provides the structural queries the rest
    of the library needs.
    """

    def __init__(self, name: str = "dataflow") -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._arcs: List[DataArc] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise DataflowError(f"actor {actor.name!r} already exists")
        self._actors[actor.name] = actor
        return actor

    def add_arc(self, arc: DataArc) -> DataArc:
        if arc.source not in self._actors:
            raise DataflowError(f"arc source {arc.source!r} is not an actor")
        if arc.target not in self._actors:
            raise DataflowError(f"arc target {arc.target!r} is not an actor")
        target = self._actors[arc.target]
        if not 0 <= arc.target_port < max(target.arity, 1):
            raise DataflowError(
                f"target port {arc.target_port} out of range for actor "
                f"{arc.target!r} (arity {target.arity})"
            )
        source = self._actors[arc.source]
        max_source_port = 2 if source.kind is ActorKind.SWITCH else 1
        if not 0 <= arc.source_port < max_source_port:
            raise DataflowError(
                f"source port {arc.source_port} out of range for actor "
                f"{arc.source!r}"
            )
        if source.kind in (ActorKind.STORE, ActorKind.SINK):
            raise DataflowError(
                f"{source.kind.value} actor {arc.source!r} has no outputs"
            )
        for existing in self._arcs:
            if (
                existing.target == arc.target
                and existing.target_port == arc.target_port
            ):
                raise DataflowError(
                    f"input port {arc.target_port} of {arc.target!r} already "
                    "driven by another arc"
                )
        if arc.kind is ArcKind.FEEDBACK and arc.initial_tokens < 1:
            raise DataflowError(
                f"feedback arc {arc.identifier} must carry at least one "
                "initial token"
            )
        if arc.kind is ArcKind.FORWARD and arc.initial_tokens != 0:
            raise DataflowError(
                f"forward arc {arc.identifier} must start empty"
            )
        self._arcs.append(arc)
        return arc

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def actors(self) -> Tuple[Actor, ...]:
        return tuple(self._actors.values())

    @property
    def actor_names(self) -> Tuple[str, ...]:
        return tuple(self._actors)

    @property
    def arcs(self) -> Tuple[DataArc, ...]:
        return tuple(self._arcs)

    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise DataflowError(f"unknown actor {name!r}") from None

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def __len__(self) -> int:
        return len(self._actors)

    def in_arcs(self, actor: str) -> List[DataArc]:
        """Input arcs of ``actor`` sorted by target port."""
        arcs = [a for a in self._arcs if a.target == actor]
        arcs.sort(key=lambda a: a.target_port)
        return arcs

    def out_arcs(self, actor: str) -> List[DataArc]:
        arcs = [a for a in self._arcs if a.source == actor]
        arcs.sort(key=lambda a: (a.source_port, a.target, a.target_port))
        return arcs

    def forward_arcs(self) -> List[DataArc]:
        return [a for a in self._arcs if a.kind is ArcKind.FORWARD]

    def feedback_arcs(self) -> List[DataArc]:
        return [a for a in self._arcs if a.kind is ArcKind.FEEDBACK]

    def predecessors(self, actor: str) -> List[str]:
        return [a.source for a in self.in_arcs(actor)]

    def successors(self, actor: str) -> List[str]:
        return [a.target for a in self.out_arcs(actor)]

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def nx_digraph(self, include_feedback: bool = True) -> nx.MultiDiGraph:
        """The graph as a networkx multidigraph (arc objects on edges)."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self._actors)
        for arc in self._arcs:
            if not include_feedback and arc.is_feedback:
                continue
            graph.add_edge(arc.source, arc.target, arc=arc)
        return graph

    def forward_topological_order(self) -> List[str]:
        """Topological order of the forward subgraph.  Raises
        :class:`DataflowError` if forward arcs contain a cycle (a
        malformed graph — cycles must go through feedback arcs)."""
        graph = self.nx_digraph(include_feedback=False)
        try:
            return list(nx.lexicographical_topological_sort(nx.DiGraph(graph)))
        except nx.NetworkXUnfeasible:
            raise DataflowError(
                "forward data arcs contain a cycle; loop-carried values "
                "must use feedback arcs"
            ) from None

    def has_loop_carried_dependence(self) -> bool:
        """DOALL detection at graph level: any feedback arc present?"""
        return any(a.is_feedback for a in self._arcs)

    def critical_path_length(self) -> int:
        """Longest forward-arc path counted in nodes — the paper's bound
        ``k`` on concurrently active iterations (Section 7)."""
        order = self.forward_topological_order()
        longest: Dict[str, int] = {name: 1 for name in order}
        for name in order:
            for arc in self.out_arcs(name):
                if arc.is_feedback:
                    continue
                longest[arc.target] = max(longest[arc.target], longest[name] + 1)
        return max(longest.values(), default=0)

    def acknowledgement_arcs(self) -> List[Tuple[str, str, DataArc]]:
        """The derived acknowledgement arcs: one per data arc, reversed,
        returned as ``(from_actor, to_actor, data_arc)`` triples.

        An acknowledgement for a forward arc starts with one token (the
        buffer is free); for a feedback arc it starts empty (the buffer
        holds the initial value)."""
        return [(a.target, a.source, a) for a in self._arcs]

    def copy(self, name: Optional[str] = None) -> "DataflowGraph":
        clone = DataflowGraph(name if name is not None else self.name)
        for actor in self._actors.values():
            clone.add_actor(actor)
        for arc in self._arcs:
            clone.add_arc(arc)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        feedback = sum(1 for a in self._arcs if a.is_feedback)
        return (
            f"DataflowGraph({self.name!r}, actors={len(self._actors)}, "
            f"arcs={len(self._arcs)}, feedback={feedback})"
        )
