"""Fluent construction API for static dataflow graphs.

The builder keeps graph assembly close to how the paper draws its
figures: name a node, say what it computes, and wire operands by
naming their producers.  Example — loop L1 of Figure 1::

    b = GraphBuilder("L1")
    b.load("x", "X")
    b.binop("A", "+", "x", immediate=5)      # A[i] := X[i] + 5
    b.load("y", "Y")
    b.binop("B", "+", "y", "A")              # B[i] := Y[i] + A[i]
    ...
    b.store("outD", "D", "D_val")
    graph = b.build()

Feedback (loop-carried) operands are wired with
:meth:`GraphBuilder.feedback`, which records the one-iteration distance
and the initial token of Section 3.2.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import DataflowError
from . import actors as actor_lib
from .actors import Actor, ActorKind
from .graph import ArcKind, DataArc, DataflowGraph

__all__ = ["GraphBuilder", "OutputRef"]


class OutputRef:
    """Reference to a node's output port, used to wire SWITCH branches:
    ``b.ref("s", port=0)`` is the true branch, port 1 the false one."""

    def __init__(self, node: str, port: int = 0) -> None:
        self.node = node
        self.port = port


Operand = Union[str, OutputRef]


class GraphBuilder:
    """Incremental dataflow-graph builder with operand wiring."""

    def __init__(self, name: str = "dataflow") -> None:
        self._graph = DataflowGraph(name)
        self._pending_feedback: List[DataArc] = []

    # ------------------------------------------------------------------
    # Node constructors
    # ------------------------------------------------------------------
    def load(self, name: str, array: str, offset: int = 0) -> str:
        """Add an array-fetch node ``array[i + offset]``."""
        self._graph.add_actor(actor_lib.load(name, array, offset))
        return name

    def store(self, name: str, array: str, value: Operand) -> str:
        """Add an array-store node consuming ``value``."""
        self._graph.add_actor(actor_lib.store(name, array))
        self._wire(value, name, 0)
        return name

    def binop(
        self,
        name: str,
        op: str,
        left: Optional[Operand] = None,
        right: Optional[Operand] = None,
        immediate: Any = None,
        immediate_port: Optional[int] = None,
    ) -> str:
        """Add a binary node.

        With an ``immediate``, the constant occupies one operand
        position (inferred from which of ``left``/``right`` is omitted,
        or forced with ``immediate_port``) and the node has a single
        data port 0.  Operands may be omitted entirely when a feedback
        arc (wired later via :meth:`feedback`) will drive the port;
        validation catches ports that stay undriven.
        """
        if immediate is not None:
            if immediate_port is None:
                if left is None and right is not None:
                    immediate_port = 0
                elif right is None and left is not None:
                    immediate_port = 1
                elif left is None and right is None:
                    raise DataflowError(
                        f"binop {name!r}: with an immediate and no operand, "
                        "specify immediate_port explicitly"
                    )
                else:
                    raise DataflowError(
                        "with an immediate, give at most one data operand"
                    )
            actor = actor_lib.binop(name, op, immediate, immediate_port)
            self._graph.add_actor(actor)
            operand = right if immediate_port == 0 else left
            if operand is not None:
                self._wire(operand, name, 0)
            return name
        self._graph.add_actor(actor_lib.binop(name, op))
        if left is not None:
            self._wire(left, name, 0)
        if right is not None:
            self._wire(right, name, 1)
        return name

    def unop(self, name: str, op: str, value: Optional[Operand] = None) -> str:
        """Add a unary node; ``value`` may be omitted for a port driven
        later by :meth:`feedback`."""
        self._graph.add_actor(actor_lib.unop(name, op))
        if value is not None:
            self._wire(value, name, 0)
        return name

    def identity(self, name: str, value: Optional[Operand] = None) -> str:
        """Add a pass-through node; ``value`` may be omitted for a port
        driven later by :meth:`feedback`."""
        self._graph.add_actor(actor_lib.identity(name))
        if value is not None:
            self._wire(value, name, 0)
        return name

    def switch(self, name: str, control: Operand, value: Operand) -> str:
        """Add a switch node; use ``ref(name, 0)`` / ``ref(name, 1)`` to
        consume its true/false outputs."""
        self._graph.add_actor(actor_lib.switch(name))
        self._wire(control, name, 0)
        self._wire(value, name, 1)
        return name

    def merge(
        self,
        name: str,
        control: Operand,
        true_value: Operand,
        false_value: Operand,
    ) -> str:
        self._graph.add_actor(actor_lib.merge(name))
        self._wire(control, name, 0)
        self._wire(true_value, name, 1)
        self._wire(false_value, name, 2)
        return name

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def ref(self, node: str, port: int = 0) -> OutputRef:
        """Reference an output port (only SWITCH has port 1)."""
        return OutputRef(node, port)

    def feedback(
        self,
        source: Operand,
        target: str,
        target_port: int,
        initial_tokens: int = 1,
    ) -> None:
        """Wire a loop-carried operand: the value produced by ``source``
        in iteration ``i`` is consumed by ``target`` in iteration
        ``i+1``; ``initial_tokens`` models the pre-loop value (always 1
        in an SDSP).

        Feedback arcs may refer to nodes defined later, so they are
        recorded and attached at :meth:`build` time.
        """
        source_ref = source if isinstance(source, OutputRef) else OutputRef(source)
        self._pending_feedback.append(
            DataArc(
                source_ref.node,
                target,
                target_port,
                kind=ArcKind.FEEDBACK,
                source_port=source_ref.port,
                initial_tokens=initial_tokens,
            )
        )

    def _wire(self, operand: Operand, target: str, port: int) -> None:
        ref = operand if isinstance(operand, OutputRef) else OutputRef(operand)
        if not self._graph.has_actor(ref.node):
            raise DataflowError(
                f"operand {ref.node!r} of {target!r} is not defined yet; "
                "define producers before consumers (use feedback() for "
                "loop-carried operands)"
            )
        self._graph.add_arc(
            DataArc(ref.node, target, port, source_port=ref.port)
        )

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> DataflowGraph:
        """Attach pending feedback arcs and return the graph."""
        for arc in self._pending_feedback:
            self._graph.add_arc(arc)
        self._pending_feedback = []
        return self._graph
