"""Well-formedness checking for static dataflow graphs.

The SDSP definition (Section 3.2) constrains the graphs the rest of
the pipeline accepts: non-nested loop bodies whose forward arcs form a
DAG, loop-carried dependences of distance one carried by feedback arcs
with a single initial token, and conditionals expressed as well-formed
switch/merge subgraphs.  :func:`validate` checks these conditions and
returns a structured report; :func:`require_valid` raises on the first
error, and is called by the SDSP-PN construction so malformed graphs
fail loudly at compile time rather than deadlocking a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import DataflowError
from .actors import ActorKind
from .graph import DataflowGraph

__all__ = ["ValidationReport", "validate", "require_valid"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`: hard ``errors`` (the graph is not a
    valid SDSP) and soft ``warnings`` (dead code and similar smells)."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def validate(graph: DataflowGraph) -> ValidationReport:
    """Check SDSP admissibility; never raises."""
    report = ValidationReport()

    if len(graph) == 0:
        report.errors.append("graph has no actors")
        return report

    # Every data input port must be driven by exactly one arc (the graph
    # class enforces 'at most one'; here we require 'at least one').
    for actor in graph.actors:
        driven = {arc.target_port for arc in graph.in_arcs(actor.name)}
        for port in range(actor.arity):
            if port not in driven:
                report.errors.append(
                    f"input port {port} of actor {actor.name!r} is not driven"
                )

    # Forward arcs must be acyclic: cycles are only legal through
    # feedback arcs.
    try:
        graph.forward_topological_order()
    except DataflowError as error:
        report.errors.append(str(error))

    # Loop-carried dependences are from one iteration to the next, i.e.
    # feedback arcs carry exactly one initial token in an SDSP.
    for arc in graph.feedback_arcs():
        if arc.initial_tokens != 1:
            report.errors.append(
                f"feedback arc {arc.identifier} carries {arc.initial_tokens} "
                "initial tokens; the SDSP model requires exactly 1 "
                "(dependence distance one)"
            )

    # Switch/merge pairing sanity.
    switches = [a for a in graph.actors if a.kind is ActorKind.SWITCH]
    merges = [a for a in graph.actors if a.kind is ActorKind.MERGE]
    if merges and not switches:
        report.errors.append(
            "graph contains merge actors but no switch; a well-formed "
            "conditional subgraph needs both"
        )
    for actor in switches:
        used_ports = {arc.source_port for arc in graph.out_arcs(actor.name)}
        for port, branch in ((0, "true"), (1, "false")):
            if port not in used_ports:
                report.errors.append(
                    f"switch {actor.name!r} has an unconsumed {branch} branch; "
                    "its dummy tokens would accumulate"
                )

    # Dead code detection (warnings): non-store actors nobody consumes.
    for actor in graph.actors:
        if actor.kind in (ActorKind.STORE, ActorKind.SINK):
            continue
        if not graph.out_arcs(actor.name):
            report.warnings.append(
                f"actor {actor.name!r} has no consumers (dead code)"
            )

    # Unreferenced dangling sources of STORE chains are fine; but check
    # the graph is weakly connected so the pipeline is one loop body.
    if len(graph) > 1:
        import networkx as nx

        undirected = graph.nx_digraph().to_undirected()
        if not nx.is_connected(undirected):
            report.warnings.append(
                "graph is not weakly connected; it looks like several "
                "independent loop bodies"
            )

    return report


def require_valid(graph: DataflowGraph) -> None:
    """Raise :class:`DataflowError` listing every validation error."""
    report = validate(graph)
    if not report.ok:
        raise DataflowError(
            f"dataflow graph {graph.name!r} is not a valid SDSP:\n  - "
            + "\n  - ".join(report.errors)
        )
