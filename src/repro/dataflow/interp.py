"""Value-level interpreter for static dataflow graphs.

The interpreter executes an SDSP the way a static dataflow machine
would (Section 2's "successive waves"): every arc is a FIFO buffer of
bounded capacity, and an actor fires when each input arc offers a token
*and* each output arc has buffer space — the operational meaning of the
acknowledgement arcs.  With the default capacity of one token per arc
this is exactly the static dataflow one-token-per-arc discipline the
SDSP-PN encodes.

The interpreter exists to close the loop on *semantics*: the scheduling
pipeline (frustum → schedule) only reorders instruction instances, so
replaying a loop through the interpreter and comparing against a direct
(NumPy or scalar) evaluation catches translation bugs that pure
structural checks cannot.  See :mod:`repro.core.verify`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import DataflowError
from .actors import DUMMY, ActorKind, EvalContext
from .graph import ArcKind, DataArc, DataflowGraph

__all__ = ["InterpreterResult", "interpret"]


@dataclass
class InterpreterResult:
    """Outputs of a pipelined interpretation.

    ``stores`` maps each output array name to the list of values written
    (index ``i`` = iteration ``i``); ``firings`` counts firings per
    actor; ``steps`` is the number of synchronous rounds executed.
    """

    stores: Dict[str, List[Any]]
    firings: Dict[str, int]
    steps: int


def interpret(
    graph: DataflowGraph,
    arrays: Optional[Mapping[str, Sequence[Any]]] = None,
    iterations: int = 1,
    initial_values: Optional[Mapping[str, Any]] = None,
    buffer_capacity: int = 1,
    max_rounds: Optional[int] = None,
) -> InterpreterResult:
    """Run ``iterations`` waves of the loop body through the graph.

    Parameters
    ----------
    arrays:
        Input arrays, keyed by the array names of the LOAD actors.  Each
        must be long enough for ``iterations`` plus the largest positive
        subscript offset.
    initial_values:
        Values of the tokens sitting on feedback arcs before iteration
        0, keyed by arc identifier (``"src.0->dst.1"``).  Arcs not named
        start with the integer 0 — fine for reductions initialised to
        zero, but recurrences like Livermore loop 5 need their real
        boundary values here.
    buffer_capacity:
        FIFO capacity of each arc *in addition to nothing* — i.e. total
        slots per arc.  Capacity 1 reproduces the SDSP one-token-per-arc
        discipline; larger capacities model the FIFO-queued dataflow
        extension discussed in Section 7.
    """
    from .validate import require_valid

    require_valid(graph)
    if iterations < 0:
        raise DataflowError("iterations must be non-negative")
    if buffer_capacity < 1:
        raise DataflowError("buffer_capacity must be >= 1")

    context = EvalContext(dict(arrays or {}))
    initial_values = dict(initial_values or {})

    queues: Dict[DataArc, Deque[Any]] = {}
    for arc in graph.arcs:
        queue: Deque[Any] = deque()
        if arc.kind is ArcKind.FEEDBACK:
            value = initial_values.pop(arc.identifier, 0)
            for _ in range(arc.initial_tokens):
                queue.append(value)
        queues[arc] = queue
    if initial_values:
        unknown = ", ".join(sorted(initial_values))
        raise DataflowError(f"initial values name unknown arcs: {unknown}")

    # Check array extents up front for a clear error message.
    for actor in graph.actors:
        if actor.kind is not ActorKind.LOAD:
            continue
        array_name = actor.param("array")
        if array_name not in context.arrays:
            raise DataflowError(f"no input array {array_name!r} supplied")
        needed = iterations + max(0, actor.param("offset", 0))
        have = len(context.arrays[array_name])
        if have < needed:
            raise DataflowError(
                f"array {array_name!r} has {have} elements; actor "
                f"{actor.name!r} needs {needed} for {iterations} iterations"
            )

    target_firings = {actor.name: iterations for actor in graph.actors}
    firings = {actor.name: 0 for actor in graph.actors}
    out_arcs = {actor.name: graph.out_arcs(actor.name) for actor in graph.actors}
    in_arcs = {actor.name: graph.in_arcs(actor.name) for actor in graph.actors}

    if max_rounds is None:
        # Each synchronous round fires every fireable actor once; the
        # pipeline completes an iteration every O(1) rounds, plus a
        # fill/drain transient bounded by the critical path.
        max_rounds = 4 * (iterations + len(graph) + 4)

    rounds = 0
    while rounds < max_rounds:
        if all(firings[name] >= target_firings[name] for name in firings):
            break
        progressed = False
        for actor in graph.actors:
            name = actor.name
            if firings[name] >= target_firings[name]:
                continue
            if any(not queues[arc] for arc in in_arcs[name]):
                continue
            if any(
                len(queues[arc]) >= buffer_capacity + arc.initial_tokens
                for arc in out_arcs[name]
            ):
                continue
            inputs = [queues[arc].popleft() for arc in in_arcs[name]]
            outputs = actor.evaluate(inputs, context)
            context.bump_firing(name)
            for arc in out_arcs[name]:
                queues[arc].append(outputs[arc.source_port])
            firings[name] += 1
            progressed = True
        rounds += 1
        if not progressed:
            stuck = [
                name
                for name in firings
                if firings[name] < target_firings[name]
            ]
            raise DataflowError(
                "dataflow interpretation deadlocked; actors still owing "
                f"firings: {', '.join(sorted(stuck))}"
            )

    incomplete = [n for n in firings if firings[n] < target_firings[n]]
    if incomplete:
        raise DataflowError(
            f"interpreter exceeded {max_rounds} rounds with actors "
            f"unfinished: {', '.join(sorted(incomplete))}"
        )
    return InterpreterResult(stores=context.stores, firings=firings, steps=rounds)
