"""The declared compiler stages.

Each :class:`Stage` is a pure, schema-versioned pass with typed inputs
and outputs, mirroring the paper's own decomposition:

==================  ==============================================  =======
stage               does                                            paper
==================  ==============================================  =======
``parse``           loop text -> loop IR                            §2
``translate``       dependence analysis + SDSP dataflow lowering    §3.2
``rate_analysis``   dependence bound γ* (Howard, ack-free subnet)   §4.2
``unroll``          factor selection + mod-U graph rewiring         §4.2
``build_pn``        SDSP-PN construction                            §3.3
``simulate``        earliest-firing behavior, cyclic frustum        §4.1
``extract_kernel``  time-optimal kernel / pipelined schedule        §4.3
``rate``            optimal rate, bounds, achieved-rate check       §4.2
``verify``          dependence/rate replay of the schedule          §4.3
``scp_build``       SDSP-SCP-PN resource model (l-stage pipeline)   §5.2
``scp_simulate``    FIFO-policy behavior + frustum + utilization    §5.2
``scp_extract``     resource-constrained schedule                   §5.2
``scp_verify``      resource replay of the SCP schedule             §5.2
``summarize``       assemble the deterministic payload              —
==================  ==============================================  =======

A stage's ``compute`` runs on live upstream objects obtained through
its :class:`StageContext`; its output is a JSON-ready ``data``
projection (what the artifact store persists), a ``live`` dict of
in-memory objects (what downstream computes and ``compile_loop``
consume), and an optional richer ``content`` structure that feeds the
fingerprint when the projection alone would under-identify the result.

``phase`` names keep the pre-refactor instrumentation vocabulary
(``phase.parse`` ... ``phase.scp-verify`` timers and
:class:`~repro.obs.events.PhaseTimer` events), so existing profiles,
traces, dashboards and tests read unchanged; the stages that the
decomposition split out of fused phases (``rate_analysis``,
``summarize``) get new names of their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..core.bounds import TheoreticalBounds, theoretical_bounds
from ..core.rate import (
    dependence_bound_rate,
    optimal_rate,
    pipeline_utilization,
)
from ..core.schedule import derive_schedule
from ..core.scp import build_sdsp_scp_pn
from ..core.sdsp_pn import build_sdsp_pn
from ..core.verify import verify_schedule
from ..errors import AnalysisError
from ..loops.parser import parse_loop
from ..loops.translate import translate
from ..loops.unroll import (
    MAX_UNROLL,
    base_firing_totals,
    unroll_graph,
)
from ..machine.policies import FifoRunPlacePolicy
from ..petrinet.behavior import detect_frustum
from .artifacts import graph_dump, loop_dump, net_dump
from .result import (
    CompiledLoopSummary,
    FrustumSummary,
    fraction_from,
    schedule_from_payload,
    schedule_payload,
)

__all__ = [
    "CompileRequest",
    "Stage",
    "StageContext",
    "StageOutput",
    "STAGES",
    "CORE_STAGE_ORDER",
    "SCP_STAGE_ORDER",
    "select_unroll",
    "verify_base_rate",
]


@dataclass(frozen=True)
class CompileRequest:
    """The validated inputs of one compilation — everything any stage's
    parameters may derive from.  ``scalars`` is normalised to a plain
    ``{name: float}`` dict (or None) so request keys are canonical."""

    source: str
    scalars: Optional[Dict[str, float]] = None
    pipeline_stages: Optional[int] = None
    include_io: bool = True
    verify: bool = True
    verify_iterations: int = 12
    engine: str = "event"
    unroll: Union[int, str] = 1


@dataclass
class StageOutput:
    """What one stage compute produced.

    ``data`` is the JSON-ready projection the artifact store persists;
    ``live`` holds the in-memory objects downstream computes need;
    ``content`` (optional) is a richer canonical structure hashed for
    the fingerprint when ``data`` alone would under-identify the
    output (e.g. ``translate`` stores a light projection but
    fingerprints the full graph dump).
    """

    data: Dict[str, Any]
    live: Dict[str, Any] = field(default_factory=dict)
    content: Optional[Any] = None


class StageContext:
    """A stage compute's window onto the pass manager: the request,
    upstream artifacts (projection data, live objects, fingerprints)
    and the instrumentation hub for simulation event streaming."""

    def __init__(self, manager, request: CompileRequest) -> None:
        self._manager = manager
        self.request = request

    @property
    def obs(self):
        """The manager's instrumentation hub (a no-op by default)."""
        return self._manager.obs

    def data(self, stage: str) -> Mapping[str, Any]:
        """The ``data`` projection of an upstream artifact."""
        return self._manager.data(stage)

    def live(self, stage: str, name: str) -> Any:
        """A live upstream object, hydrating (recomputing or
        rehydrating from the projection) if the artifact came from the
        store."""
        return self._manager.live(stage, name)

    def fingerprint(self, stage: str) -> str:
        """An upstream artifact's content fingerprint."""
        return self._manager.fingerprint(stage)


@dataclass(frozen=True)
class Stage:
    """One declared compiler pass.

    ``version`` is the stage's code version: bump it whenever the
    stage's computation or output layout changes, and every cached
    artifact of this stage — and, through fingerprint derivation, of
    every downstream stage — stops matching.  ``params`` selects the
    request fields this stage genuinely depends on (nothing else may
    influence its output); ``deps`` name the upstream stages whose
    fingerprints enter this stage's request key.  ``hydrate``, when
    given, rebuilds the live objects from the stored projection
    without recomputing (stages without it re-run ``compute`` over
    hydrated upstreams).  ``cacheable=False`` marks stages that are
    assembled fresh every run (``summarize``).
    """

    name: str
    version: int
    phase: Optional[str]
    deps: Tuple[str, ...]
    params: Callable[[CompileRequest], Dict[str, Any]]
    compute: Callable[[StageContext], StageOutput]
    hydrate: Optional[
        Callable[[StageContext, Mapping[str, Any]], Dict[str, Any]]
    ] = None
    cacheable: bool = True


# ----------------------------------------------------------------------
# Shared analysis helpers (used by stage computes and re-exported for
# the pipeline façade)
# ----------------------------------------------------------------------
def select_unroll(graph, bound: Fraction, include_io: bool) -> int:
    """The smallest unroll factor whose unrolled net is rate-optimal
    per *base* instruction: ``U * optimal_rate(unroll(g, U)) ==
    dependence_bound_rate(g)`` (Howard-only analysis per candidate; no
    simulation happens until the factor is chosen)."""
    for factor in range(1, MAX_UNROLL + 1):
        candidate = build_sdsp_pn(
            unroll_graph(graph, factor), include_io=include_io
        )
        if factor * optimal_rate(candidate) == bound:
            return factor
    raise AnalysisError(
        f"no unroll factor up to {MAX_UNROLL} closes the rate gap to "
        f"the dependence bound {bound}; pass an explicit unroll factor"
    )


def verify_base_rate(
    firing_counts: Mapping[str, int],
    length: int,
    transition_names,
    factor: int,
    rate: Fraction,
) -> Fraction:
    """The hard acceptance check of the unrolling path: every *base*
    instruction's steady-state rate (its copies' frustum firings summed
    over the frustum length) must equal ``factor * rate`` exactly.  Any
    miss is an :class:`~repro.errors.AnalysisError`, never a silent
    under-achieve.  Operates on projections only, so it runs
    identically on live and store-loaded artifacts.
    """
    if length == 0:
        raise AnalysisError("detected frustum is empty; no rate to verify")
    expected = factor * rate
    totals = base_firing_totals(firing_counts, transition_names)
    for base, count in sorted(totals.items()):
        achieved = Fraction(count, length)
        if achieved != expected:
            raise AnalysisError(
                f"unrolled (x{factor}) frustum under-achieves: base "
                f"instruction {base!r} runs at {achieved} per cycle, "
                f"expected exactly {expected}"
            )
    return expected


# ----------------------------------------------------------------------
# Stage computes
# ----------------------------------------------------------------------
def _parse(ctx: StageContext) -> StageOutput:
    loop = parse_loop(ctx.request.source)
    return StageOutput(
        data={
            "loop": loop.name,
            "parallel": bool(loop.parallel),
            "n_statements": len(loop.statements),
        },
        live={"loop": loop},
        content=loop_dump(loop),
    )


def _translate(ctx: StageContext) -> StageOutput:
    translation = translate(ctx.live("parse", "loop"), ctx.request.scalars)
    dump = graph_dump(translation.graph)
    return StageOutput(
        data={
            "loop": translation.loop.name,
            "n_actors": len(dump["actors"]),
            "n_arcs": len(dump["arcs"]),
        },
        live={"translation": translation, "graph": translation.graph},
        content={
            "graph": dump,
            "scalar_bindings": dict(translation.scalar_bindings),
            "root_of": dict(translation.root_of),
            "feedback_initial_keys": {
                name: list(keys)
                for name, keys in translation.feedback_initial_keys.items()
            },
            "feedback_depths": dict(translation.feedback_depths),
        },
    )


def _rate_analysis(ctx: StageContext) -> StageOutput:
    bound = dependence_bound_rate(
        ctx.live("translate", "graph"), include_io=ctx.request.include_io
    )
    return StageOutput(
        data={
            "dependence_bound": str(bound),
            "dependence_cycle_time": str(1 / bound),
        },
        live={"dependence_bound": bound},
    )


def _unroll(ctx: StageContext) -> StageOutput:
    requested = ctx.request.unroll
    graph = ctx.live("translate", "graph")
    if requested == "auto":
        bound = fraction_from(ctx.data("rate_analysis")["dependence_bound"])
        factor = select_unroll(
            graph, bound, include_io=ctx.request.include_io
        )
    else:
        factor = requested
    unrolled = unroll_graph(graph, factor) if factor > 1 else graph
    dump = graph_dump(unrolled)
    return StageOutput(
        data={
            "factor": factor,
            "n_actors": len(dump["actors"]),
            "n_arcs": len(dump["arcs"]),
        },
        live={"graph": unrolled, "factor": factor},
        content={"factor": factor, "graph": dump},
    )


def _build_pn(ctx: StageContext) -> StageOutput:
    pn = build_sdsp_pn(
        ctx.live("unroll", "graph"), include_io=ctx.request.include_io
    )
    return StageOutput(
        data={
            "net_size": pn.size,
            "n_transitions": len(pn.net.transition_names),
            "transitions": list(pn.net.transition_names),
        },
        live={"pn": pn},
        content=net_dump(pn),
    )


def _simulate(ctx: StageContext) -> StageOutput:
    pn = ctx.live("build_pn", "pn")
    frustum, behavior = detect_frustum(
        pn.timed,
        pn.initial,
        instrumentation=ctx.obs,
        engine=ctx.request.engine,
    )
    return StageOutput(
        data={"frustum": FrustumSummary.from_frustum(frustum).payload()},
        live={"frustum": frustum, "behavior": behavior},
    )


def _extract_kernel(ctx: StageContext) -> StageOutput:
    schedule = derive_schedule(
        ctx.live("simulate", "frustum"), ctx.live("simulate", "behavior")
    )
    return StageOutput(
        data={"schedule": schedule_payload(schedule)},
        live={"schedule": schedule},
    )


def _hydrate_extract_kernel(
    ctx: StageContext, data: Mapping[str, Any]
) -> Dict[str, Any]:
    return {"schedule": schedule_from_payload(data["schedule"])}


def _rate(ctx: StageContext) -> StageOutput:
    pn = ctx.live("build_pn", "pn")
    rate = optimal_rate(pn)
    bounds = theoretical_bounds(pn)
    frustum = ctx.data("simulate")["frustum"]
    achieved = verify_base_rate(
        frustum["firing_counts"],
        int(frustum["length"]),
        ctx.data("build_pn")["transitions"],
        int(ctx.data("unroll")["factor"]),
        rate,
    )
    return StageOutput(
        data={
            "rate": str(rate),
            "achieved_rate": str(achieved),
            "bounds": {
                "n": bounds.n,
                "critical_cycle_count": bounds.critical_cycle_count,
                "iteration_bound": bounds.iteration_bound,
                "step_bound": bounds.step_bound,
                "covers_all_transitions": bounds.covers_all_transitions,
            },
        },
        live={"rate": rate, "achieved": achieved, "bounds": bounds},
    )


def _verify(ctx: StageContext) -> StageOutput:
    verify_schedule(
        ctx.live("build_pn", "pn"),
        ctx.live("extract_kernel", "schedule"),
        iterations=ctx.request.verify_iterations,
        expected_rate=fraction_from(ctx.data("rate")["rate"]),
    ).require()
    return StageOutput(
        data={
            "verified": True,
            "iterations": ctx.request.verify_iterations,
        }
    )


def _scp_build(ctx: StageContext) -> StageOutput:
    scp = build_sdsp_scp_pn(
        ctx.live("build_pn", "pn"), ctx.request.pipeline_stages
    )
    policy = FifoRunPlacePolicy(scp.net, scp.run_place, scp.priority_order())
    return StageOutput(
        data={
            "stages": scp.stages,
            "size": scp.size,
            "sdsp_transitions": list(scp.sdsp_transitions),
        },
        live={"scp": scp, "policy": policy},
        # SCP construction is a pure function of the SDSP-PN and the
        # depth, so the upstream fingerprint identifies it exactly.
        content={
            "pn": ctx.fingerprint("build_pn"),
            "stages": scp.stages,
        },
    )


def _scp_simulate(ctx: StageContext) -> StageOutput:
    scp = ctx.live("scp_build", "scp")
    frustum, behavior = detect_frustum(
        scp.timed,
        scp.initial,
        ctx.live("scp_build", "policy"),
        instrumentation=ctx.obs,
        engine=ctx.request.engine,
    )
    return StageOutput(
        data={
            "frustum": FrustumSummary.from_frustum(frustum).payload(),
            "utilization": str(pipeline_utilization(scp, frustum)),
        },
        live={"frustum": frustum, "behavior": behavior},
    )


def _scp_extract(ctx: StageContext) -> StageOutput:
    schedule = derive_schedule(
        ctx.live("scp_simulate", "frustum"),
        ctx.live("scp_simulate", "behavior"),
        instructions=tuple(ctx.data("scp_build")["sdsp_transitions"]),
    )
    return StageOutput(
        data={"schedule": schedule_payload(schedule)},
        live={"schedule": schedule},
    )


def _hydrate_scp_extract(
    ctx: StageContext, data: Mapping[str, Any]
) -> Dict[str, Any]:
    return {"schedule": schedule_from_payload(data["schedule"])}


def _scp_verify(ctx: StageContext) -> StageOutput:
    stages = ctx.request.pipeline_stages
    verify_schedule(
        ctx.live("build_pn", "pn"),
        ctx.live("scp_extract", "schedule"),
        iterations=ctx.request.verify_iterations,
        capacity=1,
        latency_of=lambda t: stages,
    ).require()
    return StageOutput(
        data={
            "verified": True,
            "iterations": ctx.request.verify_iterations,
        }
    )


def _summarize(ctx: StageContext) -> StageOutput:
    request = ctx.request
    rate_data = ctx.data("rate")
    bounds = rate_data["bounds"]
    achieved = fraction_from(rate_data["achieved_rate"])
    bound = fraction_from(ctx.data("rate_analysis")["dependence_bound"])
    factor = int(ctx.data("unroll")["factor"])
    scp_utilization = scp_frustum = scp_schedule = None
    if request.pipeline_stages is not None:
        scp_data = ctx.data("scp_simulate")
        scp_utilization = fraction_from(scp_data["utilization"])
        scp_frustum = FrustumSummary.from_payload(scp_data["frustum"])
        scp_schedule = schedule_from_payload(
            ctx.data("scp_extract")["schedule"]
        )
    summary = CompiledLoopSummary(
        loop=str(ctx.data("parse")["loop"]),
        engine=request.engine,
        include_io=request.include_io,
        pipeline_stages=request.pipeline_stages,
        unroll=factor,
        achieved_rate=achieved,
        dependence_bound=bound,
        rate=fraction_from(rate_data["rate"]),
        bounds=TheoreticalBounds(
            n=int(bounds["n"]),
            critical_cycle_count=int(bounds["critical_cycle_count"]),
            iteration_bound=int(bounds["iteration_bound"]),
            step_bound=int(bounds["step_bound"]),
            covers_all_transitions=bool(bounds["covers_all_transitions"]),
        ),
        net_size=int(ctx.data("build_pn")["net_size"]),
        n_transitions=int(ctx.data("build_pn")["n_transitions"]),
        frustum=FrustumSummary.from_payload(ctx.data("simulate")["frustum"]),
        schedule=schedule_from_payload(
            ctx.data("extract_kernel")["schedule"]
        ),
        scp_utilization=scp_utilization,
        scp_frustum=scp_frustum,
        scp_schedule=scp_schedule,
    )
    return StageOutput(
        data={"payload": summary.payload()},
        live={"summary": summary},
    )


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
STAGES: Dict[str, Stage] = {
    stage.name: stage
    for stage in (
        Stage(
            name="parse",
            version=1,
            phase="parse",
            deps=(),
            params=lambda r: {"source": r.source},
            compute=_parse,
        ),
        Stage(
            name="translate",
            version=1,
            phase="translate",
            deps=("parse",),
            params=lambda r: {"scalars": r.scalars},
            compute=_translate,
        ),
        Stage(
            name="rate_analysis",
            version=1,
            phase="rate-analysis",
            deps=("translate",),
            params=lambda r: {"include_io": r.include_io},
            compute=_rate_analysis,
        ),
        Stage(
            name="unroll",
            version=1,
            phase="unroll",
            deps=("translate", "rate_analysis"),
            params=lambda r: {
                "unroll": r.unroll,
                "include_io": r.include_io,
            },
            compute=_unroll,
        ),
        Stage(
            name="build_pn",
            version=1,
            phase="build-sdsp-pn",
            deps=("unroll",),
            params=lambda r: {"include_io": r.include_io},
            compute=_build_pn,
        ),
        Stage(
            name="simulate",
            version=1,
            phase="detect-frustum",
            deps=("build_pn",),
            params=lambda r: {"engine": r.engine},
            compute=_simulate,
        ),
        Stage(
            name="extract_kernel",
            version=1,
            phase="derive-schedule",
            deps=("simulate",),
            params=lambda r: {},
            compute=_extract_kernel,
            hydrate=_hydrate_extract_kernel,
        ),
        Stage(
            name="rate",
            version=1,
            phase="rate",
            deps=("build_pn", "simulate", "unroll"),
            params=lambda r: {},
            compute=_rate,
        ),
        Stage(
            name="verify",
            version=1,
            phase="verify",
            deps=("build_pn", "extract_kernel", "rate"),
            params=lambda r: {"verify_iterations": r.verify_iterations},
            compute=_verify,
        ),
        Stage(
            name="scp_build",
            version=1,
            phase="scp-build",
            deps=("build_pn",),
            params=lambda r: {"pipeline_stages": r.pipeline_stages},
            compute=_scp_build,
        ),
        Stage(
            name="scp_simulate",
            version=1,
            phase="scp-detect-frustum",
            deps=("scp_build",),
            params=lambda r: {"engine": r.engine},
            compute=_scp_simulate,
        ),
        Stage(
            name="scp_extract",
            version=1,
            phase="scp-derive-schedule",
            deps=("scp_simulate", "scp_build"),
            params=lambda r: {},
            compute=_scp_extract,
            hydrate=_hydrate_scp_extract,
        ),
        Stage(
            name="scp_verify",
            version=1,
            phase="scp-verify",
            deps=("build_pn", "scp_extract"),
            params=lambda r: {
                "verify_iterations": r.verify_iterations,
                "pipeline_stages": r.pipeline_stages,
            },
            compute=_scp_verify,
        ),
        Stage(
            name="summarize",
            version=1,
            phase=None,
            deps=(
                "parse",
                "rate_analysis",
                "unroll",
                "build_pn",
                "simulate",
                "extract_kernel",
                "rate",
            ),
            params=lambda r: {
                "engine": r.engine,
                "include_io": r.include_io,
                "pipeline_stages": r.pipeline_stages,
                "unroll": r.unroll,
            },
            compute=_summarize,
            cacheable=False,
        ),
    )
}

#: The execution order of the unconditional stages — the legacy phase
#: order of the monolithic ``compile_loop``, with ``rate_analysis``
#: split out of the old fused ``unroll`` phase.
CORE_STAGE_ORDER: Tuple[str, ...] = (
    "parse",
    "translate",
    "rate_analysis",
    "unroll",
    "build_pn",
    "simulate",
    "extract_kernel",
    "rate",
)

#: The resource-model suffix, run only when a pipeline depth was
#: requested (``scp_verify`` additionally requires ``verify=True``).
SCP_STAGE_ORDER: Tuple[str, ...] = (
    "scp_build",
    "scp_simulate",
    "scp_extract",
)
