"""The pass manager: pull-based execution of the declared stages.

:class:`PassManager` resolves stages on demand.  Asking for a stage's
artifact first resolves its dependencies (recursively), derives the
stage's *request key* —

    sha256(stable_json({store schema, stage name, stage code version,
                        upstream fingerprints, stage params}))

— and then either loads the artifact from the
:class:`~repro.compiler.store.ArtifactStore` (a **hit**: only the JSON
projection comes back, no live objects) or runs the stage's compute
under its legacy instrumentation phase and stores the result.

Because the key hashes upstream **fingerprints** rather than upstream
request parameters, two requests that differ only in a downstream
parameter (the unroll factor, the simulation engine, the SCP depth)
share every upstream artifact, and requests whose different parameters
happen to produce identical intermediate content (``unroll="auto"``
resolving to the explicit factor; the ``step`` and ``event`` engines'
bit-identical frusta) converge back onto shared downstream artifacts.

**Hydration.**  A consumer needing a *live* object from a stage that
hit the store triggers hydration: the stage's ``hydrate`` rebuilds the
objects from the stored projection when one is declared (e.g. the
kernel-extraction stages rebuild their
:class:`~repro.core.schedule.PipelinedSchedule` from the payload), and
otherwise the stage's compute re-runs over (recursively hydrated)
upstreams.  The stored data and fingerprint are kept — the stages are
deterministic, so a recompute reproduces them — and hydrations are
counted under ``stage.cache.hydrate``, never as hits or misses.

**Failure attribution.**  Any exception escaping a stage compute is
tagged with the stage name (:func:`mark_stage` — first tag wins, the
original exception type is preserved), so sweep records, the service
and ``repro explain`` can name the failing stage without parsing
messages.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..errors import AnalysisError
from ..loops.unroll import validate_unroll
from ..obs.events import Instrumentation, NULL_INSTRUMENTATION
from ..obs.schema import stable_json
from .artifacts import content_fingerprint
from .result import CompiledLoop, fraction_from
from .stages import (
    CORE_STAGE_ORDER,
    SCP_STAGE_ORDER,
    STAGES,
    CompileRequest,
    Stage,
    StageContext,
)
from .store import STORE_SCHEMA_VERSION, ArtifactStore

__all__ = [
    "Artifact",
    "PassManager",
    "compile_live",
    "compile_staged",
    "failing_stage",
    "make_request",
    "mark_stage",
    "request_key",
]

#: Attribute carrying a stage name on an exception raised inside it.
STAGE_ATTR = "repro_stage"


def mark_stage(exc: BaseException, stage: str) -> BaseException:
    """Tag ``exc`` with the stage it escaped from (first tag wins, so
    an error crossing several stage frames keeps its origin)."""
    if getattr(exc, STAGE_ATTR, None) is None:
        try:
            setattr(exc, STAGE_ATTR, stage)
        except AttributeError:  # pragma: no cover - slotted exceptions
            pass
    return exc


def failing_stage(exc: BaseException) -> Optional[str]:
    """The stage ``exc`` was tagged with, or None."""
    stage = getattr(exc, STAGE_ATTR, None)
    return stage if isinstance(stage, str) else None


def make_request(
    source: str,
    scalars: Optional[Mapping[str, float]] = None,
    pipeline_stages: Optional[int] = None,
    include_io: bool = True,
    verify: bool = True,
    verify_iterations: int = 12,
    engine: str = "event",
    unroll: Union[int, str] = 1,
) -> CompileRequest:
    """Validate raw compile inputs into a :class:`CompileRequest`
    (bad ``unroll`` values raise :class:`~repro.errors.ReproError`
    tagged with stage ``"validate"``, before any stage runs)."""
    try:
        requested = validate_unroll(unroll)
    except Exception as exc:
        raise mark_stage(exc, "validate")
    return CompileRequest(
        source=source,
        scalars=dict(scalars) if scalars is not None else None,
        pipeline_stages=pipeline_stages,
        include_io=bool(include_io),
        verify=bool(verify),
        verify_iterations=int(verify_iterations),
        engine=engine,
        unroll=requested,
    )


def request_key(
    stage: Stage,
    request: CompileRequest,
    dep_fingerprints: Mapping[str, str],
) -> str:
    """The store address of one stage's output for one request: a
    sha256 over the store schema, the stage's name and code version,
    its upstream fingerprints, and the request parameters it declares.
    """
    canonical = stable_json(
        {
            "store_schema": STORE_SCHEMA_VERSION,
            "stage": stage.name,
            "version": stage.version,
            "deps": dict(dep_fingerprints),
            "params": stage.params(request),
        }
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Artifact:
    """One resolved stage output.

    ``live`` is None when the artifact came from the store and has not
    been hydrated; ``outcome`` is ``"computed"``, ``"hit"`` or
    ``"hydrated"`` (a hit whose live objects were rebuilt on demand).
    """

    stage: str
    key: str
    fingerprint: str
    data: Dict[str, Any]
    live: Optional[Dict[str, Any]]
    outcome: str


class PassManager:
    """Pull-based stage resolution for one :class:`CompileRequest`.

    With no store, every requested stage computes exactly once (the
    legacy monolithic behavior, phase timings included).  With a
    store, stages resolve to cached artifacts wherever the request key
    matches, and only the genuinely affected suffix of the pipeline
    recomputes.
    """

    def __init__(
        self,
        request: CompileRequest,
        store: Optional[ArtifactStore] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.request = request
        self.store = store
        self.obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        self._artifacts: Dict[str, Artifact] = {}
        self._ctx = StageContext(self, request)

    # ------------------------------------------------------------------
    # Artifact resolution
    # ------------------------------------------------------------------
    def artifact(self, name: str) -> Artifact:
        """Resolve ``name`` (memoised per manager): dependencies first,
        then store lookup, then compute-and-store."""
        found = self._artifacts.get(name)
        if found is not None:
            return found
        stage = STAGES[name]
        deps = {dep: self.artifact(dep).fingerprint for dep in stage.deps}
        key = request_key(stage, self.request, deps)
        if stage.cacheable and self.store is not None:
            entry = self.store.load(name, key)
            if entry is not None:
                found = Artifact(
                    stage=name,
                    key=key,
                    fingerprint=entry["fingerprint"],
                    data=entry["data"],
                    live=None,
                    outcome="hit",
                )
                self._artifacts[name] = found
                return found
        found = self._compute(stage, key)
        self._artifacts[name] = found
        if stage.cacheable and self.store is not None:
            self.store.store(name, key, found.fingerprint, found.data)
        return found

    def _compute(self, stage: Stage, key: str) -> Artifact:
        scope = (
            self.obs.phase(stage.phase)
            if stage.phase is not None
            else nullcontext()
        )
        try:
            with scope:
                output = stage.compute(self._ctx)
        except Exception as exc:
            raise mark_stage(exc, stage.name)
        content = (
            output.content if output.content is not None else output.data
        )
        return Artifact(
            stage=stage.name,
            key=key,
            fingerprint=content_fingerprint(
                stage.name, stage.version, content
            ),
            data=output.data,
            live=output.live,
            outcome="computed",
        )

    def _hydrate(self, artifact: Artifact) -> None:
        """Rebuild a store-loaded artifact's live objects: via the
        stage's declared ``hydrate`` when it has one, else by re-running
        its compute over (recursively hydrated) upstreams.  The stored
        data and fingerprint stand — the stages are deterministic."""
        stage = STAGES[artifact.stage]
        scope = (
            self.obs.phase(stage.phase)
            if stage.phase is not None
            else nullcontext()
        )
        try:
            with scope:
                if stage.hydrate is not None:
                    artifact.live = stage.hydrate(self._ctx, artifact.data)
                else:
                    artifact.live = stage.compute(self._ctx).live
        except Exception as exc:
            raise mark_stage(exc, stage.name)
        artifact.outcome = "hydrated"
        if self.store is not None:
            registry = self.store.registry
            registry.counter("stage.cache.hydrate").inc()
            registry.counter(f"stage.cache.hydrate.{stage.name}").inc()

    # ------------------------------------------------------------------
    # StageContext backend
    # ------------------------------------------------------------------
    def data(self, name: str) -> Mapping[str, Any]:
        return self.artifact(name).data

    def fingerprint(self, name: str) -> str:
        return self.artifact(name).fingerprint

    def live(self, name: str, field: str) -> Any:
        artifact = self.artifact(name)
        if artifact.live is None:
            self._hydrate(artifact)
        return artifact.live[field]

    @property
    def outcomes(self) -> Dict[str, str]:
        """Per-stage resolution outcomes so far (``computed`` / ``hit``
        / ``hydrated``), in resolution order."""
        return {
            name: artifact.outcome
            for name, artifact in self._artifacts.items()
        }

    # ------------------------------------------------------------------
    # Driving a whole compilation
    # ------------------------------------------------------------------
    def run(self, summary: bool = False) -> None:
        """Resolve the full stage sequence of one compilation in the
        legacy phase order, including the conditional suffixes
        (``verify``, the SCP stages, ``summarize``)."""
        request = self.request
        for name in CORE_STAGE_ORDER:
            self.artifact(name)
        if request.unroll == "auto":
            # The auto acceptance check of the legacy "rate" phase:
            # the selected factor must close the gap to γ* exactly.
            # It compares projections only, so hits never hydrate.
            achieved = fraction_from(self.data("rate")["achieved_rate"])
            bound = fraction_from(
                self.data("rate_analysis")["dependence_bound"]
            )
            if achieved != bound:
                factor = int(self.data("unroll")["factor"])
                raise mark_stage(
                    AnalysisError(
                        f"unroll='auto' selected factor {factor} but "
                        f"the achieved per-instruction rate {achieved} "
                        f"does not equal the dependence bound {bound}"
                    ),
                    "rate",
                )
        if request.verify:
            self.artifact("verify")
        if request.pipeline_stages is not None:
            for name in SCP_STAGE_ORDER:
                self.artifact(name)
            if request.verify:
                self.artifact("scp_verify")
        if summary:
            self.artifact("summarize")


def compile_live(
    request: CompileRequest,
    instrumentation: Optional[Instrumentation] = None,
) -> CompiledLoop:
    """Run the full stage sequence storeless (every stage computes,
    all live artifacts present) and assemble the classic
    :class:`~repro.compiler.result.CompiledLoop` — the engine behind
    :func:`repro.pipeline.compile_loop`."""
    manager = PassManager(request, instrumentation=instrumentation)
    manager.run()
    result = CompiledLoop(
        translation=manager.live("translate", "translation"),
        pn=manager.live("build_pn", "pn"),
        frustum=manager.live("simulate", "frustum"),
        behavior=manager.live("simulate", "behavior"),
        schedule=manager.live("extract_kernel", "schedule"),
        bounds=manager.live("rate", "bounds"),
        engine=request.engine,
        include_io=request.include_io,
        rate=manager.live("rate", "rate"),
        unroll=manager.live("unroll", "factor"),
        achieved_rate=manager.live("rate", "achieved"),
        dependence_bound=manager.live("rate_analysis", "dependence_bound"),
    )
    if request.pipeline_stages is not None:
        result.scp = manager.live("scp_build", "scp")
        result.scp_frustum = manager.live("scp_simulate", "frustum")
        result.scp_behavior = manager.live("scp_simulate", "behavior")
        result.scp_schedule = manager.live("scp_extract", "schedule")
    return result


def compile_staged(
    request: CompileRequest,
    store: ArtifactStore,
    instrumentation: Optional[Instrumentation] = None,
) -> Tuple[Dict[str, Any], Dict[str, str]]:
    """Run one compilation against the per-stage artifact store and
    return ``(payload, outcomes)``: the deterministic
    ``CompiledLoopSummary.payload()`` dict plus the per-stage
    resolution outcomes (``computed`` / ``hit`` / ``hydrated``).

    The payload is assembled from stage projections alone, so a fully
    warm request hydrates nothing — it costs a handful of JSON reads.
    """
    manager = PassManager(
        request, store=store, instrumentation=instrumentation
    )
    manager.run(summary=True)
    return manager.data("summarize")["payload"], manager.outcomes
