"""The per-stage artifact store.

This extends the content-addressed design of
:class:`repro.batch.cache.CompileCache` (one verified, atomically
written JSON file per key) from whole compilations down to individual
compiler stages: ``<root>/<stage>/<key>.json``, where ``key`` is the
stage's *request key* — sha256 over (store schema, stage name, stage
code version, upstream artifact fingerprints, stage parameters).

Because downstream keys are derived from upstream **fingerprints**
(see :mod:`repro.compiler.artifacts`), changing a downstream parameter
— the unroll factor, the simulation engine, the SCP depth — leaves
every upstream entry addressable and only the genuinely affected
suffix of the pipeline recomputes.

Integrity rules are the compile cache's, verbatim:

* **atomic writes** via :func:`repro.batch.cache.atomic_write_json`;
* **verified reads** — a load recomputes the embedded data hash and
  checks the stored stage/key/schema; any mismatch counts as a miss,
  bumps ``stage.cache.corrupt``, and removes the entry so the slot
  heals on the next store.

Counters land in the metrics registry under ``stage.cache.{hit,miss,
corrupt,store}`` plus per-stage ``stage.cache.<outcome>.<stage>``
breakdowns — explicit ``counter()`` calls work even while the registry
is disabled, so sweep and service records can report per-stage hit
rates without the profiling machinery switched on.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Dict, Mapping, Optional, Union

from ..batch.cache import atomic_write_json
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.schema import stable_json

__all__ = [
    "STORE_SCHEMA_VERSION",
    "STAGE_CACHE_OUTCOMES",
    "ArtifactStore",
    "stage_store_dir",
]

#: Bump whenever the stage-entry layout or the request-key derivation
#: changes — old entries then simply stop matching and recompute.
STORE_SCHEMA_VERSION = 1

#: The counter suffixes the store emits (mirrors ``batch.cache.*``).
STAGE_CACHE_OUTCOMES = ("hit", "miss", "corrupt", "store")

_PathLike = Union[str, pathlib.Path]


def stage_store_dir(cache_dir: _PathLike) -> pathlib.Path:
    """Where the per-stage artifacts of a compile-cache directory live:
    ``<cache_dir>/stages``, beside the whole-payload entries so one
    ``--cache-dir`` (or ``REPRO_CACHE``) switch controls both tiers."""
    return pathlib.Path(cache_dir) / "stages"


def _data_sha256(data: Mapping[str, Any]) -> str:
    return hashlib.sha256(stable_json(data).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Content-addressed store of per-stage artifacts, one JSON file
    per (stage, request key), safe for concurrent readers and writers.

    Like :class:`~repro.batch.cache.CompileCache`, instances are
    pickle-friendly (they hold only the directory path) so sweep and
    service pool workers can carry one across a fork/spawn; each
    process talks to its own registry.
    """

    def __init__(
        self,
        directory: _PathLike,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self._registry = registry

    def __getstate__(self) -> Dict[str, Any]:
        return {"directory": self.directory}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.directory = state["directory"]
        self._registry = None

    @property
    def registry(self) -> MetricsRegistry:
        """Where stage-cache counters land (the bound registry, or the
        process-wide default when none was given)."""
        return self._registry if self._registry is not None else default_registry()

    def _count(self, outcome: str, stage: str) -> None:
        self.registry.counter(f"stage.cache.{outcome}").inc()
        self.registry.counter(f"stage.cache.{outcome}.{stage}").inc()

    def path_for(self, stage: str, key: str) -> pathlib.Path:
        """The on-disk entry for one (stage, request key)."""
        return self.directory / stage / f"{key}.json"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, stage: str, key: str) -> Optional[Dict[str, Any]]:
        """The stored artifact for ``(stage, key)`` as a
        ``{"fingerprint", "data"}`` dict, or ``None`` on miss.

        A corrupt entry — malformed JSON, wrong embedded stage/key or
        schema version, data-hash mismatch — is treated as a miss,
        counted under ``stage.cache.corrupt``, and deleted so the next
        store rewrites it cleanly.
        """
        path = self.path_for(stage, key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self._count("miss", stage)
            return None
        entry = self._decode(text, stage, key)
        if entry is None:
            self._count("corrupt", stage)
            self._count("miss", stage)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._count("hit", stage)
        return {"fingerprint": entry["fingerprint"], "data": entry["data"]}

    def _decode(
        self, text: str, stage: str, key: str
    ) -> Optional[Dict[str, Any]]:
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(entry, dict):
            return None
        schema = entry.get("store_schema")
        if not isinstance(schema, int) or schema != STORE_SCHEMA_VERSION:
            return None
        if entry.get("stage") != stage or entry.get("key") != key:
            return None
        data = entry.get("data")
        fingerprint = entry.get("fingerprint")
        if not isinstance(data, dict) or not isinstance(fingerprint, str):
            return None
        if entry.get("data_sha256") != _data_sha256(data):
            return None
        return entry

    def store(
        self,
        stage: str,
        key: str,
        fingerprint: str,
        data: Mapping[str, Any],
    ) -> pathlib.Path:
        """Atomically persist one stage artifact under its request key."""
        entry = {
            "store_schema": STORE_SCHEMA_VERSION,
            "stage": stage,
            "key": key,
            "fingerprint": fingerprint,
            "data": dict(data),
            "data_sha256": _data_sha256(data),
        }
        target = atomic_write_json(
            self.path_for(stage, key), entry, key_hint=key
        )
        self._count("store", stage)
        return target

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, stage_key) -> bool:
        stage, key = stage_key
        return self.path_for(stage, key).is_file()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(
            1
            for stage_dir in self.directory.iterdir()
            if stage_dir.is_dir()
            for path in stage_dir.iterdir()
            if path.suffix == ".json"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.directory)!r})"
