"""Canonical artifact dumps and content fingerprints.

Every stage artifact carries a *fingerprint*: a sha256 over the
canonical JSON (:func:`repro.obs.stable_json`) of the stage's output
content tagged with the stage name and code version.  Downstream
request keys are derived from upstream **fingerprints**, never from
upstream request parameters — that is what lets two different requests
converge on shared downstream artifacts:

* ``unroll="auto"`` resolving to factor ``U`` and an explicit
  ``unroll=U`` produce the same unrolled graph, hence the same
  ``unroll`` fingerprint, hence identical request keys for every stage
  after it (PN build, simulation, scheduling, verification all hit);
* the ``step`` and ``event`` engines produce bit-identical frusta, so
  a ``simulate`` artifact computed under one engine fingerprints the
  same as the other and the extraction/verification stages converge.

The dump helpers here turn the library's live objects (loop IR,
dataflow graphs, SDSP-PNs) into deterministic JSON-ready structures
for exactly that hashing purpose.  They are projections, not codecs:
live objects are rebuilt by re-running the (cheap, deterministic)
upstream stages, never parsed back out of a dump, so the float
normalisation ``stable_json`` applies can never corrupt a live value.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from ..obs.schema import stable_json

__all__ = [
    "content_fingerprint",
    "graph_dump",
    "loop_dump",
    "net_dump",
]


def content_fingerprint(stage: str, version: int, content: Any) -> str:
    """The content address of one stage output: sha256 over the
    canonical JSON of ``content`` tagged with the producing stage and
    its code version (so bumping a stage's ``version`` invalidates its
    artifacts *and* everything derived from them)."""
    canonical = stable_json(
        {"stage": stage, "version": version, "content": content}
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def loop_dump(loop) -> Dict[str, Any]:
    """Canonical projection of a parsed :class:`~repro.loops.ir.Loop`.

    Statement ``str`` forms capture the full semantics (targets,
    operators, offsets) in source order, which is what downstream
    stages depend on.
    """
    return {
        "name": loop.name,
        "parallel": bool(loop.parallel),
        "statements": [str(statement) for statement in loop.statements],
    }


def graph_dump(graph) -> Dict[str, Any]:
    """Canonical projection of a
    :class:`~repro.dataflow.graph.DataflowGraph`: actors sorted by
    name, arcs sorted by endpoint/port tuple, enum kinds as their
    stable string values."""
    return {
        "name": graph.name,
        "actors": [
            {
                "name": actor.name,
                "kind": actor.kind.value,
                "arity": actor.arity,
                "params": [[key, value] for key, value in actor.params],
            }
            for actor in sorted(graph.actors, key=lambda a: a.name)
        ],
        "arcs": [
            {
                "source": arc.source,
                "source_port": arc.source_port,
                "target": arc.target,
                "target_port": arc.target_port,
                "kind": arc.kind.value,
                "initial_tokens": arc.initial_tokens,
            }
            for arc in sorted(
                graph.arcs,
                key=lambda a: (
                    a.source, a.source_port, a.target, a.target_port
                ),
            )
        ],
    }


def net_dump(pn) -> Dict[str, Any]:
    """Canonical projection of an
    :class:`~repro.core.sdsp_pn.SdspPetriNet`: structure, durations and
    initial marking — everything the simulation and rate analyses
    depend on."""
    return {
        "places": list(pn.net.place_names),
        "transitions": list(pn.net.transition_names),
        "arcs": sorted(pn.net.arcs),
        "durations": dict(pn.durations),
        "initial": dict(pn.initial),
        "data_place_of": dict(pn.data_place_of),
        "ack_place_of": dict(pn.ack_place_of),
    }
