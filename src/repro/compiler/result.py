"""Result types of a compilation: the live artifact bundle and its
deterministic, serialisable projection.

These classes moved here verbatim from :mod:`repro.pipeline` when the
monolithic ``compile_loop`` was decomposed into the staged pass
manager (:mod:`repro.compiler.manager`); the pipeline module re-exports
them, so ``from repro.pipeline import CompiledLoopSummary`` keeps
working and every payload stays byte-identical.

* :class:`CompiledLoop` — every live artifact of one compilation
  (translation, nets, frusta, behavior graphs, schedules);
* :class:`CompiledLoopSummary` — the pure-data projection whose
  :meth:`~CompiledLoopSummary.payload` round-trips byte-identically
  under :func:`repro.obs.stable_json` (the value type of the compile
  cache and of ``repro sweep`` / ``repro serve``);
* :class:`FrustumSummary` — the serialisable facts of a detected
  cyclic frustum.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.bounds import TheoreticalBounds
from ..core.rate import optimal_rate, pipeline_utilization
from ..core.schedule import PipelinedSchedule, ScheduledOp
from ..core.scp import SdspScpNet
from ..core.sdsp_pn import SdspPetriNet
from ..errors import ReproError
from ..loops.translate import TranslationResult
from ..petrinet.behavior import BehaviorGraph, CyclicFrustum

__all__ = [
    "PAYLOAD_SCHEMA_VERSION",
    "CompiledLoop",
    "CompiledLoopSummary",
    "FrustumSummary",
    "fraction_from",
    "schedule_payload",
    "schedule_from_payload",
]

#: Version of the :meth:`CompiledLoopSummary.payload` layout.  Version
#: 2 added ``unroll`` / ``achieved_rate`` / ``dependence_bound`` (and
#: this field itself); version-1 payloads — which carry none of them —
#: still load with ``unroll = 1`` defaults, while payloads *newer* than
#: the reader are rejected outright (a reader must never silently
#: reinterpret fields it does not know about).
PAYLOAD_SCHEMA_VERSION = 2


def fraction_from(value: Any) -> Fraction:
    """Parse a payload rational: an int, an ``int``-valued string, or
    the exact ``"p/q"`` form the ledger schema emits."""
    return Fraction(str(value))


@dataclass(frozen=True)
class FrustumSummary:
    """The deterministic facts of a detected cyclic frustum.

    This is the serialisable projection of
    :class:`~repro.petrinet.behavior.CyclicFrustum` — everything the
    Tables 1/2 measurement columns need, without the instantaneous
    state or the behavior graph, so it survives a JSON round trip
    byte-identically (the compile cache stores exactly this).
    """

    start_time: int
    repeat_time: int
    firing_counts: Dict[str, int]
    schedule_steps: Tuple[Tuple[int, Tuple[str, ...]], ...]

    @property
    def length(self) -> int:
        return self.repeat_time - self.start_time

    @classmethod
    def from_frustum(cls, frustum: CyclicFrustum) -> "FrustumSummary":
        return cls(
            start_time=frustum.start_time,
            repeat_time=frustum.repeat_time,
            firing_counts=dict(frustum.firing_counts),
            schedule_steps=tuple(
                (time, tuple(fired)) for time, fired in frustum.schedule_steps
            ),
        )

    def payload(self) -> Dict[str, Any]:
        return {
            "start_time": self.start_time,
            "repeat_time": self.repeat_time,
            "length": self.length,
            "firing_counts": dict(self.firing_counts),
            "schedule_steps": [
                [time, list(fired)] for time, fired in self.schedule_steps
            ],
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "FrustumSummary":
        return cls(
            start_time=int(data["start_time"]),
            repeat_time=int(data["repeat_time"]),
            firing_counts={
                str(name): int(count)
                for name, count in data["firing_counts"].items()
            },
            schedule_steps=tuple(
                (int(time), tuple(str(name) for name in fired))
                for time, fired in data["schedule_steps"]
            ),
        )


def schedule_payload(schedule: PipelinedSchedule) -> Dict[str, Any]:
    """The JSON-ready projection of a :class:`PipelinedSchedule`."""
    return {
        "start_time": schedule.start_time,
        "initiation_interval": schedule.initiation_interval,
        "iterations_per_kernel": schedule.iterations_per_kernel,
        "instructions": list(schedule.instructions),
        "prologue": [
            [op.time, op.instruction, op.iteration]
            for op in schedule.prologue
        ],
        "kernel": [
            [rel, name, base] for rel, name, base in schedule.kernel
        ],
    }


def schedule_from_payload(data: Mapping[str, Any]) -> PipelinedSchedule:
    """Rehydrate a :class:`PipelinedSchedule` from its projection."""
    return PipelinedSchedule(
        prologue=[
            ScheduledOp(int(time), str(name), int(iteration))
            for time, name, iteration in data["prologue"]
        ],
        kernel=[
            (int(rel), str(name), int(base))
            for rel, name, base in data["kernel"]
        ],
        start_time=int(data["start_time"]),
        initiation_interval=int(data["initiation_interval"]),
        iterations_per_kernel=int(data["iterations_per_kernel"]),
        instructions=tuple(str(name) for name in data["instructions"]),
    )


@dataclass
class CompiledLoopSummary:
    """The deterministic payload of one compilation.

    Everything here is a pure function of ``(source, scalars,
    pipeline_stages, include_io, engine)`` — no nets, no behavior
    graphs, no wall clock — which makes it the value type of the
    content-addressed compile cache (:mod:`repro.batch.cache`) and the
    per-item record of ``repro sweep``.  ``payload()`` and
    ``from_payload()`` round-trip byte-identically under
    :func:`repro.obs.stable_json`.
    """

    loop: str
    engine: str
    include_io: bool
    pipeline_stages: Optional[int]
    rate: Fraction
    bounds: TheoreticalBounds
    net_size: int
    n_transitions: int
    frustum: FrustumSummary
    schedule: PipelinedSchedule
    scp_utilization: Optional[Fraction] = None
    scp_frustum: Optional[FrustumSummary] = None
    scp_schedule: Optional[PipelinedSchedule] = None
    unroll: int = 1
    achieved_rate: Optional[Fraction] = None
    dependence_bound: Optional[Fraction] = None

    @property
    def optimal_rate(self) -> Fraction:
        """Alias matching :attr:`CompiledLoop.optimal_rate`."""
        return self.rate

    @property
    def cycle_time(self) -> Fraction:
        return Fraction(1, 1) / self.rate

    def payload(self) -> Dict[str, Any]:
        """The stable JSON-ready dict (ledger-schema normalised)."""
        from ..obs.schema import normalize_payload

        raw: Dict[str, Any] = {
            "payload_schema": PAYLOAD_SCHEMA_VERSION,
            "loop": self.loop,
            "engine": self.engine,
            "include_io": self.include_io,
            "pipeline_stages": self.pipeline_stages,
            "unroll": self.unroll,
            "achieved_rate": self.achieved_rate,
            "dependence_bound": self.dependence_bound,
            "rate": self.rate,
            "cycle_time": self.cycle_time,
            "initiation_interval": self.schedule.initiation_interval,
            "iterations_per_kernel": self.schedule.iterations_per_kernel,
            "net_size": self.net_size,
            "n_transitions": self.n_transitions,
            "bounds": {
                "n": self.bounds.n,
                "critical_cycle_count": self.bounds.critical_cycle_count,
                "iteration_bound": self.bounds.iteration_bound,
                "step_bound": self.bounds.step_bound,
                "covers_all_transitions": self.bounds.covers_all_transitions,
            },
            "frustum": self.frustum.payload(),
            "schedule": schedule_payload(self.schedule),
        }
        if self.pipeline_stages is not None:
            raw["scp"] = {
                "utilization": self.scp_utilization,
                "frustum": (
                    self.scp_frustum.payload()
                    if self.scp_frustum is not None
                    else None
                ),
                "schedule": (
                    schedule_payload(self.scp_schedule)
                    if self.scp_schedule is not None
                    else None
                ),
            }
        return normalize_payload(raw)

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "CompiledLoopSummary":
        """Rehydrate a summary from a :meth:`payload` dict (e.g. a
        compile-cache entry) without re-simulating anything.

        Payloads from schema version 1 (pre-unrolling builds carry no
        ``payload_schema`` field at all) load with ``unroll = 1``
        defaults; payloads newer than this reader are refused — their
        unknown fields could change the meaning of the known ones.
        """
        schema = int(data.get("payload_schema", 1))
        if schema > PAYLOAD_SCHEMA_VERSION:
            raise ReproError(
                f"compiled-loop payload has schema version {schema}, "
                f"newer than this reader ({PAYLOAD_SCHEMA_VERSION}); "
                "upgrade before loading it"
            )
        bounds = data["bounds"]
        scp = data.get("scp")
        stages = data.get("pipeline_stages")
        achieved = data.get("achieved_rate")
        dependence = data.get("dependence_bound")
        return cls(
            unroll=int(data.get("unroll", 1)),
            achieved_rate=(
                fraction_from(achieved) if achieved is not None else None
            ),
            dependence_bound=(
                fraction_from(dependence) if dependence is not None else None
            ),
            loop=str(data["loop"]),
            engine=str(data["engine"]),
            include_io=bool(data["include_io"]),
            pipeline_stages=int(stages) if stages is not None else None,
            rate=fraction_from(data["rate"]),
            bounds=TheoreticalBounds(
                n=int(bounds["n"]),
                critical_cycle_count=int(bounds["critical_cycle_count"]),
                iteration_bound=int(bounds["iteration_bound"]),
                step_bound=int(bounds["step_bound"]),
                covers_all_transitions=bool(bounds["covers_all_transitions"]),
            ),
            net_size=int(data["net_size"]),
            n_transitions=int(data["n_transitions"]),
            frustum=FrustumSummary.from_payload(data["frustum"]),
            schedule=schedule_from_payload(data["schedule"]),
            scp_utilization=(
                fraction_from(scp["utilization"])
                if scp is not None and scp.get("utilization") is not None
                else None
            ),
            scp_frustum=(
                FrustumSummary.from_payload(scp["frustum"])
                if scp is not None and scp.get("frustum") is not None
                else None
            ),
            scp_schedule=(
                schedule_from_payload(scp["schedule"])
                if scp is not None and scp.get("schedule") is not None
                else None
            ),
        )


@dataclass
class CompiledLoop:
    """Every artifact of one compilation.

    ``scp``/``scp_frustum``/``scp_schedule`` are None unless a pipeline
    depth was requested.
    """

    translation: TranslationResult
    pn: SdspPetriNet
    frustum: CyclicFrustum
    behavior: BehaviorGraph
    schedule: PipelinedSchedule
    bounds: TheoreticalBounds
    engine: str = "event"
    include_io: bool = True
    rate: Optional[Fraction] = None
    scp: Optional[SdspScpNet] = None
    scp_frustum: Optional[CyclicFrustum] = None
    scp_behavior: Optional[BehaviorGraph] = None
    scp_schedule: Optional[PipelinedSchedule] = None
    unroll: int = 1
    achieved_rate: Optional[Fraction] = None
    dependence_bound: Optional[Fraction] = None

    @property
    def optimal_rate(self) -> Fraction:
        """The time-optimal computation rate the ideal model achieves.

        :func:`repro.pipeline.compile_loop` computes this exactly once
        (Howard plus the enumeration/Lawler cross-checks) and stores it
        in :attr:`rate`; the property only falls back to recomputing
        for hand-assembled instances that never set the field.
        """
        if self.rate is None:
            self.rate = optimal_rate(self.pn)
        return self.rate

    @property
    def scp_utilization(self) -> Optional[Fraction]:
        if self.scp is None or self.scp_frustum is None:
            return None
        return pipeline_utilization(self.scp, self.scp_frustum)

    def summary(self) -> CompiledLoopSummary:
        """The deterministic, serialisable projection of this result —
        what the compile cache stores and ``repro sweep`` merges."""
        return CompiledLoopSummary(
            loop=self.translation.loop.name,
            engine=self.engine,
            include_io=self.include_io,
            pipeline_stages=self.scp.stages if self.scp is not None else None,
            unroll=self.unroll,
            achieved_rate=self.achieved_rate,
            dependence_bound=self.dependence_bound,
            rate=self.optimal_rate,
            bounds=self.bounds,
            net_size=self.pn.size,
            n_transitions=len(self.pn.net.transition_names),
            frustum=FrustumSummary.from_frustum(self.frustum),
            schedule=self.schedule,
            scp_utilization=self.scp_utilization,
            scp_frustum=(
                FrustumSummary.from_frustum(self.scp_frustum)
                if self.scp_frustum is not None
                else None
            ),
            scp_schedule=self.scp_schedule,
        )
