"""The staged compiler core.

The monolithic ``compile_loop`` flow, decomposed into declared, pure,
schema-versioned passes:

* :mod:`repro.compiler.stages` — the stage registry (parse through
  summarize), each with typed input/output artifacts and the legacy
  instrumentation phase it reports under;
* :mod:`repro.compiler.manager` — the pull-based
  :class:`~repro.compiler.manager.PassManager`, request-key
  derivation, hydration and stage-tagged failure attribution;
* :mod:`repro.compiler.store` — the per-stage content-addressed
  :class:`~repro.compiler.store.ArtifactStore`;
* :mod:`repro.compiler.artifacts` — canonical dumps and the
  fingerprint scheme that lets different requests converge on shared
  artifacts;
* :mod:`repro.compiler.result` — the ``CompiledLoop`` /
  ``CompiledLoopSummary`` result types (re-exported unchanged through
  :mod:`repro.pipeline`).

:func:`repro.pipeline.compile_loop` remains the public façade; this
package is the implementation plus the staged entry points
(:func:`~repro.compiler.manager.compile_staged`) that sweep and the
service use for per-stage caching.
"""

from .artifacts import content_fingerprint, graph_dump, loop_dump, net_dump
from .manager import (
    Artifact,
    PassManager,
    compile_live,
    compile_staged,
    failing_stage,
    make_request,
    mark_stage,
    request_key,
)
from .result import (
    PAYLOAD_SCHEMA_VERSION,
    CompiledLoop,
    CompiledLoopSummary,
    FrustumSummary,
    fraction_from,
    schedule_from_payload,
    schedule_payload,
)
from .stages import (
    CORE_STAGE_ORDER,
    SCP_STAGE_ORDER,
    STAGES,
    CompileRequest,
    Stage,
    StageContext,
    StageOutput,
)
from .store import (
    STAGE_CACHE_OUTCOMES,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    stage_store_dir,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "CompileRequest",
    "CompiledLoop",
    "CompiledLoopSummary",
    "CORE_STAGE_ORDER",
    "FrustumSummary",
    "PAYLOAD_SCHEMA_VERSION",
    "PassManager",
    "SCP_STAGE_ORDER",
    "STAGE_CACHE_OUTCOMES",
    "STAGES",
    "STORE_SCHEMA_VERSION",
    "Stage",
    "StageContext",
    "StageOutput",
    "compile_live",
    "compile_staged",
    "content_fingerprint",
    "failing_stage",
    "fraction_from",
    "graph_dump",
    "loop_dump",
    "make_request",
    "mark_stage",
    "net_dump",
    "request_key",
    "schedule_from_payload",
    "schedule_payload",
    "stage_store_dir",
]
