"""The Aiken–Nicolau "optimal loop parallelization" baseline [1, 2].

This is the comparison point of the paper's Section 4: Aiken and
Nicolau schedule the loop greedily — every operation of every
(virtually unrolled) iteration as early as its data dependences allow,
on a machine with unbounded parallelism — and observe that the
schedule eventually becomes periodic: ``start(v, i + K) = start(v, i)
+ P`` for all operations.  Their bound for finding the pattern is
``O(n²)`` iterations; the paper's contribution is a justified
``O(n³)``/``O(n²)`` bound for its Petri-net analogue.

Greedy start times satisfy the longest-path recurrence::

    start(v, i) = max(0, max over edges (u → v, d):
                          start(u, i − d) + latency(u))

Note what this model *lacks* compared with the SDSP-PN: the
acknowledgement (one-token-per-arc storage) discipline.  For a DOALL
loop every iteration starts at time 0 — the pattern has period 0 and
unbounded rate — whereas the SDSP-PN throttles to rate 1/2 with finite
storage.  The benchmark harness reports both numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from ..obs.metrics import timed
from .depgraph import DependenceGraph

__all__ = ["AikenNicolauPattern", "aiken_nicolau_schedule"]


@dataclass
class AikenNicolauPattern:
    """The detected periodic pattern.

    Each node's start times eventually grow linearly:
    ``start(v, i + K) = start(v, i) + slope(v)`` for ``i >=
    first_iteration``.  Nodes unconstrained by any recurrence (array
    reads on an unbounded machine) have slope 0 — all their iterations
    issue simultaneously; nodes downstream of a recurrence advance at
    that recurrence's pace.  ``period`` is the largest slope — the pace
    of the slowest chain, which governs loop completion — and ``rate``
    is None when it is 0 (a DOALL loop: unbounded concurrency).
    """

    first_iteration: int
    iterations_per_period: int
    period: int
    slopes: Dict[str, int]
    start_times: Dict[str, List[int]]
    iterations_computed: int

    @property
    def rate(self) -> Optional[Fraction]:
        if self.period == 0:
            return None
        return Fraction(self.iterations_per_period, self.period)

    def start_of(self, node: str, iteration: int) -> int:
        """Start time of any iteration, extending the pattern."""
        series = self.start_times[node]
        if iteration < len(series):
            return series[iteration]
        k = self.iterations_per_period
        base = self.first_iteration
        m = (iteration - base) // k
        j = base + (iteration - base) % k
        return series[j] + m * self.slopes[node]


@timed("baselines.aiken_nicolau_schedule")
def aiken_nicolau_schedule(
    graph: DependenceGraph,
    max_iterations: Optional[int] = None,
) -> AikenNicolauPattern:
    """Greedily schedule unrolled iterations and detect the pattern.

    Pattern detection scans candidate periods ``K = 1 .. total tokens``
    and accepts the first window where two consecutive ``K``-iteration
    windows shift uniformly by the same amount for every node —
    guaranteed to appear within O(n³) iterations by the paper's
    Theorem 4.1.1 (our budget is far smaller in practice; the Livermore
    loops stabilise within a few iterations).
    """
    nodes = graph.nodes
    if not nodes:
        raise AnalysisError("empty dependence graph")
    if max_iterations is None:
        max_iterations = max(64, 4 * graph.size**2)
    max_distance = max((e.distance for e in graph.edges), default=0)
    max_period_iterations = max(
        1, sum(e.distance for e in graph.edges)
    )

    start: Dict[str, List[int]] = {v: [] for v in nodes}
    # Evaluation in dependence order per iteration: zero-distance edges
    # form a DAG (validated upstream), so iterate in its topological
    # order.
    import networkx as nx

    zero_graph = nx.DiGraph()
    zero_graph.add_nodes_from(nodes)
    zero_graph.add_edges_from(
        (e.source, e.target) for e in graph.edges if e.distance == 0
    )
    try:
        order = list(nx.lexicographical_topological_sort(zero_graph))
    except nx.NetworkXUnfeasible:
        raise AnalysisError(
            "zero-distance dependence cycle; not a valid loop body"
        ) from None

    for iteration in range(max_iterations):
        for node in order:
            earliest = 0
            for edge in graph.predecessors(node):
                source_iteration = iteration - edge.distance
                if source_iteration < 0:
                    continue
                earliest = max(
                    earliest,
                    start[edge.source][source_iteration]
                    + graph.latencies[edge.source],
                )
            start[node].append(earliest)

        detected = _detect_pattern(
            start, iteration + 1, max_period_iterations
        )
        if detected is not None:
            first, k, slopes = detected
            return AikenNicolauPattern(
                first_iteration=first,
                iterations_per_period=k,
                period=max(slopes.values()),
                slopes=slopes,
                start_times=start,
                iterations_computed=iteration + 1,
            )
    raise AnalysisError(
        f"no periodic pattern within {max_iterations} iterations"
    )


def _detect_pattern(
    start: Dict[str, List[int]],
    iterations: int,
    max_k: int,
) -> Optional[Tuple[int, int, Dict[str, int]]]:
    """Look for ``start(v, i + k) − start(v, i)`` constant over a full
    window of ``k`` iterations, per node (different nodes may advance
    at different paces; see the dataclass docstring)."""
    for k in range(1, max_k + 1):
        # Two full windows of deltas must agree, so a node still in its
        # transient (whose first delta happens to look periodic) cannot
        # be accepted on a single sample.
        if iterations < 3 * k + 1:
            continue
        first = iterations - 3 * k - 1
        slopes: Dict[str, int] = {}
        consistent = True
        for node, series in start.items():
            node_slope: Optional[int] = None
            for i in range(first, first + 2 * k):
                delta = series[i + k] - series[i]
                if node_slope is None:
                    node_slope = delta
                elif delta != node_slope:
                    consistent = False
                    break
            if not consistent:
                break
            slopes[node] = node_slope if node_slope is not None else 0
        if consistent and slopes:
            return first, k, slopes
    return None
