"""Baseline schedulers the paper is compared against: Aiken–Nicolau
greedy pattern scheduling, classic list scheduling, and iterative
modulo scheduling, all over a shared dependence-graph abstraction."""

from .depgraph import DepEdge, DependenceGraph
from .aiken_nicolau import AikenNicolauPattern, aiken_nicolau_schedule
from .list_schedule import ListSchedule, list_schedule
from .modulo import ModuloSchedule, modulo_schedule

__all__ = [
    "DepEdge",
    "DependenceGraph",
    "AikenNicolauPattern",
    "aiken_nicolau_schedule",
    "ListSchedule",
    "list_schedule",
    "ModuloSchedule",
    "modulo_schedule",
]
