"""Dependence-graph abstraction shared by the baseline schedulers.

The baselines (Aiken–Nicolau, list scheduling, modulo scheduling) work
on classic dependence graphs: nodes with latencies and flow edges with
iteration distances.  This is deliberately *not* the SDSP-PN — the
acknowledgement arcs are the paper's storage discipline, not program
dependences — so comparisons isolate what the Petri-net model adds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.sdsp_pn import SdspPetriNet
from ..errors import AnalysisError

__all__ = ["DepEdge", "DependenceGraph"]


@dataclass(frozen=True)
class DepEdge:
    """A flow dependence: ``target``'s iteration ``i`` needs
    ``source``'s iteration ``i − distance``."""

    source: str
    target: str
    distance: int


class DependenceGraph:
    """Nodes with latencies plus distance-annotated flow edges."""

    def __init__(
        self,
        latencies: Mapping[str, int],
        edges: Sequence[DepEdge],
    ) -> None:
        self.latencies: Dict[str, int] = dict(latencies)
        for edge in edges:
            if edge.source not in self.latencies:
                raise AnalysisError(f"edge source {edge.source!r} unknown")
            if edge.target not in self.latencies:
                raise AnalysisError(f"edge target {edge.target!r} unknown")
            if edge.distance < 0:
                raise AnalysisError("dependence distance cannot be negative")
        self.edges: List[DepEdge] = list(edges)

    @classmethod
    def from_sdsp_pn(
        cls,
        pn: SdspPetriNet,
        latency: Optional[int] = None,
    ) -> "DependenceGraph":
        """Extract the dependence graph underlying an SDSP-PN: its data
        arcs (distances = initial tokens), restricted to the net's
        instruction transitions.  ``latency`` overrides the per-node
        latency uniformly (e.g. the SCP's ``l``)."""
        kept = set(pn.net.transition_names)
        latencies = {
            name: (latency if latency is not None else pn.durations[name])
            for name in pn.net.transition_names
        }
        edges = [
            DepEdge(arc.source, arc.target, arc.initial_tokens)
            for arc in pn.sdsp.all_data_arcs
            if arc.source in kept and arc.target in kept
        ]
        return cls(latencies, edges)

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self.latencies)

    @property
    def size(self) -> int:
        return len(self.latencies)

    def predecessors(self, node: str) -> List[DepEdge]:
        return [e for e in self.edges if e.target == node]

    def successors(self, node: str) -> List[DepEdge]:
        return [e for e in self.edges if e.source == node]

    # ------------------------------------------------------------------
    # Classical analyses
    # ------------------------------------------------------------------
    def recurrence_mii(self) -> Fraction:
        """RecMII: the maximum over dependence cycles of (total latency)
        / (total distance) — identical in spirit to the SDSP-PN's
        critical cycles, but over *data* arcs only.  Zero when the
        graph is acyclic (DOALL)."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self.nodes)
        for edge in self.edges:
            graph.add_edge(edge.source, edge.target, distance=edge.distance)
        best = Fraction(0)
        simple = nx.DiGraph(graph)
        for cycle in nx.simple_cycles(simple):
            size = len(cycle)
            # Enumerate parallel-edge choices along the node cycle.
            hop_options: List[List[int]] = []
            for i in range(size):
                u, v = cycle[i], cycle[(i + 1) % size]
                hop_options.append(
                    [data["distance"] for data in graph[u][v].values()]
                )
            latency_total = sum(self.latencies[node] for node in cycle)
            combos: List[List[int]] = [[]]
            for options in hop_options:
                combos = [c + [o] for c in combos for o in options]
            for combo in combos:
                distance_total = sum(combo)
                if distance_total == 0:
                    raise AnalysisError(
                        "zero-distance dependence cycle through "
                        + " -> ".join(cycle)
                    )
                best = max(best, Fraction(latency_total, distance_total))
        return best

    def resource_mii(self, units: int) -> int:
        """ResMII for ``units`` identical fully-pipelined units issuing
        one operation per cycle."""
        if units < 1:
            raise AnalysisError("need at least one functional unit")
        return -(-self.size // units)  # ceil division

    def critical_path(self) -> int:
        """Longest zero-distance (intra-iteration) latency path."""
        order = list(
            nx.topological_sort(
                nx.DiGraph(
                    (e.source, e.target)
                    for e in self.edges
                    if e.distance == 0
                )
            )
        )
        finish: Dict[str, int] = {}
        for node in self.nodes:
            finish[node] = self.latencies[node]
        for node in order:
            for edge in self.successors(node):
                if edge.distance:
                    continue
                finish[edge.target] = max(
                    finish[edge.target],
                    finish[node] + self.latencies[edge.target],
                )
        return max(finish.values(), default=0)
