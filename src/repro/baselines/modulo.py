"""Iterative modulo scheduling (Rau-style) baseline.

Modulo scheduling is the technique that historically superseded both
the Aiken–Nicolau pattern approach and the Petri-net formulation: pick
a candidate initiation interval ``II >= max(ResMII, RecMII)``, place
operations one by one respecting dependences, sharing resources via a
reservation table indexed modulo II, and retry with ``II + 1`` on
failure.  The benchmark harness compares the II it reaches against the
steady-state period of the SDSP-SCP-PN frustum — the paper's claim is
that the Petri-net route reaches a comparable (time-optimal) rate from
a very different formalism.

The implementation is the standard height-priority heuristic with
bounded eviction-free backtracking (restart at a larger II instead of
unscheduling), which is sufficient for single-issue clean pipelines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..errors import AnalysisError
from ..obs.metrics import timed
from .depgraph import DependenceGraph

__all__ = ["ModuloSchedule", "modulo_schedule"]


@dataclass
class ModuloSchedule:
    """A flat modulo schedule: ``start_times[v]`` is the issue cycle of
    iteration 0's instance; iteration ``i`` issues at ``start + i·II``."""

    initiation_interval: int
    start_times: Dict[str, int]
    mii: int
    rec_mii: Fraction
    res_mii: int

    @property
    def rate(self) -> Fraction:
        return Fraction(1, self.initiation_interval)

    def start_of(self, node: str, iteration: int) -> int:
        return self.start_times[node] + iteration * self.initiation_interval

    @property
    def achieves_mii(self) -> bool:
        return self.initiation_interval == self.mii


@timed("baselines.modulo_schedule")
def modulo_schedule(
    graph: DependenceGraph,
    units: int = 1,
    latency: Optional[int] = None,
    max_ii: Optional[int] = None,
) -> ModuloSchedule:
    """Find a modulo schedule on ``units`` fully-pipelined units.

    ``latency`` overrides node latencies uniformly (the SCP's ``l``).
    Raises :class:`AnalysisError` if no II up to ``max_ii`` works
    (default budget: ``MII + total latency`` — generous for these
    graphs).
    """

    def lat(node: str) -> int:
        return latency if latency is not None else graph.latencies[node]

    adjusted = DependenceGraph(
        {n: lat(n) for n in graph.nodes}, graph.edges
    )
    rec_mii_fraction = adjusted.recurrence_mii()
    rec_mii = math.ceil(rec_mii_fraction) if rec_mii_fraction else 0
    res_mii = adjusted.resource_mii(units)
    mii = max(1, rec_mii, res_mii)
    if max_ii is None:
        max_ii = mii + sum(lat(n) for n in graph.nodes) + len(graph.nodes)

    priority = _height_priority(adjusted)
    order = sorted(graph.nodes, key=lambda n: (-priority[n], n))

    for ii in range(mii, max_ii + 1):
        placement = _try_place(adjusted, order, ii, units)
        if placement is not None:
            return ModuloSchedule(
                initiation_interval=ii,
                start_times=placement,
                mii=mii,
                rec_mii=rec_mii_fraction,
                res_mii=res_mii,
            )
    raise AnalysisError(f"no modulo schedule found with II <= {max_ii}")


def _height_priority(graph: DependenceGraph) -> Dict[str, int]:
    """Longest zero-distance latency path from each node to a sink."""
    dag = nx.DiGraph()
    dag.add_nodes_from(graph.nodes)
    dag.add_edges_from(
        (e.source, e.target) for e in graph.edges if e.distance == 0
    )
    height: Dict[str, int] = {}
    for node in reversed(list(nx.topological_sort(dag))):
        below = [height[s] for s in dag.successors(node)]
        height[node] = graph.latencies[node] + (max(below) if below else 0)
    return height


def _try_place(
    graph: DependenceGraph,
    order: List[str],
    ii: int,
    units: int,
) -> Optional[Dict[str, int]]:
    """Place operations in priority order; per operation, scan start
    cycles from its dependence-earliest slot over one full II window of
    modulo-resource candidates.  Validates *all* dependence constraints
    (including back edges) at the end."""
    start: Dict[str, int] = {}
    usage: Dict[int, int] = {}

    for node in order:
        earliest = 0
        for edge in graph.predecessors(node):
            if edge.source in start:
                earliest = max(
                    earliest,
                    start[edge.source]
                    + graph.latencies[edge.source]
                    - edge.distance * ii,
                )
        placed = False
        for candidate in range(earliest, earliest + ii):
            slot = candidate % ii
            if usage.get(slot, 0) < units:
                start[node] = candidate
                usage[slot] = usage.get(slot, 0) + 1
                placed = True
                break
        if not placed:
            return None

    # Full validation, back edges included.
    for edge in graph.edges:
        lhs = start[edge.target] + edge.distance * ii
        rhs = start[edge.source] + graph.latencies[edge.source]
        if lhs < rhs:
            return None
    return start
