"""Classic (non-pipelined) list scheduling baseline.

Schedules *one* iteration of the loop body on ``units`` identical
fully-pipelined functional units with a given operation latency, using
critical-path priority, then runs iterations back to back: iteration
``i + 1`` may not start an operation before every operation of
iteration ``i`` that it depends on (and, without software pipelining,
before the iteration barrier).  Its initiation interval is therefore
the one-iteration makespan — the number software pipelining exists to
beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..errors import AnalysisError
from ..obs.metrics import timed
from .depgraph import DependenceGraph

__all__ = ["ListSchedule", "list_schedule"]


@dataclass
class ListSchedule:
    """One-iteration schedule.  ``start_times`` are issue cycles within
    the iteration; ``makespan`` (last completion) is the II of the
    back-to-back loop execution."""

    start_times: Dict[str, int]
    makespan: int
    units: int

    @property
    def initiation_interval(self) -> int:
        return self.makespan

    @property
    def rate(self) -> Fraction:
        return Fraction(1, self.makespan)


@timed("baselines.list_schedule")
def list_schedule(
    graph: DependenceGraph,
    units: int = 1,
    latency: Optional[int] = None,
) -> ListSchedule:
    """Critical-path list scheduling of the intra-iteration DAG.

    ``latency`` overrides every node's latency (e.g. the SCP pipeline
    depth ``l``); loop-carried edges are ignored within the iteration —
    they are satisfied trivially because iterations do not overlap.
    """
    if units < 1:
        raise AnalysisError("need at least one functional unit")

    def lat(node: str) -> int:
        return latency if latency is not None else graph.latencies[node]

    nodes = list(graph.nodes)
    zero_edges = [(e.source, e.target) for e in graph.edges if e.distance == 0]
    dag = nx.DiGraph()
    dag.add_nodes_from(nodes)
    dag.add_edges_from(zero_edges)

    # Priority: longest latency path to any sink (critical path).
    priority: Dict[str, int] = {}
    for node in reversed(list(nx.topological_sort(dag))):
        below = [priority[s] for s in dag.successors(node)]
        priority[node] = lat(node) + (max(below) if below else 0)

    indegree = {node: dag.in_degree(node) for node in nodes}
    ready: List[str] = [n for n in nodes if indegree[n] == 0]
    earliest: Dict[str, int] = {n: 0 for n in nodes}
    start_times: Dict[str, int] = {}
    time = 0
    scheduled = 0
    while scheduled < len(nodes):
        issued = 0
        # Highest priority first; deterministic tie-break by name.
        for node in sorted(
            [n for n in ready if earliest[n] <= time],
            key=lambda n: (-priority[n], n),
        ):
            if issued == units:
                break
            start_times[node] = time
            ready.remove(node)
            issued += 1
            scheduled += 1
            for successor in dag.successors(node):
                indegree[successor] -= 1
                earliest[successor] = max(
                    earliest[successor], time + lat(node)
                )
                if indegree[successor] == 0:
                    ready.append(successor)
        time += 1
        if time > sum(lat(n) for n in nodes) + len(nodes) + 1:
            raise AnalysisError("list scheduling failed to converge")

    makespan = max(start_times[n] + lat(n) for n in nodes)
    return ListSchedule(start_times=start_times, makespan=makespan, units=units)
