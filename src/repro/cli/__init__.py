"""Command-line interface: ``python -m repro <command> <loop-file>``.

Commands
--------

``schedule``  compile a loop file and print the derived time-optimal
              schedule (optionally for an ``--stages N`` clean
              pipeline);
``analyze``   print the loop's dependence classification, critical
              cycles, rates and detection statistics;
``storage``   print the Section 6 storage optimisation and the
              buffer-balancing result;
``dot``       emit Graphviz DOT for the dataflow graph or the SDSP-PN;
``trace``     record the behavior-graph simulation as a structured
              trace (Chrome/Perfetto or JSONL);
``explain``   causal blame: rebuild the enabling DAG of a run, report
              the observed critical path (checked against the
              structural critical cycles), the per-transition
              wait-state decomposition and the blame chain
              (``--json`` for machine output, ``--trace`` for a
              Chrome trace with flow arrows);
``dash``      write the self-contained HTML bottleneck-attribution
              dashboard (kernel timeline, slack/utilization, token
              occupancy, ledger trends);
``sweep``     batch-compile a JSON manifest of loops through the
              content-addressed compile cache, optionally over a
              process pool (``--workers N``), and merge the
              deterministic payloads in manifest order; ``--trace``
              writes a merged cross-process span trace (one lane per
              worker), ``--metrics-out`` an OpenMetrics exposition,
              and a live progress line renders on TTYs
              (``--no-progress`` to suppress);
``compile``   compile one loop and print its deterministic JSON
              payload (optionally through the compile cache) — the
              exact bytes ``repro serve`` answers ``POST /v1/compile``
              with for the same input;
``serve``     run the async HTTP compilation service (bounded
              admission, process-pool workers, OpenMetrics, graceful
              drain; see ``docs/SERVICE.md`` and ``docs/API.md``);
``metrics``   render a ledger record's timing data as OpenMetrics
              text exposition;
``bench-check``  compare ``benchmarks/results/*.json`` against the
              committed baseline and exit non-zero on regressions.

Every command accepts ``--profile``, which prints a per-phase
wall-clock table after the normal output; loop commands also accept
``--ledger [DIR]`` to append a normalized run record to the append-only
JSONL ledger (default ``benchmarks/ledger/runs.jsonl``).  Logging is
wired through :func:`repro.obs.logging_setup`; set ``REPRO_LOG=debug``
for verbose diagnostics.

Loop files use the frontend syntax of :mod:`repro.loops.parser`;
loop-invariant scalars are bound with repeated ``--scalar NAME=VALUE``
options.  Exit status is non-zero on any compilation or verification
failure.

The implementation is split by subcommand family —
:mod:`repro.cli.compile` (schedule/analyze/storage/dot/compile),
:mod:`repro.cli.sweep`, :mod:`repro.cli.serve` and
:mod:`repro.cli.obs` (trace/explain/dash/metrics/bench-check) — over
the shared argument plumbing in :mod:`repro.cli._args`.  The public
surface is exactly :func:`main` and :func:`build_parser`.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional, Sequence

from ..errors import ReproError
from . import compile as _compile_family
from . import obs as _obs_family
from . import serve as _serve_family
from . import sweep as _sweep_family

__all__ = ["main", "build_parser"]

log = logging.getLogger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Timed Petri-net fine-grain loop scheduling "
            "(Gao, Wong & Ning, PLDI 1991)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    # registration order is the `repro --help` listing order; keep it
    # stable across the family modules
    _compile_family.add_schedule_parser(subparsers)
    _compile_family.add_analyze_parser(subparsers)
    _compile_family.add_storage_parser(subparsers)
    _compile_family.add_dot_parser(subparsers)
    _obs_family.add_trace_parser(subparsers)
    _obs_family.add_explain_parser(subparsers)
    _obs_family.add_dash_parser(subparsers)
    _sweep_family.add_sweep_parser(subparsers)
    _compile_family.add_compile_parser(subparsers)
    _serve_family.add_serve_parser(subparsers)
    _obs_family.add_metrics_parser(subparsers)
    _obs_family.add_bench_check_parser(subparsers)
    return parser


_COMMANDS = {
    "schedule": _compile_family.cmd_schedule,
    "analyze": _compile_family.cmd_analyze,
    "storage": _compile_family.cmd_storage,
    "dot": _compile_family.cmd_dot,
    "trace": _obs_family.cmd_trace,
    "explain": _obs_family.cmd_explain,
    "dash": _obs_family.cmd_dash,
    "sweep": _sweep_family.cmd_sweep,
    "compile": _compile_family.cmd_compile,
    "serve": _serve_family.cmd_serve,
    "metrics": _obs_family.cmd_metrics,
    "bench-check": _obs_family.cmd_bench_check,
}


def _print_profile(out) -> None:
    """Render the per-phase wall-clock table from the process-wide
    metrics registry (populated by ``--profile``)."""
    from ..obs import default_registry
    from ..report import render_table

    timers = default_registry().dump()["timers"]
    if not timers:
        print(
            "\n--profile: no phases were recorded by this command "
            "(nothing was compiled or simulated)",
            file=out,
        )
        return
    rows = [
        [name, stats["count"], f"{stats['total']:.6f}", f"{stats['mean']:.6f}"]
        for name, stats in sorted(
            timers.items(), key=lambda item: -item[1]["total"]
        )
    ]
    print(file=out)
    print(
        render_table(
            ["phase", "calls", "total s", "mean s"],
            rows,
            title="Wall-clock profile",
        ),
        file=out,
    )


def _append_ledger_record(args: argparse.Namespace, argv, out) -> None:
    """Append the normalized run record requested with ``--ledger``."""
    import pathlib

    from ..obs import default_registry
    from ..obs.ledger import (
        RUNS_FILE,
        append_record,
        default_ledger_dir,
        make_run_record,
    )

    payload = getattr(args, "ledger_payload", None)
    if payload is None:
        return
    directory = (
        default_ledger_dir()
        if args.ledger == "auto"
        else pathlib.Path(args.ledger)
    )
    snapshot = default_registry().dump()
    record = make_run_record(
        kind="cli",
        name=f"{args.command}:{payload['loop']}",
        payload=payload,
        command=list(argv) if argv is not None else sys.argv[1:],
        phase_wall_clock=snapshot["timers"],
        metrics=snapshot["counters"],
        blame=getattr(args, "ledger_blame", None),
    )
    path = append_record(directory / RUNS_FILE, record)
    print(f"appended run record to {path}", file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit status."""
    from ..obs import default_registry, logging_setup

    logging_setup()
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = getattr(args, "profile", False)
    # --ledger wants phase timings in its record and --metrics-out
    # wants counters/timers in its exposition, so both enable the
    # registry exactly like --profile (without printing the table)
    collecting = (
        profiling
        or getattr(args, "ledger", None) is not None
        or getattr(args, "metrics_out", None) is not None
    )
    if collecting:
        registry = default_registry()
        registry.reset()
        registry.enable()
    try:
        status = _COMMANDS[args.command](args, out)
        if status == 0 and getattr(args, "ledger", None) is not None:
            _append_ledger_record(args, argv, out)
        if profiling:
            _print_profile(out)
        return status
    except BrokenPipeError:
        # downstream consumer (e.g. `head`) closed the pipe; not an error
        try:
            sys.stdout.close()
        except Exception as error:
            log.debug("suppressed error while closing stdout: %s", error)
        return 0
    except FileNotFoundError as error:
        # raised for a missing input loop file or an unwritable/missing
        # output directory alike — the errno message names the path
        log.warning("file not found: %s", error)
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        from ..compiler import failing_stage

        log.warning("%s failed: %s", args.command, error)
        print(f"error: {error}", file=sys.stderr)
        stage = failing_stage(error)
        if stage is not None:
            print(f"failing stage: {stage}", file=sys.stderr)
        return 1
    finally:
        if collecting:
            default_registry().disable()
