"""The compile/schedule command family: ``schedule``, ``analyze``,
``storage``, ``dot`` and ``compile`` — everything that turns one loop
file into printed analysis or a deterministic payload."""

from __future__ import annotations

import argparse

from ..errors import ReproError
from ._args import (
    add_common,
    add_unroll,
    compile_from_args,
    parse_scalars,
    resolve_cli_cache_dir,
)


def add_schedule_parser(subparsers) -> None:
    schedule = subparsers.add_parser(
        "schedule", help="derive and print the time-optimal schedule"
    )
    add_common(schedule)
    schedule.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="also schedule for an N-stage single clean pipeline",
    )
    add_unroll(schedule)


def add_analyze_parser(subparsers) -> None:
    analyze = subparsers.add_parser(
        "analyze", help="dependences, critical cycles, rates, detection"
    )
    add_common(analyze)


def add_storage_parser(subparsers) -> None:
    storage = subparsers.add_parser(
        "storage", help="storage optimisation and buffer balancing"
    )
    add_common(storage)


def add_dot_parser(subparsers) -> None:
    dot = subparsers.add_parser("dot", help="emit Graphviz DOT")
    add_common(dot)
    dot.add_argument(
        "--what",
        choices=["dataflow", "net"],
        default="dataflow",
        help="which graph to emit",
    )


def add_compile_parser(subparsers) -> None:
    compile_cmd = subparsers.add_parser(
        "compile",
        help="print the deterministic compiled-loop payload as JSON",
    )
    add_common(compile_cmd)
    compile_cmd.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="compile for an N-stage single clean pipeline",
    )
    add_unroll(compile_cmd)
    compile_cmd.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "compile-cache directory (default: the REPRO_CACHE "
            "environment toggle; unset/falsy means no cache)"
        ),
    )
    compile_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="compile from scratch, ignoring REPRO_CACHE",
    )
    compile_cmd.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the payload to FILE instead of stdout",
    )


def cmd_schedule(args: argparse.Namespace, out) -> int:
    from ..report import render_schedule

    result = compile_from_args(args, stages=args.stages)
    print(render_schedule(result.schedule), file=out)
    print(
        f"\noptimal rate {result.optimal_rate}; frustum found at step "
        f"{result.frustum.repeat_time} (n = {result.pn.size})",
        file=out,
    )
    if result.unroll > 1:
        print(
            f"unrolled x{result.unroll}: per-instruction rate "
            f"{result.achieved_rate} (dependence bound "
            f"{result.dependence_bound})",
            file=out,
        )
    if result.scp_schedule is not None:
        print(
            f"\n--- {args.stages}-stage clean pipeline ---", file=out
        )
        print(render_schedule(result.scp_schedule), file=out)
        print(f"pipeline utilisation {result.scp_utilization}", file=out)
    return 0


def cmd_analyze(args: argparse.Namespace, out) -> int:
    from ..core import critical_cycles

    result = compile_from_args(args)
    info = result.translation.info
    print(f"loop {result.translation.loop.name!r}:", file=out)
    print(
        f"  classification : "
        f"{'DOALL (no loop-carried dependence)' if info.is_doall else 'loop-carried'}",
        file=out,
    )
    for dependence in info.dependences:
        kind = "carried" if dependence.loop_carried else "intra"
        print(
            f"    {dependence.producer} -> {dependence.consumer} "
            f"({kind}, distance {dependence.distance})",
            file=out,
        )
    report = critical_cycles(result.pn)
    print(
        f"  cycle time     : {report.cycle_time} "
        f"(rate {report.computation_rate})",
        file=out,
    )
    for cycle in report.critical_cycles:
        print("    critical: " + " -> ".join(cycle.transitions), file=out)
    bounds = result.bounds
    print(
        f"  frustum        : found at step {result.frustum.repeat_time}, "
        f"period {result.frustum.length} "
        f"(theory bound O(n^{4 if bounds.case == 'single' else 3}) = "
        f"{bounds.step_bound})",
        file=out,
    )
    return 0


def cmd_storage(args: argparse.Namespace, out) -> int:
    from ..core import balance_buffers, optimize_storage, verify_allocation

    result = compile_from_args(args)
    allocation = optimize_storage(result.pn)
    print(
        f"storage locations: {allocation.baseline_locations} -> "
        f"{allocation.locations} (saved {allocation.savings})",
        file=out,
    )
    for chain in allocation.chains:
        if chain.length > 1:
            path = " -> ".join([chain.head] + [a.target for a in chain.arcs])
            print(f"  merged acknowledgement: {path}", file=out)
    rate = verify_allocation(result.pn, allocation)
    print(f"cycle time preserved at {rate}", file=out)

    balance = balance_buffers(result.pn)
    print(
        f"\nbuffer balancing for period {balance.target_period}: "
        f"{balance.total} total slots over {len(balance.capacities)} arcs",
        file=out,
    )
    for identifier, capacity in sorted(balance.capacities.items()):
        if capacity > 1:
            print(f"  {identifier}: {capacity} slots", file=out)
    return 0


def cmd_dot(args: argparse.Namespace, out) -> int:
    from ..report.dot import dataflow_to_dot, petri_net_to_dot

    result = compile_from_args(args)
    if args.what == "dataflow":
        print(dataflow_to_dot(result.translation.graph), file=out)
    else:
        print(
            petri_net_to_dot(
                result.pn.net, result.pn.initial, result.pn.durations
            ),
            file=out,
        )
    return 0


def cmd_compile(args: argparse.Namespace, out) -> int:
    """Compile one loop and print the deterministic payload — the
    exact bytes ``POST /v1/compile`` serves for the same input (the
    golden test diffs the two)."""
    import pathlib

    from ..batch import SweepItem, compile_one
    from ..obs import stable_json

    cache_dir = resolve_cli_cache_dir(args)
    with open(args.loop_file) as handle:
        source = handle.read()
    item = SweepItem(
        name=pathlib.Path(args.loop_file).stem,
        source=source,
        scalars=parse_scalars(args.scalar) or None,
        pipeline_stages=args.stages,
        include_io=not args.abstract,
        engine=args.engine,
        unroll=args.unroll,
    )
    result = compile_one(item, cache_dir=cache_dir)
    if not result.ok:
        from ..compiler import mark_stage

        error = ReproError(
            f"{result.error['type']}: {result.error['message']}"
        )
        stage = result.error.get("stage")
        if stage:
            mark_stage(error, stage)
        raise error
    payload = result.payload
    text = stable_json(payload, indent=2) + "\n"
    if args.output is not None:
        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote compiled payload to {args.output}", file=out)
    else:
        out.write(text)
    if args.ledger is not None:
        args.ledger_payload = {
            "loop": payload["loop"],
            "cycle_time": payload["cycle_time"],
            "rate": payload["rate"],
            "unroll": payload.get("unroll", 1),
            "achieved_rate": payload.get("achieved_rate"),
            "dependence_bound": payload.get("dependence_bound"),
            "initiation_interval": payload["initiation_interval"],
            "frustum_length": payload["frustum"]["length"],
            "transient": payload["frustum"]["start_time"],
            "repeat_time": payload["frustum"]["repeat_time"],
            "n_transitions": payload["n_transitions"],
            "net_size": payload["net_size"],
            "engine": payload["engine"],
            "cache_hit": result.cache_hit,
        }
    return 0
