"""The ``serve`` command: run the async HTTP compilation service."""

from __future__ import annotations

import argparse

from ..errors import ReproError
from ._args import resolve_cli_cache_dir


def add_serve_parser(subparsers) -> None:
    serve = subparsers.add_parser(
        "serve",
        help="run the async HTTP compilation service",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="address to bind (default: loopback only)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        metavar="N",
        help=(
            "TCP port to listen on (0 lets the kernel pick; the "
            "'listening on' banner names the real port)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="compilation process-pool width",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="requests allowed to execute concurrently",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission-queue depth beyond the executing set; requests "
            "past it get 429 + Retry-After (default: --max-inflight)"
        ),
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "per-request deadline, queue wait included; expiry is a "
            "504 and the pool work is cancelled"
        ),
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "how long a SIGTERM/SIGINT drain waits for in-flight "
            "requests before closing anyway"
        ),
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "compile-cache directory (default: the REPRO_CACHE "
            "environment toggle; unset/falsy means no cache)"
        ),
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without a compile cache, ignoring REPRO_CACHE",
    )
    serve.add_argument(
        "--span-dir",
        default=None,
        metavar="DIR",
        help=(
            "write span shards (service + one per pool worker) to DIR "
            "for end-to-end request tracing"
        ),
    )


def cmd_serve(args: argparse.Namespace, out) -> int:
    """Run the HTTP compilation service until a signal drains it."""
    from ..service import ServiceConfig
    from ..service.http import serve

    cache_dir = resolve_cli_cache_dir(args)
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            request_timeout=args.request_timeout,
            drain_grace=args.drain_grace,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            span_dir=args.span_dir,
        )
    except ValueError as error:
        raise ReproError(str(error)) from error
    return serve(config)
