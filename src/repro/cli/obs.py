"""The observability command family: ``trace``, ``explain``, ``dash``,
``metrics`` and ``bench-check`` — tracing, causal blame, the HTML
dashboard, OpenMetrics rendering and the benchmark regression gate."""

from __future__ import annotations

import argparse
import logging

from ..errors import ReproError
from ._args import add_common, compile_from_args

log = logging.getLogger("repro.cli")


def add_trace_parser(subparsers) -> None:
    trace = subparsers.add_parser(
        "trace",
        help="record the behavior-graph simulation as a structured trace",
    )
    add_common(trace)
    trace.add_argument(
        "--format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help=(
            "chrome: trace-event JSON for chrome://tracing / "
            "ui.perfetto.dev (one track per transition, one slice per "
            "firing); jsonl: one structured event per line"
        ),
    )
    trace.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="output path (default: <loop-file>.trace.<json|jsonl>)",
    )
    trace.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="trace the SDSP-SCP-PN of an N-stage clean pipeline instead",
    )


def add_explain_parser(subparsers) -> None:
    explain = subparsers.add_parser(
        "explain",
        help="causal blame: observed critical path and wait states",
    )
    add_common(explain)
    explain.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="explain the SDSP-SCP-PN of an N-stage clean pipeline instead",
    )
    explain.add_argument(
        "--periods",
        type=int,
        default=3,
        metavar="K",
        help=(
            "steady-state periods to simulate past the detected frustum "
            "so blame walks stay clear of the transient (default 3)"
        ),
    )
    explain.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full report as JSON instead of text",
    )
    explain.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    explain.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "also write the enabling DAG as a Chrome trace with flow "
            "arrows (one lane per transition, one arrow per consumed "
            "token) to FILE"
        ),
    )
    explain.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the wait-state decomposition in OpenMetrics text "
            "exposition format to FILE ('-' for stdout)"
        ),
    )


def add_dash_parser(subparsers) -> None:
    dash = subparsers.add_parser(
        "dash",
        help="write the self-contained HTML bottleneck dashboard",
    )
    add_common(dash)
    dash.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="output path (default: <loop-file>.dash.html)",
    )
    dash.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help=(
            "JSONL ledger to read trend history from "
            "(default: benchmarks/ledger/runs.jsonl when present)"
        ),
    )


def add_metrics_parser(subparsers) -> None:
    metrics = subparsers.add_parser(
        "metrics",
        help="render a ledger record's timing data as OpenMetrics text",
    )
    metrics.add_argument(
        "--from-ledger",
        default=None,
        metavar="FILE",
        help=(
            "JSONL ledger to read from "
            "(default: benchmarks/ledger/runs.jsonl)"
        ),
    )
    metrics.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help=(
            "render the latest record with this name "
            "(default: the latest record in the ledger)"
        ),
    )
    metrics.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the exposition to FILE instead of stdout",
    )


def add_bench_check_parser(subparsers) -> None:
    bench_check = subparsers.add_parser(
        "bench-check",
        help="gate benchmarks/results/*.json against the baseline ledger",
    )
    bench_check.add_argument(
        "--results",
        default="benchmarks/results",
        metavar="DIR",
        help="directory of freshly generated bench records",
    )
    bench_check.add_argument(
        "--baseline",
        default="benchmarks/ledger/baseline.jsonl",
        metavar="FILE",
        help="committed baseline records (JSONL)",
    )
    bench_check.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        metavar="X",
        help="relative wall-clock tolerance (default 5.0x baseline)",
    )
    bench_check.add_argument(
        "--wall-floor",
        type=float,
        default=None,
        metavar="SECONDS",
        help="ignore phases whose baseline total is below this (default 0.05)",
    )
    bench_check.add_argument(
        "--wall-hard",
        action="store_true",
        help="treat wall-clock drifts as failures, not just reports",
    )
    bench_check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current results and exit",
    )
    bench_check.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-clock table after the output",
    )


def cmd_trace(args: argparse.Namespace, out) -> int:
    """Record one behavior-graph simulation as a structured trace.

    The loop is compiled normally (so the traced net is exactly what
    ``schedule`` would use); the frustum detection is then re-run with
    the requested sink attached, so the file holds a single clean
    timeline: every firing, every instantaneous state, and the detected
    cyclic frustum.
    """
    from ..machine import FifoRunPlacePolicy
    from ..obs import ChromeTraceSink, Instrumentation, JsonlTraceSink
    from ..petrinet import detect_frustum

    result = compile_from_args(args, stages=args.stages)
    if args.stages is not None and result.scp is not None:
        scp = result.scp
        timed_net, initial = scp.timed, scp.initial
        policy = FifoRunPlacePolicy(scp.net, scp.run_place, scp.priority_order())
        traced = f"SDSP-SCP-PN (l={args.stages})"
    else:
        timed_net, initial = result.pn.timed, result.pn.initial
        policy = None
        traced = "SDSP-PN"

    output = args.output
    if output is None:
        suffix = "json" if args.format == "chrome" else "jsonl"
        output = f"{args.loop_file}.trace.{suffix}"
    sink = (
        ChromeTraceSink(output)
        if args.format == "chrome"
        else JsonlTraceSink(output)
    )
    obs = Instrumentation(sinks=[sink])
    try:
        frustum, behavior = detect_frustum(
            timed_net,
            initial,
            policy,
            instrumentation=obs,
            engine=getattr(args, "engine", "event"),
        )
    finally:
        obs.close()

    print(
        f"traced {traced} of {result.translation.loop.name!r}: "
        f"{len(behavior.steps)} steps, frustum [{frustum.start_time}, "
        f"{frustum.repeat_time}) period {frustum.length}",
        file=out,
    )
    print(f"wrote {args.format} trace to {output}", file=out)
    if args.format == "chrome":
        print(
            "open in chrome://tracing or https://ui.perfetto.dev "
            "(1 trace us = 1 simulator cycle)",
            file=out,
        )
    return 0


def cmd_explain(args: argparse.Namespace, out) -> int:
    """Causal blame for one run: re-simulate with provenance tracing,
    rebuild the enabling DAG, and report the observed critical path,
    the wait-state decomposition and the blame chain."""
    import pathlib

    from ..core.blame import (
        blame_summary,
        explain_compiled,
        wait_metrics_dump,
        write_flow_trace,
    )

    if args.periods < 1:
        raise ReproError(f"--periods must be >= 1, got {args.periods}")
    result = compile_from_args(args, stages=args.stages)
    report = explain_compiled(result, periods=args.periods)

    if args.as_json:
        from ..obs import stable_json

        text = stable_json(report.to_payload(), indent=2) + "\n"
    else:
        text = report.render_text() + "\n"
    if args.output is not None:
        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote explain report to {args.output}", file=out)
    else:
        out.write(text)

    if args.trace is not None:
        write_flow_trace(report, args.trace)
        print(
            f"wrote flow trace to {args.trace} (open in chrome://tracing "
            "or https://ui.perfetto.dev; 1 trace us = 1 simulator cycle)",
            file=out,
        )
    if args.metrics_out is not None:
        from ..obs import render_openmetrics

        exposition = render_openmetrics(wait_metrics_dump(report))
        if args.metrics_out == "-":
            out.write(exposition)
        else:
            pathlib.Path(args.metrics_out).write_text(
                exposition, encoding="utf-8"
            )
            print(
                f"wrote OpenMetrics exposition to {args.metrics_out}",
                file=out,
            )
    if getattr(args, "ledger", None) is not None:
        args.ledger_blame = blame_summary(report)
    return 0


def cmd_dash(args: argparse.Namespace, out) -> int:
    """Compile the loop and write the bottleneck-attribution dashboard
    as one self-contained HTML file."""
    import pathlib

    from ..core.attribution import attribute_bottlenecks, place_occupancy
    from ..errors import LedgerError
    from ..obs.ledger import (
        RUNS_FILE,
        default_ledger_dir,
        git_sha,
        load_records,
    )
    from ..report.dash import render_dash

    result = compile_from_args(args)
    attribution = attribute_bottlenecks(result.pn, result.frustum)
    occupancy = place_occupancy(result.behavior, result.frustum)
    loop_name = result.translation.loop.name

    history_path = (
        pathlib.Path(args.history)
        if args.history
        else default_ledger_dir() / RUNS_FILE
    )
    # A missing, empty, or unreadable ledger must never block the
    # dashboard — trends degrade to the placeholder panel instead.
    history = []
    sweep_history = []
    if history_path.is_file():
        try:
            records = load_records(history_path)
            history = [
                record
                for record in records
                if record.get("payload", {}).get("loop") == loop_name
            ]
            sweep_history = [
                record for record in records if record.get("kind") == "sweep"
            ]
        except LedgerError as error:
            log.warning("ignoring unreadable ledger history: %s", error)
            print(
                f"warning: ignoring unreadable ledger history ({error})",
                file=out,
            )
            history = []
            sweep_history = []

    document = render_dash(
        loop_name=loop_name,
        attribution=attribution,
        schedule=result.schedule,
        durations=result.pn.durations,
        occupancy=occupancy,
        history=history,
        sweep_history=sweep_history,
        git_sha=git_sha(),
    )
    output = args.output or f"{args.loop_file}.dash.html"
    pathlib.Path(output).write_text(document, encoding="utf-8")

    bottlenecks = attribution.bottlenecks()
    print(
        f"dashboard for {loop_name!r}: cycle time "
        f"{attribution.cycle_time}, {len(bottlenecks)} bottleneck "
        f"transition(s) on C*: {', '.join(bottlenecks)}",
        file=out,
    )
    print(
        f"wrote self-contained HTML to {output} "
        f"({len(history)} ledger run(s) in trend history)",
        file=out,
    )
    return 0


def cmd_metrics(args: argparse.Namespace, out) -> int:
    """Render one ledger record's timing section as OpenMetrics text —
    the bridge from the append-only ledger to scrape-based tooling."""
    import pathlib

    from ..obs import dump_from_record, render_openmetrics
    from ..obs.ledger import RUNS_FILE, default_ledger_dir, load_records

    source = (
        pathlib.Path(args.from_ledger)
        if args.from_ledger is not None
        else default_ledger_dir() / RUNS_FILE
    )
    records = load_records(source)
    if args.name is not None:
        records = [r for r in records if r.get("name") == args.name]
    if not records:
        wanted = f" named {args.name!r}" if args.name is not None else ""
        raise ReproError(f"no ledger record{wanted} in {source}")
    exposition = render_openmetrics(dump_from_record(records[-1]))
    if args.output is not None:
        pathlib.Path(args.output).write_text(exposition, encoding="utf-8")
        print(f"wrote OpenMetrics exposition to {args.output}", file=out)
    else:
        out.write(exposition)
    return 0


def cmd_bench_check(args: argparse.Namespace, out) -> int:
    """The benchmark regression gate (CI's perf check)."""
    import pathlib

    from ..obs.regression import (
        DEFAULT_WALL_FLOOR,
        DEFAULT_WALL_TOLERANCE,
        load_results_records,
        run_gate,
    )
    from ..obs.schema import stable_json

    if args.update_baseline:
        records = load_results_records(args.results)
        baseline = pathlib.Path(args.baseline)
        baseline.parent.mkdir(parents=True, exist_ok=True)
        baseline.write_text(
            "".join(
                stable_json(records[name]) + "\n" for name in sorted(records)
            ),
            encoding="utf-8",
        )
        print(
            f"wrote {len(records)} baseline record(s) to {baseline}",
            file=out,
        )
        return 0

    report = run_gate(
        args.results,
        args.baseline,
        wall_tolerance=(
            args.wall_tolerance
            if args.wall_tolerance is not None
            else DEFAULT_WALL_TOLERANCE
        ),
        wall_floor=(
            args.wall_floor
            if args.wall_floor is not None
            else DEFAULT_WALL_FLOOR
        ),
    )
    print(report.render(), file=out)
    return 1 if report.failed(wall_hard=args.wall_hard) else 0
