"""The ``sweep`` command: batch-compile a manifest through the compile
cache (and, per item, the per-stage artifact store), merge the
deterministic payloads in manifest order, and report both cache
layers' hit/miss behaviour."""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from ._args import resolve_cli_cache_dir


def add_sweep_parser(subparsers) -> None:
    sweep = subparsers.add_parser(
        "sweep",
        help="batch-compile a manifest via the compile cache",
    )
    sweep.add_argument(
        "manifest",
        help="JSON sweep manifest (a list of items, or {'items': [...]})",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool width (1 = serial, in-process)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "compile-cache directory (default: the REPRO_CACHE "
            "environment toggle; unset/falsy means no cache)"
        ),
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="compile everything from scratch, ignoring REPRO_CACHE",
    )
    sweep.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the merged deterministic payload as indented JSON",
    )
    sweep.add_argument(
        "--require-hits",
        action="store_true",
        help=(
            "exit non-zero unless every item was served from the cache "
            "(CI's warm-cache invariant)"
        ),
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-clock table after the output",
    )
    sweep.add_argument(
        "--ledger",
        nargs="?",
        const="auto",
        default=None,
        metavar="DIR",
        help=(
            "append a 'sweep' run record (merged payload + cache "
            "hit/miss counters) to the JSONL run ledger"
        ),
    )
    sweep.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "span-trace the sweep and write the merged Chrome/Perfetto "
            "trace (one lane per worker) to FILE"
        ),
    )
    sweep.add_argument(
        "--no-progress",
        action="store_true",
        help=(
            "suppress the live progress line (it is auto-disabled when "
            "stderr is not a terminal)"
        ),
    )
    sweep.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the sweep's metrics registry in OpenMetrics text "
            "exposition format to FILE ('-' for stdout)"
        ),
    )


def _stage_cache_note(stage_stats) -> str:
    """One line summarising the per-stage artifact store over the whole
    sweep: counter totals plus how many stage resolutions each outcome
    covered (``computed`` / ``hit`` / ``hydrated``)."""
    by_stage = stage_stats.get("by_stage") or {}
    resolutions = {}
    for outcomes in by_stage.values():
        for outcome, count in outcomes.items():
            resolutions[outcome] = resolutions.get(outcome, 0) + count
    note = (
        f"stage cache: {stage_stats['hit']} hit(s), "
        f"{stage_stats['miss']} miss(es), {stage_stats['hydrate']} "
        f"hydration(s)"
    )
    if by_stage:
        parts = ", ".join(
            f"{count} {outcome}"
            for outcome, count in sorted(resolutions.items())
        )
        note += f" across {len(by_stage)} stage(s) ({parts})"
    return note


def cmd_sweep(args: argparse.Namespace, out) -> int:
    """Batch-compile a manifest; merge results in manifest order."""
    import pathlib
    import tempfile
    import time

    from ..batch import SweepProgress, compile_many, load_manifest
    from ..obs import stable_json
    from ..report import render_table

    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    cache_dir = resolve_cli_cache_dir(args)

    items = load_manifest(args.manifest)
    tracer = None
    shard_tmp = None
    if args.trace is not None:
        from ..obs import Tracer

        tracer = Tracer(worker="parent")
        if args.workers > 1:
            shard_tmp = tempfile.TemporaryDirectory(prefix="repro-spans-")
    progress = SweepProgress(
        total=len(items),
        enabled=False if args.no_progress else None,
        workers=args.workers,
    )
    started = time.perf_counter()
    try:
        if tracer is not None:
            with tracer.span(
                "sweep", manifest=str(args.manifest), workers=args.workers
            ):
                result = compile_many(
                    items,
                    workers=args.workers,
                    cache_dir=cache_dir,
                    progress=progress,
                    tracer=tracer,
                    shard_dir=shard_tmp.name if shard_tmp else None,
                )
        else:
            result = compile_many(
                items,
                workers=args.workers,
                cache_dir=cache_dir,
                progress=progress,
            )
        wall = time.perf_counter() - started

        if tracer is not None:
            from ..obs import merge_traces, write_trace

            document = merge_traces(
                result.span_shards, parent=tracer, parent_label="parent"
            )
            write_trace(document, args.trace)
    finally:
        if shard_tmp is not None:
            shard_tmp.cleanup()

    rows = []
    for item in result.items:
        if item.ok:
            payload = item.payload
            rows.append(
                [
                    item.name,
                    "hit" if item.cache_hit else "ok",
                    payload["rate"],
                    payload["initiation_interval"],
                    payload["frustum"]["length"],
                ]
            )
        else:
            status = item.error.get("stage")
            rows.append(
                [
                    item.name,
                    f"ERROR@{status}" if status else "ERROR",
                    item.error["type"],
                    "-",
                    item.error["message"][:40],
                ]
            )
    print(
        render_table(
            ["item", "status", "rate", "II", "frustum len"],
            rows,
            title=f"Sweep of {args.manifest} ({args.workers} worker(s))",
        ),
        file=out,
    )
    stats = result.cache_stats()
    cache_note = (
        f"cache {cache_dir}: {stats['hit']} hit(s), {stats['miss']} "
        f"miss(es), {stats['corrupt']} corrupt"
        if cache_dir is not None
        else "cache off"
    )
    print(
        f"\n{result.n_items} item(s), {result.n_errors} error(s); "
        f"{cache_note}; {wall:.3f}s end to end",
        file=out,
    )
    stage_stats = result.stage_cache_stats()
    if cache_dir is not None and any(
        stage_stats.get(outcome)
        for outcome in ("hit", "miss", "corrupt", "store", "hydrate")
    ):
        print(_stage_cache_note(stage_stats), file=out)

    timing = result.timing_summary()
    if tracer is not None:
        lanes = document["otherData"]["lanes"]
        print(
            f"wrote merged trace ({len(lanes)} lane(s)) to {args.trace}",
            file=out,
        )
        print(_render_timing_summary(timing), file=out)

    merged = result.merged_payload()
    if args.output is not None:
        pathlib.Path(args.output).write_text(
            stable_json(merged, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote merged payload to {args.output}", file=out)

    if args.metrics_out is not None:
        from ..obs import default_registry, render_openmetrics

        exposition = render_openmetrics(default_registry())
        if args.metrics_out == "-":
            out.write(exposition)
        else:
            pathlib.Path(args.metrics_out).write_text(
                exposition, encoding="utf-8"
            )
            print(f"wrote OpenMetrics exposition to {args.metrics_out}", file=out)

    if args.ledger is not None:
        path = _append_sweep_record(
            args, merged, stats, wall, timing, stage_stats
        )
        print(f"appended sweep record to {path}", file=out)

    if args.require_hits and result.hit_rate < 1.0:
        # only ok items can be expected to hit: failures are never
        # cached, and hit_rate excludes them for the same reason
        misses = [i.name for i in result.items if i.ok and not i.cache_hit]
        print(
            f"error: --require-hits: {len(misses)} item(s) were not "
            f"served from the cache: {', '.join(misses)}",
            file=sys.stderr,
        )
        # the per-stage breakdown says how much of each missed item's
        # pipeline was still served from the artifact store
        for stage, outcomes in (stage_stats.get("by_stage") or {}).items():
            if outcomes.get("hit"):
                print(
                    f"  stage {stage}: {outcomes['hit']} artifact hit(s)",
                    file=sys.stderr,
                )
        return 1
    return 1 if result.n_errors else 0


def _render_timing_summary(timing) -> str:
    """The post-sweep critical-path block: the lane that bounded the
    wall clock, its slowest items, and per-phase p50/p95 (``~`` marks
    percentiles from an overflowed sample window)."""
    lines = []
    critical = timing.get("critical_path")
    if critical:
        lines.append(
            f"critical path: {critical['worker']} "
            f"({critical['busy_seconds']:.3f}s busy over "
            f"{len(timing.get('lanes', {}))} lane(s))"
        )
        for entry in critical["items"]:
            lines.append(f"  {entry['seconds']:9.3f}s  {entry['name']}")
    phases = timing.get("phases") or {}
    if phases:
        lines.append("phase percentiles (s):")
        for name, stats in phases.items():
            approx = "" if stats.get("exact_percentiles", True) else "~"
            p50 = stats.get("p50")
            p95 = stats.get("p95")
            lines.append(
                f"  {name:<20} n={stats['count']:<5} "
                f"p50={approx}{p50:.6f} p95={approx}{p95:.6f}"
                if p50 is not None and p95 is not None
                else f"  {name:<20} n={stats['count']}"
            )
    return "\n".join(lines)


def _append_sweep_record(
    args: argparse.Namespace,
    merged,
    cache_stats,
    wall: float,
    timing=None,
    stage_stats=None,
):
    """Append the ``sweep`` run record: the deterministic merged
    payload, with cache counters (both layers), wall clock and the span
    timing summary quarantined in the volatile ``timing`` section."""
    import pathlib

    from ..obs import default_registry
    from ..obs.ledger import (
        RUNS_FILE,
        append_record,
        default_ledger_dir,
        make_run_record,
    )

    directory = (
        default_ledger_dir()
        if args.ledger == "auto"
        else pathlib.Path(args.ledger)
    )
    snapshot = default_registry().dump()
    metrics = {**snapshot["counters"], "cache": dict(cache_stats)}
    if stage_stats is not None and stage_stats.get("by_stage"):
        metrics["stage_cache"] = dict(stage_stats)
    record = make_run_record(
        kind="sweep",
        name=f"sweep:{pathlib.Path(args.manifest).stem}",
        payload=merged,
        command=sys.argv[1:],
        phase_wall_clock={
            **snapshot["timers"],
            "sweep.total": {"count": 1, "total": wall, "mean": wall},
        },
        metrics=metrics,
        spans=timing,
    )
    return append_record(directory / RUNS_FILE, record)
