"""Shared argument plumbing for the CLI subcommand families.

Every subcommand module registers its parsers through
:func:`add_common` / :func:`add_unroll` and compiles through
:func:`compile_from_args`, so flags, defaults and help text stay
identical across commands (and across the split modules) by
construction.
"""

from __future__ import annotations

import argparse
from fractions import Fraction
from typing import Dict, Optional, Sequence

from ..errors import ReproError


def add_common(sub: argparse.ArgumentParser) -> None:
    """The flags every loop-taking command shares."""
    sub.add_argument("loop_file", help="file containing one loop")
    sub.add_argument(
        "--scalar",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="bind a loop-invariant scalar (repeatable)",
    )
    sub.add_argument(
        "--abstract",
        action="store_true",
        help="drop load/store nodes (the paper's figure mode)",
    )
    sub.add_argument(
        "--engine",
        choices=["step", "event"],
        default="event",
        help=(
            "simulation engine for frustum detection: 'event' "
            "(default) jumps between completion instants, 'step' "
            "advances one time unit per tick; results are identical"
        ),
    )
    sub.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-clock table after the output",
    )
    sub.add_argument(
        "--ledger",
        nargs="?",
        const="auto",
        default=None,
        metavar="DIR",
        help=(
            "append a normalized run record to the JSONL run ledger "
            "(default directory: benchmarks/ledger)"
        ),
    )


def add_unroll(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--unroll",
        type=unroll_value,
        default=1,
        metavar="U",
        help=(
            "replicate the loop body U times (an integer, or 'auto' "
            "for the smallest factor whose per-instruction rate "
            "meets the dependence bound exactly)"
        ),
    )


def unroll_value(text: str):
    """``--unroll`` values: an integer or the literal ``auto``.  Range
    and cap validation happens downstream (shared with manifests and
    the service wire layer), so every entry point rejects the same
    values with the same message."""
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def parse_scalars(pairs: Sequence[str]) -> Dict[str, float]:
    scalars: Dict[str, float] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ReproError(f"--scalar expects NAME=VALUE, got {pair!r}")
        scalars[name] = float(value)
    return scalars


def instrumentation(args: argparse.Namespace):
    """The compile-time instrumentation implied by the global flags:
    profiling and ledger runs record phases into the process-wide
    registry, otherwise the shared no-op keeps every hook dormant."""
    from ..obs import Instrumentation, NULL_INSTRUMENTATION, default_registry

    if getattr(args, "profile", False) or (
        getattr(args, "ledger", None) is not None
    ):
        return Instrumentation(metrics=default_registry())
    return NULL_INSTRUMENTATION


def compile_from_args(args: argparse.Namespace, stages: Optional[int] = None):
    """Read the loop file and run it through the compile façade."""
    from ..pipeline import compile_loop

    with open(args.loop_file) as handle:
        source = handle.read()
    result = compile_loop(
        source,
        scalars=parse_scalars(args.scalar),
        pipeline_stages=stages,
        include_io=not args.abstract,
        instrumentation=instrumentation(args),
        engine=getattr(args, "engine", "event"),
        unroll=getattr(args, "unroll", 1),
    )
    if getattr(args, "ledger", None) is not None:
        # stable facts for the run ledger; main() appends the record
        # (with timing/environment sections) after the command succeeds
        args.ledger_payload = {
            "loop": result.translation.loop.name,
            "cycle_time": Fraction(1, 1) / result.optimal_rate,
            "rate": result.optimal_rate,
            "unroll": result.unroll,
            "achieved_rate": result.achieved_rate,
            "dependence_bound": result.dependence_bound,
            "initiation_interval": result.schedule.initiation_interval,
            "frustum_length": result.frustum.length,
            "transient": result.frustum.start_time,
            "repeat_time": result.frustum.repeat_time,
            "n_transitions": len(result.pn.net.transition_names),
            "net_size": result.pn.size,
            "engine": result.engine,
        }
    return result


def resolve_cli_cache_dir(args: argparse.Namespace):
    """The cache-dir precedence shared by ``compile``, ``serve`` and
    ``sweep``: ``--no-cache`` wins, then ``--cache-dir``, then the
    ``REPRO_CACHE`` environment toggle (unset/falsy means no cache)."""
    import pathlib

    from ..batch import resolve_cache_dir

    if args.no_cache:
        return None
    if args.cache_dir is not None:
        return pathlib.Path(args.cache_dir)
    return resolve_cache_dir()
