"""The asyncio HTTP/1.1 shell around :class:`~repro.service.app.
CompileService`.

Deliberately small: the stdlib has no HTTP server that plays well with
an asyncio application object, so this module implements the minimal
correct subset the service needs and refuses the rest explicitly.

* **requests** are parsed from an ``asyncio.StreamReader``:
  request-line, headers, then a ``Content-Length`` body.
  ``Transfer-Encoding: chunked`` is answered with 501 (the API is
  small-JSON-in/JSON-out; chunked uploads buy nothing), bodies beyond
  ``max_body_bytes`` with 413 *before* the body is read;
* **keep-alive** is supported (``Connection: close`` honoured, and
  forced while draining so clients migrate);
* **shutdown** is the graceful-drain sequence pinned by the drain
  test: stop accepting, 503 new requests, let admitted work finish
  (rendering progress through the shared
  :class:`~repro.batch.progress.StatusLine`), then close connections
  and the pool.  ``SIGTERM`` and ``SIGINT`` both trigger it.

Tests that don't need sockets drive :meth:`CompileService.handle`
directly; the end-to-end tests and ``repro serve`` come through here.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import sys
import time
from typing import Dict, Optional, Tuple

from ..batch.progress import StatusLine
from .app import CompileService, Response, ServiceConfig, _error_response
from .wire import WireError

__all__ = ["ReproServer", "read_request", "render_response", "serve"]

log = logging.getLogger("repro.service.http")

#: Parsed request: ``(method, target, lowercase headers, body)``.
Request = Tuple[str, str, Dict[str, str], bytes]

#: Header-section guardrails (a client, not a config knob).
_MAX_HEADERS = 100


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one HTTP/1.1 request off the stream.

    Returns ``None`` on a clean EOF before the request line (the
    client closed an idle keep-alive connection).  Protocol violations
    raise :class:`WireError` — the caller renders the envelope and
    closes.  Header names are lowercased; duplicate headers keep the
    last value (none of the headers the service reads may legally
    repeat).
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise WireError(400, "bad-request", "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise WireError(
            400, "bad-request", f"unsupported protocol version {version!r}"
        )
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise WireError(400, "bad-request", "malformed header line")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > _MAX_HEADERS:
            raise WireError(400, "bad-request", "too many headers")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise WireError(
            501,
            "not-implemented",
            "chunked request bodies are not supported; "
            "send Content-Length",
        )
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise WireError(
            400, "bad-request", "Content-Length is not an integer"
        ) from None
    if length < 0:
        raise WireError(400, "bad-request", "negative Content-Length")
    if length > max_body_bytes:
        raise WireError(
            413,
            "payload-too-large",
            f"body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte limit",
        )
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def render_response(response: Response, keep_alive: bool) -> bytes:
    """Serialize a :class:`Response` as HTTP/1.1 bytes."""
    lines = [f"HTTP/1.1 {response.status} {response.reason}"]
    headers: Dict[str, str] = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(response.body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    headers.update(response.headers)
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + response.body


class ReproServer:
    """Socket lifecycle for one :class:`CompileService` instance.

    ``run()`` owns the whole lifetime: start the service, listen,
    announce the bound port (the real one — ``--port 0`` asks the
    kernel), serve until :meth:`request_shutdown` (or a signal), then
    drain and close.  Tests construct one, run it in a task, and read
    :attr:`port`.
    """

    def __init__(
        self, config: ServiceConfig, service: Optional[CompileService] = None
    ) -> None:
        self.config = config
        self.service = service if service is not None else CompileService(config)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._connections: set = set()

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        self._shutdown.set()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: request loop until close/drain/error."""
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if peer else "-"
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except WireError as error:
                    writer.write(
                        render_response(_error_response(error), False)
                    )
                    await writer.drain()
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    ValueError,  # StreamReader line-length overrun
                ):
                    break
                if request is None:
                    break
                method, target, headers, body = request
                response = await self.service.handle(
                    method, target, headers, body, client
                )
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and not self.service.draining
                )
                writer.write(render_response(response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _track(self, reader, writer) -> None:
        """start_server callback: run the connection as a tracked task
        so shutdown can wait for (then cancel) open connections."""
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    # ------------------------------------------------------------------
    async def run(self, announce=None) -> bool:
        """Serve until shutdown; returns ``True`` when the drain was
        clean (no in-flight work abandoned at grace expiry).

        ``announce`` (default: print to stderr) receives the one-line
        ``listening on http://host:port`` banner — the port in it is
        authoritative under ``--port 0``.
        """
        self.service.start()
        try:
            self._server = await asyncio.start_server(
                self._track, self.config.host, self.config.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            banner = f"listening on http://{self.config.host}:{self.port}"
            if announce is not None:
                announce(banner)
            else:
                print(banner, file=sys.stderr, flush=True)
            log.info("%s", banner)
            self._install_signal_handlers()
            await self._shutdown.wait()
            return await self._drain()
        finally:
            self._remove_signal_handlers()
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            self.service.close()

    def _install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (skipped where unsupported)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # non-unix loops
                return

    def _remove_signal_handlers(self) -> None:
        """Undo :meth:`_install_signal_handlers` (idempotent)."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                return

    async def _drain(self) -> bool:
        """The graceful-drain sequence (see ``docs/SERVICE.md``).

        Stop accepting, flip the service to draining (healthz 503, new
        requests 503), wait up to ``drain_grace`` for admitted work to
        finish — rendering live progress on a TTY — then close any
        idle connections still open.
        """
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        self.service.begin_drain()
        line = StatusLine()
        grace = self.config.drain_grace
        deadline = time.monotonic() + grace
        clean = True
        while self.service.inflight:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                clean = False
                break
            line.update(
                f"{self.service.drain_status()}, "
                f"{remaining:.0f}s grace left"
            )
            await asyncio.sleep(0.05)
        line.clear()
        if clean:
            # In-flight hit zero between handle() returning and the
            # response bytes flushing; give writers a beat to finish.
            if self._connections:
                await asyncio.wait(set(self._connections), timeout=0.5)
            log.info("drain complete: %d request(s) served", self.service.served)
        else:
            log.warning(
                "drain grace (%.1fs) expired with %d request(s) in flight",
                grace,
                self.service.inflight,
            )
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        return clean


def serve(config: ServiceConfig) -> int:
    """Blocking entrypoint behind ``repro serve``: run the server until
    a signal, exit 0 on a clean drain and 1 when the grace expired."""
    server = ReproServer(config)
    try:
        clean = asyncio.run(server.run())
    except KeyboardInterrupt:  # signal handlers unavailable (rare)
        return 0
    return 0 if clean else 1
