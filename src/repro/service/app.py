"""The compilation service behind ``repro serve``.

:class:`CompileService` is the transport-independent core: an asyncio
object that admits requests, runs compilations on a long-lived process
pool, serves cache hits from the content-addressed compile cache, and
answers health and metrics probes.  The HTTP layer
(:mod:`repro.service.http`) is a thin shell over :meth:`CompileService.
handle`; tests drive ``handle`` directly and the contract is identical.

Request lifecycle (documented in ``docs/ARCHITECTURE.md``)::

    admission → cache lookup → pool compile → response
       |            |               |
       429/503    X-Cache: hit    X-Cache: miss (+ cache store
     (envelope)   (no pool work)    in the worker, atomically)

Robustness rules, each pinned by a test:

* **bounded admission** — at most ``max_inflight`` requests execute
  while at most ``max_queue`` wait; anything beyond is rejected
  *immediately* with 429 and a ``Retry-After`` estimated from the
  recent request EWMA, so a saturated service sheds load in O(1)
  instead of building an unbounded backlog;
* **deadlines** — a request's clock starts at admission *entry* (queue
  wait counts); when it expires the response is a 504 and the pool
  future is cancelled — work that never started is reaped from the
  queue, work already running is abandoned (its result is discarded;
  the counters ``service.requests.reaped`` / ``.abandoned`` separate
  the two);
* **failure isolation** — a loop that fails to compile is a structured
  422 envelope (the worker's ``{"type", "message"}`` record under
  ``detail``), never a 500, never a dead worker;
* **graceful drain** — :meth:`begin_drain` stops admission (503 on new
  requests, so load balancers eject the instance) while admitted
  requests run to completion; :meth:`drained` reports when in-flight
  work hits zero.

Observability: a dedicated :class:`~repro.obs.metrics.MetricsRegistry`
(never the process-wide default — a server must not fight the CLI for
counters) backs ``GET /metrics``; every request emits one structured
JSON access-log line carrying the service's ``trace_id`` and, when
span tracing is on (``--span-dir``), a completed request span whose
trace id also stamps every pool worker's span shard — the same
end-to-end identity ``repro sweep --trace`` uses.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..batch.cache import CompileCache
from ..batch.sweep import (
    compile_item_task,
    item_result_from_entry,
    pool_worker_init,
    SweepResult,
)
from ..obs.metrics import MetricsRegistry
from ..obs.openmetrics import render_openmetrics
from ..obs.schema import stable_json
from ..obs.spans import NULL_TRACER, SpanShardWriter, Tracer, new_id
from .wire import (
    API_VERSION,
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_OPENMETRICS,
    WireError,
    error_body,
    parse_compile_request,
    parse_sweep_request,
    split_target,
)

__all__ = ["ServiceConfig", "Response", "CompileService"]

log = logging.getLogger("repro.service")
access_log = logging.getLogger("repro.service.access")

#: ``Retry-After`` is clamped into this window: never tell a client to
#: hammer immediately, never park it for more than a minute.
RETRY_AFTER_BOUNDS = (1, 60)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` can be tuned with (see
    ``docs/SERVICE.md`` for the capacity model behind the knobs)."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    max_inflight: int = 8
    max_queue: Optional[int] = None  # defaults to max_inflight
    request_timeout: float = 30.0
    drain_grace: float = 10.0
    cache_dir: Optional[str] = None
    span_dir: Optional[str] = None
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        """Validate the knobs up front — a service that boots with a
        nonsensical config should fail at start, not under load."""
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_queue is not None and self.max_queue < 0:
            raise ValueError(
                f"max_queue must be >= 0, got {self.max_queue}"
            )
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.drain_grace < 0:
            raise ValueError(
                f"drain_grace must be >= 0, got {self.drain_grace}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )

    @property
    def queue_bound(self) -> int:
        """The effective admission-queue depth (``max_queue`` or, when
        unset, ``max_inflight`` — one full wave of waiters)."""
        return self.max_queue if self.max_queue is not None else self.max_inflight


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class Response:
    """One HTTP response: status, body bytes, and extra headers."""

    status: int
    body: bytes
    content_type: str = CONTENT_TYPE_JSON
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def reason(self) -> str:
        """The status line's reason phrase."""
        return _REASONS.get(self.status, "Unknown")


def _error_response(error: WireError) -> Response:
    headers: Dict[str, str] = {}
    retry_after = error.extra.get("retry_after_seconds")
    if retry_after is not None:
        headers["Retry-After"] = str(int(retry_after))
    allow = error.extra.get("allow")
    if allow is not None:
        headers["Allow"] = str(allow)
    return Response(
        status=error.status,
        body=error_body(error.status, error.kind, error.message, error.extra),
        headers=headers,
    )


def _warm_worker() -> None:
    """No-op pool task: submitting one per worker at boot forces the
    spawn-context interpreters to start before the first request."""
    return None


class CompileService:
    """The asyncio application object: admission, pool, cache, probes.

    ``executor`` is injectable for tests (anything with ``submit`` and
    ``shutdown``); by default :meth:`start` builds a
    ``ProcessPoolExecutor`` with ``config.workers`` processes that —
    when ``config.span_dir`` is set — join the service's trace and
    stream span shards, exactly like sweep pool workers.
    """

    def __init__(
        self,
        config: ServiceConfig,
        executor: Optional[Any] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self._executor = executor
        self._owns_executor = executor is None
        self._started = time.monotonic()
        self._draining = False
        self._executing = 0
        self._queued = 0
        self._served = 0
        self._slots: Optional[asyncio.Semaphore] = None
        self._ewma: float = 0.0
        self.cache = (
            CompileCache(config.cache_dir, registry=self.registry)
            if config.cache_dir is not None
            else None
        )
        self.tracer: Tracer = NULL_TRACER
        self._shard: Optional[SpanShardWriter] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring up the pool (and the span shard when tracing is on).

        Safe to call once; the asyncio primitives are created here so
        the service binds to the running loop, not the import-time one.
        """
        self._slots = asyncio.Semaphore(self.config.max_inflight)
        if self.config.span_dir is not None:
            import os
            import pathlib

            self.tracer = Tracer(worker="serve")
            self._shard = SpanShardWriter(
                pathlib.Path(self.config.span_dir)
                / f"spans-serve-{os.getpid()}.jsonl",
                self.tracer,
            )
            self.tracer.writer = self._shard.write
        if self._executor is None:
            initargs: Tuple[Any, ...] = (None, None)
            if self.tracer.enabled:
                initargs = (
                    self.tracer.make_context().to_tuple(),
                    str(self.config.span_dir),
                )
            # spawn, not fork: forked workers would inherit the
            # server's listening and per-connection fds, so a closed
            # response socket never reaches EOF on the client while a
            # worker holds the dup (and forking an asyncio process is
            # unsafe anyway).  Workers are pre-warmed with no-op tasks
            # so the first request does not pay interpreter startup.
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=pool_worker_init,
                initargs=initargs,
            )
            for _ in range(self.config.workers):
                self._executor.submit(_warm_worker)
        self.registry.gauge("service.workers").set(self.config.workers)
        log.info(
            "service started: workers=%d max_inflight=%d queue=%d "
            "timeout=%.1fs cache=%s",
            self.config.workers,
            self.config.max_inflight,
            self.config.queue_bound,
            self.config.request_timeout,
            self.config.cache_dir or "off",
        )

    def close(self) -> None:
        """Shut the pool down (cancelling queued work) and close the
        span shard.  Idempotent."""
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._shard is not None:
            self._shard.close()
            self._shard = None

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; already-admitted requests run to completion."""
        if self._draining:
            return
        self._draining = True
        self.registry.gauge("service.draining").set(1)
        log.info(
            "drain started: %d executing, %d queued",
            self._executing,
            self._queued,
        )

    @property
    def draining(self) -> bool:
        """Whether the service is refusing new work (503 on entry)."""
        return self._draining

    @property
    def inflight(self) -> int:
        """Admitted requests that have not finished (executing+queued)."""
        return self._executing + self._queued

    @property
    def served(self) -> int:
        """Total requests answered (any status) since start."""
        return self._served

    def drain_status(self) -> str:
        """The one-line drain progress for the shared status renderer."""
        return (
            f"drain: {self._executing} executing, {self._queued} queued"
        )

    async def drained(self, grace: float) -> bool:
        """Wait up to ``grace`` seconds for in-flight work to hit zero;
        ``True`` when it did, ``False`` when the grace expired first."""
        deadline = time.monotonic() + grace
        while self.inflight:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.05)
        return True

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def retry_after(self) -> int:
        """The 429's ``Retry-After`` estimate, in whole seconds.

        Backlog ahead of a new arrival divided by pool width, scaled by
        the EWMA of recent request wall time, clamped into
        :data:`RETRY_AFTER_BOUNDS`.  A cold service (no EWMA yet)
        advises the lower bound.
        """
        per_request = self._ewma if self._ewma > 0 else 1.0
        backlog = self._executing + self._queued + 1
        estimate = math.ceil(per_request * backlog / self.config.workers)
        low, high = RETRY_AFTER_BOUNDS
        return max(low, min(high, estimate))

    async def _admit(self, deadline: float) -> None:
        """Take an execution slot or raise the backpressure envelope."""
        if self._draining:
            raise WireError(
                503,
                "service-unavailable",
                "service is draining; retry against another instance",
                extra={"retry_after_seconds": self.retry_after()},
            )
        assert self._slots is not None, "CompileService.start() not called"
        if (
            self._executing >= self.config.max_inflight
            and self._queued >= self.config.queue_bound
        ):
            self.registry.counter("service.rejected").inc()
            raise WireError(
                429,
                "too-many-requests",
                f"admission queue is full ({self._queued} waiting, "
                f"{self._executing} executing); retry later",
                extra={"retry_after_seconds": self.retry_after()},
            )
        self._queued += 1
        self.registry.gauge("service.queued").set(self._queued)
        try:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise asyncio.TimeoutError
            await asyncio.wait_for(self._slots.acquire(), remaining)
        except asyncio.TimeoutError:
            self.registry.counter("service.timeouts").inc()
            raise WireError(
                504,
                "timeout",
                "request deadline expired while waiting for admission",
            ) from None
        finally:
            self._queued -= 1
            self.registry.gauge("service.queued").set(self._queued)
        self._executing += 1
        self.registry.gauge("service.inflight").set(self._executing)

    def _release(self) -> None:
        """Give the execution slot back."""
        assert self._slots is not None
        self._executing -= 1
        self.registry.gauge("service.inflight").set(self._executing)
        self._slots.release()

    # ------------------------------------------------------------------
    # Pool work
    # ------------------------------------------------------------------
    def _submit(self, index: int, item: Any) -> Future:
        """Queue one compile task on the pool."""
        assert self._executor is not None, "CompileService.start() not called"
        return self._executor.submit(
            compile_item_task, (index, item, self.config.cache_dir)
        )

    async def _await_entry(
        self, future: Future, deadline: float
    ) -> Dict[str, Any]:
        """Await one pool future under the request deadline.

        On expiry the future is cancelled: if it had not started yet
        the work is *reaped* from the pool queue; if it was already
        running the result is abandoned (the worker finishes and the
        bytes are dropped) — a process pool cannot preempt a running
        task without killing the worker.
        """
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            self._reap(future)
            raise WireError(504, "timeout", "request deadline expired")
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(future), remaining
            )
        except asyncio.TimeoutError:
            self._reap(future)
            self.registry.counter("service.timeouts").inc()
            raise WireError(
                504,
                "timeout",
                f"compilation exceeded the "
                f"{self.config.request_timeout:g}s request deadline",
            ) from None

    def _reap(self, *futures: Future) -> None:
        """Cancel pool futures, counting reaped vs abandoned work.

        A future may arrive here already cancelled — ``wait_for``
        propagates its cancellation through ``wrap_future`` — which
        still counts as reaped: the work never ran.
        """
        for future in futures:
            if future.cancelled() or future.cancel():
                self.registry.counter("service.requests.reaped").inc()
            else:
                # running (a pool cannot preempt) or finished after the
                # deadline — either way the result is dropped
                self.registry.counter("service.requests.abandoned").inc()

    def _merge_cache_stats(
        self, stats: Optional[Mapping[str, int]], skip_lookup: bool
    ) -> None:
        """Fold a worker's cache counters into the service registry.

        ``skip_lookup`` drops the worker's hit/miss — used when the
        service already performed (and counted) the in-process lookup
        for the same request, so hits and misses are counted once.
        """
        for outcome, count in (stats or {}).items():
            if skip_lookup and outcome in ("hit", "miss"):
                continue
            if count:
                self.registry.counter(f"batch.cache.{outcome}").inc(count)

    def _merge_stage_stats(
        self, stats: Optional[Mapping[str, int]]
    ) -> None:
        """Fold a worker's per-stage artifact-cache counters into the
        service registry (``stage.cache.*`` — the service itself never
        performs stage lookups, so nothing is double-counted)."""
        for outcome, count in (stats or {}).items():
            if count:
                self.registry.counter(f"stage.cache.{outcome}").inc(count)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def handle(
        self,
        method: str,
        target: str,
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
        client: str = "-",
    ) -> Response:
        """Route one request; never raises — every failure is a
        well-formed error envelope (500 for genuine bugs, logged)."""
        path, _ = split_target(target)
        route = {
            "/healthz": ("GET", self._handle_healthz, "healthz"),
            "/metrics": ("GET", self._handle_metrics, "metrics"),
            "/v1/compile": ("POST", self._handle_compile, "compile"),
            "/v1/sweep": ("POST", self._handle_sweep, "sweep"),
        }.get(path)
        started = time.monotonic()
        request_id = new_id()
        cache_state: List[str] = []
        try:
            if route is None:
                raise WireError(404, "not-found", f"no such endpoint: {path}")
            expected_method, handler, name = route
            if method != expected_method:
                raise WireError(
                    405,
                    "method-not-allowed",
                    f"{path} expects {expected_method}, got {method}",
                    extra={"allow": expected_method},
                )
            response = await handler(body, cache_state)
        except WireError as error:
            name = route[2] if route is not None else "other"
            response = _error_response(error)
        except Exception:  # noqa: BLE001 — the envelope must always render
            name = route[2] if route is not None else "other"
            log.exception("unhandled error serving %s %s", method, path)
            self.registry.counter("service.errors.internal").inc()
            response = _error_response(
                WireError(500, "internal", "internal error; see server log")
            )
        seconds = time.monotonic() - started
        self._observe(name, response.status, seconds)
        response.headers.setdefault("X-Request-Id", request_id)
        if self.tracer.enabled:
            span = self.tracer.record_completed(
                f"request:{method} {path}",
                seconds,
                status=response.status,
                request_id=request_id,
            )
            response.headers.setdefault("X-Trace-Id", span.trace_id)
            self.tracer.spans.clear()  # streamed to the shard already
        self._access_log(
            method, target, response.status, seconds, request_id,
            client, cache_state,
        )
        self._served += 1
        return response

    def _observe(self, name: str, status: int, seconds: float) -> None:
        """Per-request accounting: counters, latency timer, EWMA."""
        self.registry.counter(f"service.requests.{name}").inc()
        self.registry.counter(f"service.responses.{status}").inc()
        self.registry.record_time(f"service.request.{name}", seconds)
        if name in ("compile", "sweep") and status < 500:
            self._ewma = (
                seconds
                if self._ewma == 0.0
                else 0.2 * seconds + 0.8 * self._ewma
            )

    def _access_log(
        self,
        method: str,
        target: str,
        status: int,
        seconds: float,
        request_id: str,
        client: str,
        cache_state: List[str],
    ) -> None:
        """One structured JSON line per request on the access logger."""
        entry: Dict[str, Any] = {
            "client": client,
            "method": method,
            "target": target,
            "status": status,
            "seconds": round(seconds, 6),
            "request_id": request_id,
            "inflight": self._executing,
            "queued": self._queued,
        }
        if cache_state:
            entry["cache"] = cache_state[0]
        if self.tracer.enabled:
            entry["trace_id"] = self.tracer.trace_id
        access_log.info("%s", json.dumps(entry, sort_keys=True))

    async def _handle_healthz(
        self, body: bytes, cache_state: List[str]
    ) -> Response:
        """Liveness/readiness: 200 while serving, 503 while draining
        (so load balancers stop routing to a draining instance)."""
        status = 503 if self._draining else 200
        payload = {
            "status": "draining" if self._draining else "ok",
            "api_version": API_VERSION,
            "inflight": self._executing,
            "queued": self._queued,
            "workers": self.config.workers,
            "cache": "on" if self.cache is not None else "off",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }
        return Response(
            status=status,
            body=(json.dumps(payload, sort_keys=True, indent=2) + "\n").encode(
                "utf-8"
            ),
        )

    async def _handle_metrics(
        self, body: bytes, cache_state: List[str]
    ) -> Response:
        """The OpenMetrics exposition of the service registry."""
        self.registry.gauge("service.queued").set(self._queued)
        self.registry.gauge("service.inflight").set(self._executing)
        text = render_openmetrics(self.registry)
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type=CONTENT_TYPE_OPENMETRICS,
        )

    async def _handle_compile(
        self, body: bytes, cache_state: List[str]
    ) -> Response:
        """``POST /v1/compile``: one loop in, the CLI-identical
        deterministic payload out."""
        item = parse_compile_request(body)
        deadline = time.monotonic() + self.config.request_timeout
        await self._admit(deadline)
        try:
            payload: Optional[Dict[str, Any]] = None
            key: Optional[str] = None
            if self.cache is not None:
                from ..batch.cache import cache_key

                key = cache_key(
                    item.source,
                    scalars=item.scalars,
                    pipeline_stages=item.pipeline_stages,
                    include_io=item.include_io,
                    engine=item.engine,
                    unroll=item.unroll,
                )
                payload = await asyncio.to_thread(self.cache.load, key)
            if payload is not None:
                cache_state.append("hit")
            else:
                entry = await self._await_entry(
                    self._submit(0, item), deadline
                )
                self._merge_cache_stats(
                    entry.get("cache_stats"), skip_lookup=self.cache is not None
                )
                self._merge_stage_stats(entry.get("stage_stats"))
                key = entry.get("key") or key
                if entry["status"] == "error":
                    raise WireError(
                        422,
                        "unprocessable",
                        f"loop {item.name!r} failed to compile",
                        extra={"detail": entry["error"]},
                    )
                payload = entry["payload"]
                cache_state.append(
                    "miss" if self.cache is not None else "off"
                )
        finally:
            self._release()
        headers = {"X-Cache": cache_state[0]}
        if key is not None:
            headers["X-Compile-Key"] = key
        return Response(
            status=200,
            body=(stable_json(payload, indent=2) + "\n").encode("utf-8"),
            headers=headers,
        )

    async def _handle_sweep(
        self, body: bytes, cache_state: List[str]
    ) -> Response:
        """``POST /v1/sweep``: a manifest in, the deterministic merged
        payload out.

        Items are submitted individually to the shared pool, so
        concurrent sweep requests micro-batch — their items interleave
        at item granularity instead of queueing request-by-request
        behind each other.
        """
        items = parse_sweep_request(body)
        deadline = time.monotonic() + self.config.request_timeout
        await self._admit(deadline)
        try:
            futures = [
                self._submit(index, item) for index, item in enumerate(items)
            ]
            entries: List[Dict[str, Any]] = []
            try:
                for future in futures:
                    entries.append(await self._await_entry(future, deadline))
            except WireError:
                self._reap(*futures)
                raise
            for entry in entries:
                self._merge_cache_stats(
                    entry.get("cache_stats"), skip_lookup=False
                )
                self._merge_stage_stats(entry.get("stage_stats"))
        finally:
            self._release()
        entries.sort(key=lambda entry: entry["index"])  # manifest order
        result = SweepResult(
            items=[item_result_from_entry(entry) for entry in entries],
            workers=self.config.workers,
            cache_dir=self.config.cache_dir,
        )
        stats = result.cache_stats()
        stage_stats = result.stage_cache_stats()
        merged = result.merged_payload()
        cache_state.append(
            f"hits={stats['hit']},misses={stats['miss']}"
            if self.cache is not None
            else "off"
        )
        headers = {
            "X-Cache-Hits": str(stats["hit"]),
            "X-Cache-Misses": str(stats["miss"]),
            "X-Stage-Hits": str(stage_stats["hit"]),
            "X-Sweep-Errors": str(result.n_errors),
        }
        return Response(
            status=200,
            body=(stable_json(merged, indent=2) + "\n").encode("utf-8"),
            headers=headers,
        )
