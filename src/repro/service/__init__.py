"""``repro serve``: the async compilation service.

The package splits along the testing seams:

* :mod:`repro.service.wire` — the versioned wire format: request
  validation, the error envelope, content types (``docs/API.md`` is
  the client-facing reference);
* :mod:`repro.service.app` — :class:`CompileService`, the
  transport-independent application object: bounded admission with
  429 + ``Retry-After`` backpressure, per-request deadlines with pool
  cancellation, the content-addressed cache fast path, graceful
  drain, OpenMetrics and health probes;
* :mod:`repro.service.http` — the stdlib-only asyncio HTTP/1.1 shell
  and the signal-driven shutdown sequence.

Operations live in ``docs/SERVICE.md``; the one contract to remember
is byte-identity: a served ``POST /v1/compile`` body equals ``repro
compile``'s stdout for the same input, and a ``POST /v1/sweep`` body
equals what ``repro sweep -o`` writes.
"""

from .app import CompileService, Response, ServiceConfig
from .http import ReproServer, serve
from .wire import API_VERSION, MAX_SWEEP_ITEMS, WireError

__all__ = [
    "API_VERSION",
    "MAX_SWEEP_ITEMS",
    "CompileService",
    "Response",
    "ReproServer",
    "ServiceConfig",
    "WireError",
    "serve",
]
