"""The versioned wire format of ``repro serve`` (see ``docs/API.md``).

Everything a client sends or receives crosses this module, so the
rules live here in one place:

* **version prefix** — all compilation endpoints hang under ``/v1``;
  a wire-visible behavior change bumps :data:`API_VERSION` and keeps
  the old prefix serving until clients migrate;
* **success bodies are the CLI's bytes** — a ``POST /v1/compile``
  response body is exactly what ``repro compile`` prints for the same
  input (``stable_json(payload, indent=2)`` + newline), and a
  ``POST /v1/sweep`` body is exactly what ``repro sweep -o`` writes.
  Byte-identity is the service's core contract: a client may diff a
  served result against a locally compiled one;
* **errors use one envelope** — ``{"error": {"status", "type",
  "message", ...}}``; machine-readable ``type`` slugs are stable API,
  prose ``message`` text is not;
* **validation never imports the compiler** — a malformed request is
  rejected from the parsed JSON alone, before any pool or cache work
  is scheduled.

:class:`WireError` is the module's only exception: handlers raise it
with a status/type/message triple and the HTTP layer renders the
envelope.  Compile *failures* (the loop parsed into the pool but the
pipeline raised) are not wire errors — they come back as structured
``422`` envelopes carrying the worker's ``{"type", "message"}`` error
record under ``detail``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ReproError
from ..batch.manifest import SweepItem

__all__ = [
    "API_VERSION",
    "CONTENT_TYPE_JSON",
    "CONTENT_TYPE_OPENMETRICS",
    "MAX_SWEEP_ITEMS",
    "WireError",
    "error_body",
    "parse_compile_request",
    "parse_sweep_request",
    "split_target",
]

#: The wire-format version: the ``/v1`` in every compilation endpoint.
API_VERSION = 1

CONTENT_TYPE_JSON = "application/json; charset=utf-8"
CONTENT_TYPE_OPENMETRICS = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: ``/v1/sweep`` rejects manifests beyond this many items — one request
#: must not be able to monopolise the pool for unbounded time.
MAX_SWEEP_ITEMS = 1024


class WireError(Exception):
    """A request the service refuses, as a status/type/message triple.

    ``extra`` merges additional keys into the error envelope (e.g. the
    per-item compile error under ``detail``, or ``retry_after_seconds``
    alongside a 429's ``Retry-After`` header).
    """

    def __init__(
        self,
        status: int,
        kind: str,
        message: str,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message
        self.extra = dict(extra) if extra else {}


def error_body(
    status: int,
    kind: str,
    message: str,
    extra: Optional[Mapping[str, Any]] = None,
) -> bytes:
    """Render the error envelope all non-2xx responses share."""
    envelope: Dict[str, Any] = {
        "status": status,
        "type": kind,
        "message": message,
    }
    if extra:
        envelope.update(extra)
    return (
        json.dumps({"error": envelope}, sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")


def _parse_json_object(body: bytes, what: str) -> Dict[str, Any]:
    """Decode a request body into a JSON object or raise 400."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(
            400, "bad-request", f"{what}: body is not valid JSON ({error})"
        ) from error
    if not isinstance(data, dict):
        raise WireError(
            400,
            "bad-request",
            f"{what}: body must be a JSON object, got "
            f"{type(data).__name__}",
        )
    return data


_COMPILE_KEYS = {
    "name",
    "source",
    "scalars",
    "pipeline_stages",
    "include_io",
    "engine",
    "unroll",
}


def _item_from_wire(
    data: Mapping[str, Any], what: str, index: Optional[int] = None
) -> SweepItem:
    """Validate one wire item into a :class:`SweepItem`.

    The wire schema is the manifest schema minus ``file`` references —
    a network client must not be able to read the server's filesystem.
    """
    if "file" in data:
        raise WireError(
            400,
            "bad-request",
            f"{what}: 'file' references are not accepted over the wire; "
            "inline the loop text as 'source'",
        )
    unknown = sorted(set(data) - _COMPILE_KEYS)
    if unknown:
        raise WireError(
            400,
            "bad-request",
            f"{what}: unknown field(s) {', '.join(map(repr, unknown))}",
        )
    payload = dict(data)
    payload.setdefault("name", "request")
    try:
        return SweepItem.from_mapping(payload, index=index)
    except ReproError as error:
        raise WireError(400, "bad-request", f"{what}: {error}") from error
    except (TypeError, ValueError) as error:
        raise WireError(400, "bad-request", f"{what}: {error}") from error


def parse_compile_request(body: bytes) -> SweepItem:
    """Validate a ``POST /v1/compile`` body into one :class:`SweepItem`.

    Required: ``source`` (inline loop text).  Optional: ``name``,
    ``scalars``, ``pipeline_stages``, ``include_io``, ``engine``,
    ``unroll`` — the same vocabulary as a sweep-manifest item, because
    the compilation they describe is the same pure function.
    ``unroll`` must be a positive integer up to the documented cap
    (:data:`repro.loops.unroll.MAX_UNROLL`) or ``"auto"``; zero,
    negative, non-integer and beyond-the-cap values all come back as
    the stable ``400 bad-request`` envelope, never a 500.
    """
    data = _parse_json_object(body, "compile request")
    return _item_from_wire(data, "compile request")


def parse_sweep_request(body: bytes) -> List[SweepItem]:
    """Validate a ``POST /v1/sweep`` body into manifest-ordered items.

    The body is ``{"items": [...]}`` with the same per-item schema as
    :func:`parse_compile_request`; duplicate names are rejected for the
    same reason :func:`repro.batch.manifest.load_manifest` rejects them
    (the merged payload is reported by name).
    """
    data = _parse_json_object(body, "sweep request")
    raw_items = data.get("items")
    unknown = sorted(set(data) - {"items"})
    if unknown:
        raise WireError(
            400,
            "bad-request",
            f"sweep request: unknown field(s) {', '.join(map(repr, unknown))}",
        )
    if not isinstance(raw_items, list) or not raw_items:
        raise WireError(
            400,
            "bad-request",
            "sweep request: 'items' must be a non-empty list",
        )
    if len(raw_items) > MAX_SWEEP_ITEMS:
        raise WireError(
            413,
            "payload-too-large",
            f"sweep request: {len(raw_items)} items exceeds the "
            f"{MAX_SWEEP_ITEMS}-item limit; split the sweep",
        )
    items: List[SweepItem] = []
    seen: Dict[str, int] = {}
    for index, entry in enumerate(raw_items):
        if not isinstance(entry, Mapping):
            raise WireError(
                400,
                "bad-request",
                f"sweep request item {index}: expected an object, got "
                f"{type(entry).__name__}",
            )
        if "name" not in entry:
            raise WireError(
                400,
                "bad-request",
                f"sweep request item {index}: 'name' is required in a "
                "sweep (results are reported by name)",
            )
        item = _item_from_wire(entry, f"sweep request item {index}", index)
        if item.name in seen:
            raise WireError(
                400,
                "bad-request",
                f"sweep request: duplicate item name {item.name!r} "
                f"(items {seen[item.name]} and {index})",
            )
        seen[item.name] = index
        items.append(item)
    return items


def split_target(target: str) -> Tuple[str, str]:
    """Split a request target into ``(path, query)`` (no decoding —
    the service's routes carry no parameters today, the query string is
    kept only for the access log)."""
    path, _, query = target.partition("?")
    return path, query
