"""Graphviz DOT export for dataflow graphs and Petri nets.

The ASCII renderings in :mod:`repro.report.render` are the canonical
(testable) figure artifacts; this module additionally emits DOT so the
nets can be drawn with graphviz — useful when exploring larger loops.
The output is plain text with no graphviz dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from ..dataflow.graph import DataflowGraph
from ..petrinet.marking import Marking
from ..petrinet.net import PetriNet

__all__ = ["dataflow_to_dot", "petri_net_to_dot"]


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def dataflow_to_dot(graph: DataflowGraph) -> str:
    """Dataflow graph as DOT: boxes for instructions, dashed edges for
    feedback (loop-carried) arcs, port labels on multi-operand nodes."""
    lines: List[str] = [f"digraph {_quote(graph.name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append("  node [shape=box, fontname=monospace];")
    for actor in graph.actors:
        label = f"{actor.name}\\n{actor.label}"
        shape = {
            "load": "invhouse",
            "store": "house",
            "sink": "point",
            "switch": "diamond",
            "merge": "invtriangle",
        }.get(actor.kind.value, "box")
        lines.append(
            f"  {_quote(actor.name)} [label={_quote(label)}, shape={shape}];"
        )
    for arc in graph.arcs:
        attributes = []
        if arc.is_feedback:
            attributes.append("style=dashed")
            attributes.append('color="firebrick"')
            attributes.append(f'label="d={arc.initial_tokens}"')
        if arc.source_port:
            attributes.append('taillabel="F"')
        joined = ", ".join(attributes)
        suffix = f" [{joined}]" if joined else ""
        lines.append(
            f"  {_quote(arc.source)} -> {_quote(arc.target)}{suffix};"
        )
    lines.append("}")
    return "\n".join(lines)


def petri_net_to_dot(
    net: PetriNet,
    marking: Optional[Marking] = None,
    durations: Optional[Mapping[str, int]] = None,
) -> str:
    """Petri net as DOT: bars (boxes) for transitions, circles for
    places with their token counts, per the paper's drawing style."""
    lines: List[str] = [f"digraph {_quote(net.name)} {{"]
    lines.append("  rankdir=TB;")
    for transition in net.transitions:
        duration = durations.get(transition.name) if durations else None
        label = transition.name
        if duration is not None and duration != 1:
            label += f"\\ntau={duration}"
        style = (
            'style=filled, fillcolor="lightgrey"'
            if transition.annotation == "dummy"
            else ""
        )
        attributes = f'label={_quote(label)}, shape=box, height=0.2'
        if style:
            attributes += f", {style}"
        lines.append(f"  {_quote(transition.name)} [{attributes}];")
    for place in net.places:
        tokens = marking[place.name] if marking is not None else 0
        dot = "&bull;" * tokens if tokens <= 3 else f"{tokens}"
        label = dot if tokens else ""
        color = {"ack": "steelblue", "run": "darkorange"}.get(
            place.annotation, "black"
        )
        lines.append(
            f"  {_quote(place.name)} [label={_quote(label)}, shape=circle, "
            f"color={_quote(color)}];"
        )
    for source, target in sorted(net.arcs):
        lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines)
