"""Aligned text tables for the benchmark harness.

The benches print Tables 1 and 2 (and the extra studies) in the same
row/column structure as the paper; this module is the tiny formatting
layer they share.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, List, Mapping, Optional, Sequence

__all__ = ["format_cell", "render_table", "render_rate_closure"]


def format_cell(value: Any) -> str:
    """Human formatting: fractions as ``p/q``, floats to 3 decimals,
    booleans as yes/no, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a header rule.

    Column widths fit the widest cell; numeric-looking cells are
    right-aligned, text left-aligned.
    """
    text_rows: List[List[str]] = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def is_numeric(text: str) -> bool:
        stripped = text.replace("/", "").replace(".", "").replace("-", "")
        return stripped.isdigit() and bool(stripped)

    def align(cell: str, width: int) -> str:
        if is_numeric(cell):
            return cell.rjust(width)
        return cell.ljust(width)

    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(align(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_rate_closure(
    entries: Sequence[Mapping[str, Any]],
    title: Optional[str] = "Achieved vs. optimal rate under unrolling",
) -> str:
    """The unrolling closure table: per loop, the rate the base
    (``U = 1``) net achieves, the dependence bound ``γ*``, the chosen
    unroll factor, and the per-base-instruction rate the unrolled
    steady state achieves — ``closed`` marks rows where achieved equals
    the bound exactly (the ``unroll="auto"`` guarantee).

    Each entry is a mapping with ``loop``, ``base_rate``,
    ``dependence_bound``, ``unroll`` and ``achieved_rate`` keys (the
    vocabulary of :meth:`repro.pipeline.CompiledLoopSummary.payload`).
    """
    headers = [
        "loop", "rate @ U=1", "bound γ*", "U", "achieved/iter", "closed",
    ]
    rows = [
        [
            entry["loop"],
            entry["base_rate"],
            entry["dependence_bound"],
            entry["unroll"],
            entry["achieved_rate"],
            entry["achieved_rate"] == entry["dependence_bound"],
        ]
        for entry in entries
    ]
    return render_table(headers, rows, title=title)
