"""Reporting: text tables for the benchmark harness and ASCII
renderings of the paper's figures."""

from .tables import format_cell, render_table
from .render import (
    render_behavior_graph,
    render_dataflow_graph,
    render_petri_net,
    render_schedule,
)
from .dot import dataflow_to_dot, petri_net_to_dot

__all__ = [
    "format_cell",
    "render_table",
    "render_behavior_graph",
    "render_dataflow_graph",
    "render_petri_net",
    "render_schedule",
    "dataflow_to_dot",
    "petri_net_to_dot",
]
