"""Reporting: text tables for the benchmark harness, ASCII renderings
of the paper's figures, Graphviz DOT emitters and the self-contained
HTML dashboard behind ``repro dash``."""

from .tables import format_cell, render_rate_closure, render_table
from .render import (
    render_behavior_graph,
    render_dataflow_graph,
    render_petri_net,
    render_schedule,
)
from .dash import render_dash
from .dot import dataflow_to_dot, petri_net_to_dot

__all__ = [
    "format_cell",
    "render_rate_closure",
    "render_table",
    "render_behavior_graph",
    "render_dataflow_graph",
    "render_petri_net",
    "render_schedule",
    "render_dash",
    "dataflow_to_dot",
    "petri_net_to_dot",
]
