"""ASCII renderings of the paper's figures.

Figures 1–4 of the paper are diagrams of dataflow graphs, Petri nets,
behavior graphs, steady-state nets and schedules; the figure benches
regenerate them as structured text so the reproduction is reviewable in
a terminal and diffable in tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..dataflow.graph import DataflowGraph
from ..petrinet.behavior import BehaviorGraph, CyclicFrustum
from ..petrinet.marking import Marking
from ..petrinet.net import PetriNet

__all__ = [
    "render_dataflow_graph",
    "render_petri_net",
    "render_behavior_graph",
    "render_schedule",
]


def render_dataflow_graph(graph: DataflowGraph) -> str:
    """One line per actor: operation, operands, consumers; feedback
    arcs flagged with ``(carried)``."""
    lines = [f"dataflow graph {graph.name!r} ({len(graph)} actors)"]
    for actor in graph.actors:
        inputs = []
        for arc in graph.in_arcs(actor.name):
            marker = " (carried)" if arc.is_feedback else ""
            inputs.append(f"{arc.source}{marker}")
        outputs = [arc.target for arc in graph.out_arcs(actor.name)]
        described = actor.label
        lines.append(
            f"  {actor.name}: {described}"
            + (f"  <- {', '.join(inputs)}" if inputs else "")
            + (f"  -> {', '.join(outputs)}" if outputs else "")
        )
    return "\n".join(lines)


def render_petri_net(
    net: PetriNet,
    marking: Optional[Marking] = None,
    durations: Optional[Mapping[str, int]] = None,
) -> str:
    """Transitions with execution times, then places as
    ``producer -(tokens)-> consumer`` rows grouped by annotation."""
    lines = [
        f"petri net {net.name!r}: {len(net.transition_names)} transitions, "
        f"{len(net.place_names)} places"
    ]
    for transition in net.transitions:
        duration = durations.get(transition.name) if durations else None
        suffix = f" (tau={duration})" if duration is not None else ""
        kind = f" [{transition.annotation}]" if transition.annotation else ""
        lines.append(f"  t {transition.name}{kind}{suffix}")
    for place in net.places:
        producers = ",".join(net.input_transitions(place.name)) or "(source)"
        consumers = ",".join(net.output_transitions(place.name)) or "(sink)"
        tokens = marking[place.name] if marking is not None else 0
        dot = "*" * tokens if tokens else ""
        kind = f" [{place.annotation}]" if place.annotation else ""
        lines.append(
            f"  p {place.name}{kind}: {producers} -({dot})-> {consumers}"
        )
    return "\n".join(lines)


def render_behavior_graph(
    behavior: BehaviorGraph,
    frustum: Optional[CyclicFrustum] = None,
    limit: Optional[int] = None,
) -> str:
    """Time-step levels: fired transitions and newly marked places,
    with the frustum's initial/terminal instantaneous states marked as
    in Figure 1(e)."""
    lines = ["behavior graph (time: fired | newly marked)"]
    for step in behavior.steps[: limit if limit is not None else len(behavior.steps)]:
        flags = ""
        if frustum is not None:
            if step.time == frustum.start_time:
                flags = "   <== initial instantaneous state"
            elif step.time == frustum.repeat_time:
                flags = "   <== terminal instantaneous state"
        fired = " ".join(step.fired) if step.fired else "-"
        marked = " ".join(step.newly_marked) if step.newly_marked else "-"
        lines.append(f"  {step.time:4d}: {fired:<40} | {marked}{flags}")
    if frustum is not None and (
        limit is None or frustum.repeat_time < len(behavior.steps)
    ):
        lines.append(
            f"  cyclic frustum: [{frustum.start_time}, {frustum.repeat_time})"
            f" length {frustum.length}"
        )
    return "\n".join(lines)


def render_schedule(schedule: "object") -> str:
    """Figure 1(g)-style listing: prologue rows then the repeating
    kernel with per-instruction iteration offsets."""
    from ..core.schedule import PipelinedSchedule

    assert isinstance(schedule, PipelinedSchedule)
    lines = [
        "software-pipelined schedule: "
        f"II={schedule.initiation_interval}, "
        f"iterations/kernel={schedule.iterations_per_kernel}, "
        f"rate={schedule.rate}"
    ]
    if schedule.prologue:
        lines.append("  prologue:")
        by_time: Dict[int, List[str]] = {}
        for op in schedule.prologue:
            by_time.setdefault(op.time, []).append(
                f"{op.instruction}[{op.iteration}]"
            )
        for time in sorted(by_time):
            lines.append(f"    {time:4d}: " + "  ".join(sorted(by_time[time])))
    lines.append("  kernel (repeats every II cycles; i = kernel instance):")
    for relative, entries in schedule.kernel_rows():
        cells = "  ".join(
            f"{name}[i*{schedule.iterations_per_kernel}+{base}]"
            for name, base in sorted(entries)
        )
        lines.append(f"    +{relative:3d}: {cells}")
    return "\n".join(lines)
