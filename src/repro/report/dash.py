"""The bottleneck-attribution dashboard behind ``repro dash``.

Renders one **self-contained** HTML file — inline CSS, inline SVG, no
external assets, no scripts — answering the question the paper keeps
answering with theorems: *why is this loop's initiation interval what
it is?*

Sections:

* headline stat tiles (cycle time ``Ω(C*)``, rate, II, frustum);
* the steady-state kernel as a Gantt timeline (one row per
  instruction, one bar per firing inside the II window), bottleneck
  transitions — the ones on a critical cycle — marked;
* the slack/utilization table from
  :mod:`repro.core.attribution`: zero-slack rows are exactly the
  transitions on ``C*``; every other row says how much its firing time
  could grow before ``Ω`` (and hence the optimal rate) changes;
* token-occupancy sparklines per place over the frustum window;
* when ledger history exists (``benchmarks/ledger/runs.jsonl``), trend
  charts of cycle time and detection cost across commits;
* when a ledger record carries a ``timing.blame`` summary (``repro
  explain <loop> --ledger``), the causality lane: the observed
  critical path with its structural verdict and a per-transition
  wait-state waterfall (records from another blame schema version
  degrade to a placeholder card).

All numbers are computed by the core layers; this module only formats.
Charts carry native ``<title>`` hover tooltips and every chart has a
table twin, so nothing is gated on color vision or pointer precision.
"""

from __future__ import annotations

import html
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.attribution import AttributionReport
from .tables import format_cell

__all__ = ["render_dash", "TrendPoint"]


# --------------------------------------------------------------------------
# Palette: the validated reference instance (light + selected dark steps).
# Roles only — the chart body never mentions raw hex.
# --------------------------------------------------------------------------
_CSS = """
:root {
  color-scheme: light dark;
}
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
  --series-2: #e8883a;
  --series-3: #7b5cd6;
  --series-4: #2f9e73;
  --series-track: #cde2fb;
  --critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary);
  background: var(--page);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --series-2: #ef9a54;
    --series-3: #9279e0;
    --series-4: #3cb587;
    --series-track: #0d366b;
    --critical: #d03b3b;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .subtitle { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.viz-root .card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px;
  margin-bottom: 16px;
}
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .tile {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 16px;
  min-width: 110px;
}
.viz-root .tile .label { font-size: 12px; color: var(--text-secondary); }
.viz-root .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.viz-root .tile .hint { font-size: 11px; color: var(--text-muted); margin-top: 2px; }
.viz-root table { border-collapse: collapse; font-size: 13px; width: 100%; }
.viz-root th {
  text-align: left; color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--axis); padding: 6px 10px 6px 0;
}
.viz-root td {
  border-bottom: 1px solid var(--grid); padding: 6px 10px 6px 0;
  font-variant-numeric: tabular-nums;
}
.viz-root td.name { font-variant-numeric: normal; }
.viz-root tr.bottleneck td { font-weight: 600; }
.viz-root .badge {
  display: inline-block; font-size: 11px; font-weight: 600;
  color: var(--critical); margin-left: 6px;
}
.viz-root .meter {
  display: inline-block; width: 120px; height: 8px; border-radius: 4px;
  background: var(--series-track); vertical-align: middle; overflow: hidden;
}
.viz-root .meter > span {
  display: block; height: 100%; background: var(--series-1);
  border-radius: 4px 0 0 4px;
}
.viz-root .legend { font-size: 12px; color: var(--text-secondary); margin: 4px 0 8px; }
.viz-root .legend .key {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin: 0 4px 0 12px; vertical-align: baseline;
}
.viz-root .sparkgrid {
  display: grid; grid-template-columns: repeat(auto-fill, minmax(190px, 1fr));
  gap: 8px 16px;
}
.viz-root .spark { font-size: 11px; color: var(--text-secondary); white-space: nowrap; }
.viz-root .spark svg { vertical-align: middle; margin-right: 6px; }
.viz-root .note { font-size: 12px; color: var(--text-muted); }
.viz-root details summary { cursor: pointer; font-size: 12px; color: var(--text-secondary); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _frac(value: Any) -> str:
    return _esc(format_cell(value))


# --------------------------------------------------------------------------
# Charts (inline SVG, roles from the CSS custom properties above)
# --------------------------------------------------------------------------


def _gantt_svg(
    kernel_rows: Sequence[Tuple[str, List[Tuple[int, int]]]],
    period: int,
    durations: Mapping[str, int],
    critical: frozenset,
) -> str:
    """The steady-state kernel as a timeline: one row per instruction,
    one bar per firing at its relative issue cycle."""
    row_h, bar_h, left, top, cell = 26, 16, 84, 8, 48
    max_end = max(period, 1)
    for name, firings in kernel_rows:
        for rel, _base in firings:
            max_end = max(max_end, rel + durations.get(name, 1))
    width = left + max_end * cell + 12
    height = top + row_h * len(kernel_rows) + 26
    plot_bottom = top + row_h * len(kernel_rows)
    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'aria-label="Steady-state kernel timeline">'
    ]
    # recessive cycle gridlines + tick labels
    for cycle in range(max_end + 1):
        x = left + cycle * cell
        parts.append(
            f'<line x1="{x}" y1="{top}" x2="{x}" y2="{plot_bottom}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x}" y="{height - 8}" font-size="11" '
            f'fill="var(--text-muted)" text-anchor="middle">+{cycle}</text>'
        )
    if max_end > period:
        # firings wrap past the II boundary; mark it in the axis ink
        x = left + period * cell
        parts.append(
            f'<line x1="{x}" y1="{top}" x2="{x}" y2="{plot_bottom}" '
            f'stroke="var(--axis)" stroke-width="1" '
            f'stroke-dasharray="3 3"><title>II boundary: firings to the '
            f"right overlap the next kernel instance</title></line>"
        )
    for index, (name, firings) in enumerate(kernel_rows):
        y = top + index * row_h
        mid = y + row_h // 2
        is_critical = name in critical
        label = _esc(name) + (" ●" if is_critical else "")
        parts.append(
            f'<text x="{left - 8}" y="{mid + 4}" font-size="12" '
            f'fill="var(--text-primary)" text-anchor="end">{label}</text>'
        )
        color = "var(--critical)" if is_critical else "var(--series-1)"
        for rel, base in firings:
            bar_w = max(durations.get(name, 1) * cell - 2, 6)
            x = left + rel * cell + 1
            tip = (
                f"{_esc(name)} fires at +{rel} for "
                f"{durations.get(name, 1)} cycle(s), iteration offset {base}"
            )
            parts.append(
                f'<rect x="{x}" y="{mid - bar_h // 2}" width="{bar_w}" '
                f'height="{bar_h}" rx="4" fill="{color}">'
                f"<title>{tip}</title></rect>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _sparkline_svg(series: Sequence[int], tip: str) -> str:
    """A 2px single-series sparkline (token occupancy over the frustum
    window); flat-zero series render as a baseline hairline."""
    width, height, pad = 120, 26, 4
    top = max(max(series), 1)
    n = len(series)
    step = (width - 2 * pad) / max(n - 1, 1)
    points = []
    for i, value in enumerate(series):
        x = pad + i * step
        y = height - pad - (value / top) * (height - 2 * pad)
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" aria-label="{_esc(tip)}">'
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="var(--grid)" stroke-width="1"/>'
        f'<polyline points="{" ".join(points)}" fill="none" '
        f'stroke="var(--series-1)" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round">'
        f"<title>{_esc(tip)}</title></polyline></svg>"
    )


class TrendPoint:
    """One ledger observation for the trend charts."""

    __slots__ = ("label", "value", "tip")

    def __init__(self, label: str, value: float, tip: str = "") -> None:
        self.label = label
        self.value = value
        self.tip = tip or f"{label}: {value}"


def _trend_svg(points: Sequence[TrendPoint], unit: str) -> str:
    """Single-series line chart with ≥8px markers carrying a 2px
    surface ring; x labels are short commit SHAs."""
    width, height = 620, 150
    left, right, top, bottom = 46, 12, 10, 28
    plot_w, plot_h = width - left - right, height - top - bottom
    values = [p.value for p in points]
    low, high = min(values), max(values)
    if high == low:
        high = low + (abs(low) or 1.0)
    span = high - low
    n = len(points)
    step = plot_w / max(n - 1, 1)

    def xy(i: int, v: float) -> Tuple[float, float]:
        return left + i * step, top + plot_h - ((v - low) / span) * plot_h

    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" aria-label="trend ({_esc(unit)})">'
    ]
    for frac_pos, value in ((0.0, low), (0.5, (low + high) / 2), (1.0, high)):
        y = top + plot_h - frac_pos * plot_h
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{width - right}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 6}" y="{y + 4:.1f}" font-size="10" '
            f'fill="var(--text-muted)" text-anchor="end">'
            f"{value:.4g}</text>"
        )
    coords = [xy(i, p.value) for i, p in enumerate(points)]
    polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    parts.append(
        f'<polyline points="{polyline}" fill="none" '
        f'stroke="var(--series-1)" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round"/>'
    )
    label_every = max(1, n // 10)
    for i, (point, (x, y)) in enumerate(zip(points, coords)):
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
            f'fill="var(--series-1)" stroke="var(--surface-1)" '
            f'stroke-width="2"><title>{_esc(point.tip)}</title></circle>'
        )
        if i % label_every == 0:
            parts.append(
                f'<text x="{x:.1f}" y="{height - 8}" font-size="10" '
                f'fill="var(--text-muted)" text-anchor="middle">'
                f"{_esc(point.label)}</text>"
            )
    parts.append("</svg>")
    return "".join(parts)


# --------------------------------------------------------------------------
# Sections
# --------------------------------------------------------------------------


def _tiles_html(attribution: AttributionReport, schedule: Any) -> str:
    tiles = [
        ("Cycle time Ω(C*)", format_cell(attribution.cycle_time),
         "max Ω(C)/M(C) over simple cycles"),
        ("Initiation interval", str(schedule.initiation_interval),
         f"{schedule.iterations_per_kernel} iteration(s) per kernel"),
        ("Rate", format_cell(schedule.rate), "iterations per cycle"),
        ("Frustum", str(attribution.period),
         "steady-state period (cycles)"),
        ("Bottlenecks", str(len(attribution.bottlenecks())),
         f"of {len(attribution.transitions)} transitions on C*"),
    ]
    cells = "".join(
        '<div class="tile">'
        f'<div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div>'
        f'<div class="hint">{_esc(hint)}</div></div>'
        for label, value, hint in tiles
    )
    return f'<div class="tiles">{cells}</div>'


def _slack_table_html(attribution: AttributionReport) -> str:
    rows = []
    for entry in attribution.transitions:
        badge = (
            '<span class="badge">● on C*</span>'
            if entry.is_bottleneck
            else ""
        )
        pct = float(entry.utilization) * 100.0
        slack_text = (
            "0 (critical)"
            if entry.is_bottleneck
            else f"+{format_cell(entry.slack)} cycles"
        )
        cycle = " → ".join(entry.binding_cycle)
        rows.append(
            f'<tr class="{"bottleneck" if entry.is_bottleneck else ""}">'
            f'<td class="name">{_esc(entry.transition)}{badge}</td>'
            f"<td>{entry.duration}</td>"
            f"<td>{entry.firings}</td>"
            f'<td><span class="meter"><span style="width:{pct:.0f}%">'
            f"</span></span> {_frac(entry.utilization)}</td>"
            f"<td>{_esc(slack_text)}</td>"
            f'<td class="name">{_esc(cycle)}</td></tr>'
        )
    return (
        "<table><thead><tr>"
        "<th>transition</th><th>τ</th><th>firings / period</th>"
        "<th>utilization</th><th>slack before Ω changes</th>"
        "<th>binding cycle</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _occupancy_html(occupancy: Mapping[str, Sequence[int]]) -> str:
    cells = []
    for place, series in occupancy.items():
        peak = max(series) if series else 0
        tip = (
            f"{place}: tokens per cycle over the frustum "
            f"{list(series)} (peak {peak})"
        )
        cells.append(
            '<div class="spark">'
            + _sparkline_svg(list(series), tip)
            + f"{_esc(place)} <span>(peak {peak})</span></div>"
        )
    return f'<div class="sparkgrid">{"".join(cells)}</div>'


def _history_html(history: Sequence[Mapping[str, Any]]) -> str:
    """Trend charts from ledger records (same loop, append order)."""
    cycle_points: List[TrendPoint] = []
    detect_points: List[TrendPoint] = []
    for record in history:
        sha = str(record.get("git_sha", "?"))[:7]
        payload = record.get("payload", {})
        cycle = payload.get("cycle_time")
        if isinstance(cycle, str) and "/" in cycle:
            try:
                num, den = cycle.split("/")
                cycle = float(Fraction(int(num), int(den)))
            except ValueError:
                cycle = None
        if isinstance(cycle, (int, float)):
            cycle_points.append(
                TrendPoint(sha, float(cycle), f"{sha}: cycle time {cycle}")
            )
        phases = record.get("timing", {}).get("phase_wall_clock", {})
        detect = phases.get("phase.detect-frustum") or phases.get(
            "petrinet.detect_frustum"
        )
        if isinstance(detect, Mapping) and isinstance(
            detect.get("total"), (int, float)
        ):
            seconds = float(detect["total"])
            detect_points.append(
                TrendPoint(sha, seconds, f"{sha}: detection {seconds:.6f}s")
            )
    if len(cycle_points) < 2 and len(detect_points) < 2:
        return (
            '<p class="note">Not enough ledger history for trends yet — '
            "append runs with <code>repro schedule &lt;loop&gt; "
            "--ledger</code> or <code>make bench</code>.</p>"
        )
    sections = []
    if len(cycle_points) >= 2:
        sections.append("<h2>Cycle time across commits</h2>")
        sections.append(_trend_svg(cycle_points, "cycles"))
        sections.append(_trend_table(cycle_points, "cycle time"))
    if len(detect_points) >= 2:
        sections.append("<h2>Frustum-detection cost across commits</h2>")
        sections.append(_trend_svg(detect_points, "seconds"))
        sections.append(_trend_table(detect_points, "detection seconds"))
    return "".join(sections)


def _sweep_html(sweep_history: Sequence[Mapping[str, Any]]) -> str:
    """Worker-lane utilization of the latest traced sweep record.

    Reads the volatile ``timing.spans`` summary that ``repro sweep
    --ledger`` appends: busy seconds per worker lane, the critical
    (wall-clock-bounding) lane, and per-phase p50/p95.  Percentiles
    computed from an overflowed sample window are marked ``~``.
    """
    latest: Optional[Mapping[str, Any]] = None
    for record in sweep_history:
        spans = record.get("timing", {}).get("spans")
        if isinstance(spans, Mapping) and spans.get("lanes"):
            latest = record
    if latest is None:
        return ""
    spans = latest["timing"]["spans"]
    sha = str(latest.get("git_sha", "?"))[:7]
    lanes = spans.get("lanes", {})
    critical = spans.get("critical_path") or {}
    critical_worker = critical.get("worker")
    lane_rows = []
    for worker in sorted(lanes):
        lane = lanes[worker]
        marker = " ●" if worker == critical_worker else ""
        lane_rows.append(
            f'<tr><td class="name">{_esc(worker)}{marker}</td>'
            f'<td>{lane.get("items", 0)}</td>'
            f'<td>{float(lane.get("busy_seconds", 0.0)):.3f}</td></tr>'
        )
    phase_rows = []
    for name, stats in sorted((spans.get("phases") or {}).items()):
        approx = "" if stats.get("exact_percentiles", True) else "~"
        p50 = stats.get("p50")
        p95 = stats.get("p95")
        phase_rows.append(
            f'<tr><td class="name">{_esc(name)}</td>'
            f'<td>{stats.get("count", 0)}</td>'
            f"<td>{approx}{p50:.6f}</td><td>{approx}{p95:.6f}</td></tr>"
            if isinstance(p50, (int, float)) and isinstance(p95, (int, float))
            else f'<tr><td class="name">{_esc(name)}</td>'
            f'<td>{stats.get("count", 0)}</td><td>—</td><td>—</td></tr>'
        )
    sections = [
        f"<h2>Sweep lanes — {_esc(str(latest.get('name', 'sweep')))} "
        f"at {_esc(sha)}</h2>",
        '<p class="note">● marks the critical lane: the busiest worker, '
        "whose chain of item compiles bounds the sweep’s wall clock. "
        "A ~ prefix marks percentiles estimated from a bounded sample "
        "window.</p>",
        "<table><thead><tr><th>lane</th><th>items</th>"
        "<th>busy s</th></tr></thead>"
        f'<tbody>{"".join(lane_rows)}</tbody></table>',
    ]
    if phase_rows:
        sections.append(
            "<details><summary>per-phase percentiles</summary>"
            "<table><thead><tr><th>phase</th><th>n</th><th>p50 s</th>"
            "<th>p95 s</th></tr></thead>"
            f'<tbody>{"".join(phase_rows)}</tbody></table></details>'
        )
    return "".join(sections)


def _stages_html(
    history: Sequence[Mapping[str, Any]],
    sweep_history: Sequence[Mapping[str, Any]] = (),
) -> str:
    """Per-stage timing attribution from the latest ledger record that
    carries phase wall clocks, mapped back to the staged compiler's
    pass names, plus the artifact-cache resolution totals of the
    latest sweep record that went through the per-stage store."""
    from ..compiler.stages import STAGES

    stage_of_phase = {
        stage.phase: stage.name for stage in STAGES.values() if stage.phase
    }
    latest: Optional[Mapping[str, Any]] = None
    for record in history:
        phases = record.get("timing", {}).get("phase_wall_clock", {})
        if any(name.startswith("phase.") for name in phases):
            latest = record
    sections: List[str] = []
    if latest is not None:
        sha = str(latest.get("git_sha", "?"))[:7]
        phases = latest["timing"]["phase_wall_clock"]
        rows = []
        for name in sorted(phases):
            if not name.startswith("phase."):
                continue
            stats = phases[name]
            if not isinstance(stats, Mapping):
                continue
            stage = stage_of_phase.get(name[len("phase."):], "—")
            total = stats.get("total")
            rows.append(
                f'<tr><td class="name">{_esc(stage)}</td>'
                f"<td>{_esc(name[len('phase.'):])}</td>"
                f'<td>{stats.get("count", 0)}</td>'
                f"<td>{float(total):.6f}</td></tr>"
                if isinstance(total, (int, float))
                else f'<tr><td class="name">{_esc(stage)}</td>'
                f"<td>{_esc(name[len('phase.'):])}</td>"
                f'<td>{stats.get("count", 0)}</td><td>—</td></tr>'
            )
        if rows:
            sections.append(
                f"<h2>Compiler stages at {_esc(sha)}</h2>"
                '<p class="note">Wall clock per compiler pass from the '
                "newest ledger run; the stage column names the pass in "
                "the staged compiler core (<code>repro.compiler</code>), "
                "the phase column its instrumentation timer.</p>"
                "<table><thead><tr><th>stage</th><th>phase</th>"
                "<th>calls</th><th>total s</th></tr></thead>"
                f'<tbody>{"".join(rows)}</tbody></table>'
            )
    latest_cache: Optional[Mapping[str, Any]] = None
    latest_cache_sha = "?"
    for record in sweep_history:
        stage_cache = (
            record.get("timing", {}).get("metrics", {}).get("stage_cache")
        )
        if isinstance(stage_cache, Mapping):
            latest_cache = stage_cache
            latest_cache_sha = str(record.get("git_sha", "?"))[:7]
    if latest_cache is not None:
        sections.append(
            f"<h3>Artifact cache (latest sweep, {_esc(latest_cache_sha)})"
            "</h3>"
            "<table><thead><tr><th>hits</th><th>misses</th>"
            "<th>hydrations</th></tr></thead><tbody><tr>"
            f'<td>{latest_cache.get("hit", 0)}</td>'
            f'<td>{latest_cache.get("miss", 0)}</td>'
            f'<td>{latest_cache.get("hydrate", 0)}</td>'
            "</tr></tbody></table>"
        )
    return "".join(sections)


#: Wait-state kinds in waterfall stacking order, with their palette
#: role and legend label.  Must track
#: :data:`repro.obs.causality.WAIT_KINDS` plus executing/idle.
_WAIT_SEGMENTS: Tuple[Tuple[str, str, str], ...] = (
    ("executing", "var(--series-1)", "executing"),
    ("data", "var(--series-2)", "data wait"),
    ("feedback", "var(--series-3)", "feedback wait"),
    ("ack", "var(--series-4)", "ack wait"),
    ("resource", "var(--critical)", "resource wait"),
    ("self", "var(--axis)", "re-fire wait"),
    ("idle", "var(--series-track)", "idle"),
)


def _waterfall_svg(
    wait_states: Mapping[str, Mapping[str, Any]], horizon: int
) -> str:
    """Stacked per-transition waterfall of the wait-state
    decomposition: one row per transition, segments in
    :data:`_WAIT_SEGMENTS` order, widths proportional to cycles over
    the horizon (they tile it exactly)."""
    row_h, bar_h, left, top = 24, 14, 150, 6
    plot_w = 420
    names = sorted(wait_states)
    width = left + plot_w + 12
    height = top + row_h * len(names) + 8
    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'aria-label="Wait-state waterfall per transition">'
    ]
    scale = plot_w / max(horizon, 1)
    for index, name in enumerate(names):
        profile = wait_states[name]
        waits = profile.get("waits") or {}
        y = top + index * row_h
        mid = y + row_h // 2
        parts.append(
            f'<text x="{left - 8}" y="{mid + 4}" font-size="12" '
            f'fill="var(--text-primary)" text-anchor="end">'
            f"{_esc(name)}</text>"
        )
        x = float(left)
        for key, color, label in _WAIT_SEGMENTS:
            cycles = (
                profile.get(key, 0) if key in ("executing", "idle")
                else waits.get(key, 0)
            )
            if not isinstance(cycles, (int, float)) or cycles <= 0:
                continue
            seg_w = cycles * scale
            tip = f"{_esc(name)}: {label} {cycles} / {horizon} cycles"
            parts.append(
                f'<rect x="{x:.1f}" y="{mid - bar_h // 2}" '
                f'width="{max(seg_w, 1):.1f}" height="{bar_h}" '
                f'fill="{color}"><title>{tip}</title></rect>'
            )
            x += seg_w
    parts.append("</svg>")
    return "".join(parts)


def _causality_html(history: Sequence[Mapping[str, Any]]) -> str:
    """The causality lane: observed critical path and wait-state
    waterfall from the latest ledger record carrying a ``timing.blame``
    summary (``repro explain <loop> --ledger``).

    Returns the empty string when no record has blame data; renders a
    placeholder card when the newest blame summary predates (or
    postdates) the schema this build understands, instead of guessing
    at unknown fields.
    """
    from ..core.blame import BLAME_SCHEMA_VERSION

    latest: Optional[Mapping[str, Any]] = None
    latest_sha = "?"
    for record in history:
        blame = record.get("timing", {}).get("blame")
        if isinstance(blame, Mapping):
            latest = blame
            latest_sha = str(record.get("git_sha", "?"))[:7]
    if latest is None:
        return ""
    version = latest.get("schema_version")
    if version != BLAME_SCHEMA_VERSION:
        return (
            "<h2>Causality</h2>"
            '<p class="note">The newest blame summary in the ledger uses '
            f"schema version {_esc(version)}, but this build renders "
            f"version {BLAME_SCHEMA_VERSION} — re-run <code>repro explain "
            "&lt;loop&gt; --ledger</code> to refresh it.</p>"
        )
    horizon = latest.get("horizon")
    wait_states = latest.get("wait_states")
    observed = latest.get("observed_cycle")
    sections = [f"<h2>Causality — observed critical path at {_esc(latest_sha)}</h2>"]
    if isinstance(observed, Mapping) and observed.get("transitions"):
        path = " → ".join(str(t) for t in observed["transitions"])
        verdict = (
            "matches the Howard witness C*"
            if latest.get("matches_howard")
            else "matches a structural critical cycle"
            if latest.get("observed_match")
            else "no structural match (resource-shaped or transient)"
        )
        sections.append(
            f'<p class="note">{_esc(path)} — per-iteration length '
            f'{_esc(observed.get("cycle_time", "?"))} ({_esc(verdict)}; '
            f'model {_esc(latest.get("model", "?"))}).</p>'
        )
    else:
        sections.append(
            '<p class="note">The blame walk drained into the transient — '
            "re-run <code>repro explain</code> with more "
            "<code>--periods</code>.</p>"
        )
    if isinstance(wait_states, Mapping) and wait_states and isinstance(
        horizon, int
    ):
        legend = "".join(
            f'<span class="key" style="background:{color}"></span>{label}'
            for _key, color, label in _WAIT_SEGMENTS
        )
        sections.append(f'<div class="legend">{legend}</div>')
        sections.append(_waterfall_svg(wait_states, horizon))
        rows = []
        for name in sorted(wait_states):
            profile = wait_states[name]
            waits = profile.get("waits") or {}
            cells = "".join(
                f"<td>{_esc(profile.get(key, 0) if key in ('executing', 'idle') else waits.get(key, 0))}</td>"
                for key, _c, _l in _WAIT_SEGMENTS
            )
            rows.append(
                f'<tr><td class="name">{_esc(name)}</td>'
                f'<td>{_esc(profile.get("firings", 0))}</td>{cells}</tr>'
            )
        headers = "".join(f"<th>{label}</th>" for _k, _c, label in _WAIT_SEGMENTS)
        sections.append(
            "<details><summary>table view — wait states "
            f"(cycles over horizon {_esc(horizon)})</summary>"
            f"<table><thead><tr><th>transition</th><th>fired</th>{headers}"
            f'</tr></thead><tbody>{"".join(rows)}</tbody></table></details>'
        )
    return "".join(sections)


def _trend_table(points: Sequence[TrendPoint], label: str) -> str:
    rows = "".join(
        f'<tr><td class="name">{_esc(p.label)}</td><td>{p.value:g}</td></tr>'
        for p in points
    )
    return (
        f"<details><summary>table view — {_esc(label)}</summary>"
        f"<table><thead><tr><th>commit</th><th>{_esc(label)}</th></tr>"
        f"</thead><tbody>{rows}</tbody></table></details>"
    )


def render_dash(
    loop_name: str,
    attribution: AttributionReport,
    schedule: Any,
    durations: Mapping[str, int],
    occupancy: Mapping[str, Sequence[int]],
    history: Sequence[Mapping[str, Any]] = (),
    sweep_history: Sequence[Mapping[str, Any]] = (),
    git_sha: str = "unknown",
) -> str:
    """Assemble the complete self-contained HTML document."""
    kernel_by_name: Dict[str, List[Tuple[int, int]]] = {}
    for rel, name, base in sorted(schedule.kernel):
        kernel_by_name.setdefault(name, []).append((rel, base))
    kernel_rows = sorted(kernel_by_name.items())

    has_critical = bool(attribution.critical_transitions)
    has_noncritical = len(attribution.critical_transitions) < len(
        attribution.transitions
    )
    legend = ""
    if has_critical and has_noncritical:
        legend = (
            '<div class="legend">'
            '<span class="key" style="background:var(--critical)"></span>'
            "● on a critical cycle (zero slack)"
            '<span class="key" style="background:var(--series-1)"></span>'
            "off the critical cycle</div>"
        )
    elif has_critical:
        legend = (
            '<div class="legend">'
            '<span class="key" style="background:var(--critical)"></span>'
            "● every transition lies on a critical cycle "
            "(all zero slack)</div>"
        )

    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        f"<title>repro dash — {_esc(loop_name)}</title>",
        f"<style>{_CSS}</style></head>",
        '<body class="viz-root">',
        f"<h1>repro dash — loop {_esc(loop_name)}</h1>",
        f'<p class="subtitle">steady-state attribution at commit '
        f"{_esc(git_sha[:12])} · p = Ω(C*) = "
        f"{_frac(attribution.cycle_time)}</p>",
        _tiles_html(attribution, schedule),
        '<div class="card"><h2 style="margin-top:0">Steady-state kernel '
        f"(II = {schedule.initiation_interval})</h2>",
        legend,
        _gantt_svg(
            kernel_rows,
            schedule.initiation_interval,
            durations,
            attribution.critical_transitions,
        ),
        "</div>",
        '<div class="card"><h2 style="margin-top:0">Bottleneck attribution'
        "</h2>"
        '<p class="note">Slack: how much a transition’s firing time '
        "could grow before the cycle time Ω(C*) — and with it the "
        "optimal rate — changes. Zero-slack transitions are exactly "
        "the ones on a critical cycle.</p>",
        _slack_table_html(attribution),
        "</div>",
        '<div class="card"><h2 style="margin-top:0">Token occupancy per '
        "place (frustum window)</h2>",
        _occupancy_html(occupancy),
        "</div>",
        '<div class="card">',
        _history_html(history),
        "</div>",
    ]
    causality_section = _causality_html(history)
    if causality_section:
        parts.append('<div class="card">' + causality_section + "</div>")
    sweep_section = _sweep_html(sweep_history)
    if sweep_section:
        parts.append('<div class="card">' + sweep_section + "</div>")
    stages_section = _stages_html(history, sweep_history)
    if stages_section:
        parts.append('<div class="card">' + stages_section + "</div>")
    parts.append("</body></html>")
    return "\n".join(parts)
