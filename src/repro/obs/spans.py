"""Cross-process span tracing for the batch subsystem.

PR 2 gave single simulations a timeline (:mod:`repro.obs.trace`); this
module gives *sweeps* one.  A :class:`Span` is one timed region of work
— an item compile, a cache lookup, a pipeline phase — carrying the
usual distributed-tracing identity triple (``trace_id`` shared by the
whole sweep, its own ``span_id``, and the ``parent_id`` that nests it).
Spans form per-process trees; :mod:`repro.obs.trace_merge` stitches the
trees from every sweep worker into one Chrome/Perfetto trace with one
lane per worker.

Clock model
-----------

Wall clocks are shared across processes on one host but coarse;
``perf_counter`` is precise but has a per-process arbitrary epoch.  A
:class:`Tracer` therefore anchors itself once at construction —
``wall_anchor = time.time()`` paired with ``perf_anchor =
perf_counter()`` — and stamps every span with ``wall_anchor +
(perf_counter() - perf_anchor)``: a wall-aligned timestamp with
``perf_counter`` precision.  The :class:`TraceContext` handed to a
worker carries the parent's ``handshake`` wall time from just before
dispatch; a worker whose clock reads *earlier* than the handshake it
received is causally impossible, so the merger shifts that worker's
spans forward by the difference (clock-skew normalization).

Zero-overhead contract
----------------------

Like :data:`repro.obs.NULL_INSTRUMENTATION` and the disabled default
metrics registry, :data:`NULL_TRACER` is falsy and its :meth:`~Tracer.
span` returns a shared reusable no-op context manager — untraced sweeps
pay one attribute check per would-be span and allocate nothing.

Durability
----------

Workers stream finished spans through :class:`SpanShardWriter` — one
append-only JSONL file per worker process, header line first (clock
anchors, worker identity), one span per line, flushed as each span
ends.  A worker killed mid-sweep loses at most the span in flight;
:func:`read_shard` tolerates the torn final line.
"""

from __future__ import annotations

import os
import json
import pathlib
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanShardWriter",
    "read_shard",
    "shard_paths",
    "new_id",
]

_PathLike = Union[str, pathlib.Path]

#: File-name prefix of span shards inside a shard directory.
SHARD_PREFIX = "spans-"


def new_id() -> str:
    """A fresh 64-bit hex identifier (trace or span)."""
    return os.urandom(8).hex()


@dataclass
class Span:
    """One timed region of work inside a trace.

    ``start`` is on the emitting tracer's wall-aligned clock (seconds,
    see the module docstring); ``duration`` is in seconds.  ``worker``
    labels the lane (process) the span ran in.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float
    duration: float = 0.0
    worker: str = "main"
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "worker": self.worker,
            "status": self.status,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            start=float(data["start"]),
            duration=float(data.get("duration", 0.0)),
            worker=str(data.get("worker", "main")),
            status=str(data.get("status", "ok")),
            attributes=dict(data.get("attributes") or {}),
        )


@dataclass(frozen=True)
class TraceContext:
    """The propagated trace identity: which trace a child joins, which
    span its roots hang under, and the parent's wall clock at dispatch
    time (the skew-normalization handshake)."""

    trace_id: str
    parent_id: Optional[str]
    handshake: float

    def to_tuple(self) -> Tuple[str, Optional[str], float]:
        """Plain-data form for pickling into pool initializers."""
        return (self.trace_id, self.parent_id, self.handshake)

    @classmethod
    def from_tuple(
        cls, data: Tuple[str, Optional[str], float]
    ) -> "TraceContext":
        return cls(trace_id=data[0], parent_id=data[1], handshake=data[2])


class _ActiveSpan:
    """Context manager for one open span (kept tiny: two attributes)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self.span.span_id)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        tracer._stack.pop()
        self.span.duration = tracer.now() - self.span.start
        if exc_type is not None:
            self.span.status = "error"
        tracer._finish(self.span)
        return None


class Tracer:
    """Produces spans on one process's wall-aligned clock.

    A root tracer (``context=None``) mints a fresh ``trace_id``; a
    child tracer joins the trace described by its :class:`TraceContext`
    and parents its top-level spans under ``context.parent_id``.
    Finished spans accumulate in :attr:`spans` and are forwarded to
    ``writer`` (a callable, e.g. :meth:`SpanShardWriter.write`) when
    one is attached.
    """

    enabled = True

    def __init__(
        self,
        context: Optional[TraceContext] = None,
        worker: str = "main",
        writer: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self.worker = worker
        self.writer = writer
        self.wall_anchor = time.time()
        self.perf_anchor = perf_counter()
        if context is None:
            self.trace_id = new_id()
            self.root_parent: Optional[str] = None
            self.handshake = self.wall_anchor
        else:
            self.trace_id = context.trace_id
            self.root_parent = context.parent_id
            self.handshake = context.handshake
        self.spans: List[Span] = []
        self._stack: List[str] = []

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        """Wall-aligned, ``perf_counter``-precise current time."""
        return self.wall_anchor + (perf_counter() - self.perf_anchor)

    # -- spans ----------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a span as a context manager::

            with tracer.span("item:chain-8", index=3) as sp:
                ...                       # sp.attributes may be updated

        The span closes (duration stamped, status ``"error"`` if the
        body raised) on exit and is recorded/streamed then.
        """
        parent = self._stack[-1] if self._stack else self.root_parent
        return _ActiveSpan(
            self,
            Span(
                name=name,
                trace_id=self.trace_id,
                span_id=new_id(),
                parent_id=parent,
                start=self.now(),
                worker=self.worker,
                attributes=attributes,
            ),
        )

    def record_completed(
        self, name: str, duration: float, **attributes: Any
    ) -> Span:
        """Record a span that already happened (e.g. converted from a
        :class:`~repro.obs.events.PhaseTimer`, whose duration is only
        known at phase end): it ends *now* and started ``duration``
        seconds ago, parented under the currently open span."""
        now = self.now()
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=self._stack[-1] if self._stack else self.root_parent,
            start=now - duration,
            duration=duration,
            worker=self.worker,
            attributes=attributes,
        )
        self._finish(span)
        return span

    def _finish(self, span: Span) -> None:
        self.spans.append(span)
        if self.writer is not None:
            self.writer(span)

    def make_context(self, parent: Optional[Span] = None) -> TraceContext:
        """The context to hand a child process: current trace, current
        (or given) span as parent, and a fresh handshake timestamp."""
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
        else:
            parent_id = self._stack[-1] if self._stack else self.root_parent
        return TraceContext(
            trace_id=self.trace_id, parent_id=parent_id, handshake=time.time()
        )


class _NullSpanContext:
    """Shared reusable no-op ``with`` target (never records anything)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """The falsy do-nothing tracer: ``span()`` hands back one shared
    no-op context (yielding ``None`` — callers that mutate the yielded
    span must guard with ``if tracer:``), so untraced code pays a
    single attribute check per would-be span."""

    enabled = False

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN_CONTEXT

    def record_completed(self, name, duration, **attributes):  # type: ignore[override]
        return None


#: Shared no-op used wherever span tracing was not requested.
NULL_TRACER = NullTracer()


class SpanShardWriter:
    """Append-only JSONL span shard for one worker process.

    The first line is a header carrying the worker's identity and clock
    anchors (everything :mod:`repro.obs.trace_merge` needs to place the
    shard's spans on the parent's timeline); each subsequent line is one
    finished span.  Every line is flushed as written, so a worker killed
    mid-sweep leaves a shard that is valid up to (at worst) a torn final
    line — which :func:`read_shard` tolerates.
    """

    def __init__(self, path: _PathLike, tracer: Tracer) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a")
        if self._handle.tell() == 0:
            header = {
                "shard": tracer.worker,
                "trace_id": tracer.trace_id,
                "pid": os.getpid(),
                "handshake": tracer.handshake,
                "wall_anchor": tracer.wall_anchor,
            }
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
            self._handle.flush()

    def write(self, span: Span) -> None:
        self._handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        try:
            self._handle.close()
        except ValueError:  # pragma: no cover - already closed
            pass


def shard_paths(directory: _PathLike) -> List[pathlib.Path]:
    """Every span shard under ``directory``, in deterministic order."""
    base = pathlib.Path(directory)
    if not base.is_dir():
        return []
    return sorted(base.glob(f"{SHARD_PREFIX}*.jsonl"))


def read_shard(
    path: _PathLike,
) -> Tuple[Dict[str, Any], List[Span]]:
    """Load one span shard: ``(header, spans)``.

    Tolerates a torn final line (the worker was killed mid-write) by
    dropping it; a shard whose *header* is unreadable yields an empty
    default header so one bad shard cannot sink a merge.
    """
    target = pathlib.Path(path)
    header: Dict[str, Any] = {}
    spans: List[Span] = []
    lines = target.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            # Only the final line may legitimately be torn; anything
            # else is still skipped (merge must survive a bad shard)
            # but only the tail is the expected crash signature.
            continue
        if index == 0 and "name" not in data:
            header = data
        else:
            try:
                spans.append(Span.from_dict(data))
            except (KeyError, TypeError, ValueError):
                continue
    if not header:
        header = {"shard": target.stem, "handshake": None, "wall_anchor": None}
    return header, spans
