"""Counters, histograms and wall-clock timers for the repro stack.

The registry is deliberately tiny: the hot paths of this project
(frustum detection over `O(n^3)`+ step loops, reachability,
LP-based rate analysis) cannot afford a metrics framework, so every
primitive here is a plain attribute update and the module-level
default registry starts **disabled** — a decorated function costs one
attribute check until somebody opts in (the CLI ``--profile`` flag,
the benchmark harness, or a test).

Primitives
----------

``Counter``
    monotonically increasing integer (``inc``).
``Gauge``
    a value that can go up and down (``set``/``inc``/``dec``) — worker
    pool width, in-flight sweep items, live hit rates.
``Histogram``
    running count/total/min/max over observed samples (``observe``);
    good enough for step counts and queue depths without keeping the
    samples.
``MetricsRegistry``
    named counters, gauges, histograms and timers (timers are
    histograms whose samples are seconds), with ``dump()``/
    ``to_json()`` snapshots and ``reset()``.
``timed`` / ``time_block``
    decorator / context manager recording ``perf_counter`` durations
    into a registry timer.

Every primitive is safe to update from multiple threads: mutations are
guarded by a per-metric lock (a handful of nanoseconds — far below the
cost of the work being measured), so concurrent ``inc``/``observe``
calls never lose updates and totals stay exact.
"""

from __future__ import annotations

import functools
import json
import math
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "timed",
    "time_block",
]


class Counter:
    """A monotonically increasing integer metric (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def dump(self) -> int:
        return self.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can move in both directions (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def dump(self) -> float:
        return self.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Running summary statistics over observed samples.

    Keeps count/total/min/max plus a bounded window of the raw samples
    (the first :data:`Histogram.MAX_SAMPLES` observations) so the
    ledger and dashboard can ask for percentiles.  Phase timers and
    queue-depth histograms observe far fewer samples than the cap, so
    in practice percentiles are exact; a histogram that overflows the
    window reports percentiles over the retained prefix.
    """

    #: Raw samples retained for :meth:`percentile`; beyond this only
    #: the running summary is updated.
    MAX_SAMPLES = 8192

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: list = []

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < Histogram.MAX_SAMPLES:
                self._samples.append(value)

    @property
    def exact_percentiles(self) -> bool:
        """``True`` while every observation is still in the retained
        window; ``False`` once the window overflowed (percentiles then
        describe only the first :data:`MAX_SAMPLES` observations and
        reporters should mark them as approximate, e.g. ``~p95``)."""
        return self.count == len(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the retained samples.

        ``q`` is in ``[0, 100]``.  Returns ``None`` for an empty
        histogram (there is no sample to report — callers render a
        dash, they don't invent a zero).  A single sample is every
        percentile of itself; duplicate values collapse naturally
        because nearest-rank picks an actual observation, never an
        interpolation between two.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if q == 0:
            return ordered[0]
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[rank - 1]

    def dump(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "exact_percentiles": self.exact_percentiles,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}, n={self.count}, total={self.total})"


class MetricsRegistry:
    """Named counters, histograms and timers with snapshot/reset.

    ``enabled`` gates the :func:`timed` decorator and
    :func:`time_block`; direct calls to ``counter()``/``histogram()``/
    ``timer()`` always work (callers who fetched a metric explicitly
    asked for it).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Histogram] = {}

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every registered metric (names and values)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._timers.clear()

    # -- access (create on first use) -----------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def timer(self, name: str) -> Histogram:
        """A histogram whose samples are wall-clock seconds."""
        with self._lock:
            metric = self._timers.get(name)
            if metric is None:
                metric = self._timers[name] = Histogram(name)
            return metric

    def record_time(self, name: str, seconds: float) -> None:
        self.timer(name).observe(seconds)

    # -- snapshots ------------------------------------------------------
    def dump(self) -> Dict[str, Any]:
        """Plain-dict snapshot of every metric, JSON-ready."""
        return {
            "counters": {n: c.dump() for n, c in sorted(self._counters.items())},
            "gauges": {n: g.dump() for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.dump() for n, h in sorted(self._histograms.items())
            },
            "timers": {n: t.dump() for n, t in sorted(self._timers.items())},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.dump(), indent=indent, sort_keys=True)


#: Process-wide registry used by :func:`timed` when no registry is
#: given.  Disabled by default so instrumented library functions cost a
#: single attribute check unless profiling was requested.
_DEFAULT_REGISTRY = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    """The process-wide registry behind ``repro --profile`` and the
    benchmark telemetry."""
    return _DEFAULT_REGISTRY


def timed(
    name: str, registry: Optional[MetricsRegistry] = None
) -> Callable[[Callable], Callable]:
    """Decorator: record the wrapped function's wall-clock time under
    ``name`` in ``registry`` (default: the process-wide registry).

    When the registry is disabled the wrapped call pays one attribute
    check and nothing else.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            reg = registry if registry is not None else _DEFAULT_REGISTRY
            if not reg.enabled:
                return fn(*args, **kwargs)
            start = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                reg.record_time(name, perf_counter() - start)

        return wrapper

    return decorate


@contextmanager
def time_block(
    name: str, registry: Optional[MetricsRegistry] = None
) -> Iterator[None]:
    """Context-manager form of :func:`timed`."""
    reg = registry if registry is not None else _DEFAULT_REGISTRY
    if not reg.enabled:
        yield
        return
    start = perf_counter()
    try:
        yield
    finally:
        reg.record_time(name, perf_counter() - start)
