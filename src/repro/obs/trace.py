"""Trace sinks: JSONL and Chrome/Perfetto trace-event output.

A simulation traced through :class:`ChromeTraceSink` renders, in
``chrome://tracing`` or https://ui.perfetto.dev, as one track per
transition with one slice per firing whose length is the firing's
execution time — effectively the paper's behavior graph (Figure 1(e))
drawn by a trace viewer for free.

Conventions
-----------

* Logical simulator cycles map 1:1 to trace microseconds (``ts``/
  ``dur`` are numerically equal to cycle counts), so slice durations
  read directly as execution times.
* Every transition gets its own ``tid`` (named via ``thread_name``
  metadata), all under ``pid`` 0 ("simulation").
* :class:`~repro.obs.events.FrustumDetected` becomes a global instant
  event plus explicit ``frustum`` begin/end marks on a dedicated
  track, so the cyclic frustum's span is visible in the timeline.
* :class:`~repro.obs.events.PhaseTimer` events are wall-clock, not
  simulation-clock, so the Chrome sink records them only as metadata
  under ``otherData``.

:class:`JsonlTraceSink` is the lossless form: every event, one JSON
object per line, in emission order — the machine-readable behavior
graph used by the golden-trace tests and any downstream tooling.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, IO, List, Optional, Union

from .events import (
    Event,
    EventSink,
    FiringCompleted,
    FiringStarted,
    FrustumDetected,
    PhaseTimer,
    StateSnapshot,
)

__all__ = ["JsonlTraceSink", "ChromeTraceSink"]

PathOrFile = Union[str, "io.TextIOBase", IO[str]]


def _open(target: PathOrFile) -> tuple:
    """Return ``(handle, owns_handle)`` for a path or file-like."""
    if isinstance(target, str):
        return open(target, "w"), True
    return target, False


class JsonlTraceSink(EventSink):
    """One JSON object per event per line, written as events arrive.

    ``target`` may be a path or an open text handle (handles are left
    open on :meth:`close` so callers can wrap ``StringIO``).
    """

    def __init__(self, target: PathOrFile) -> None:
        self._handle, self._owns = _open(target)
        self.events_written = 0

    def emit(self, event: Event) -> None:
        json.dump(event.to_dict(), self._handle, sort_keys=True)
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        self._handle.flush()
        if self._owns:
            self._handle.close()


class ChromeTraceSink(EventSink):
    """Chrome trace-event (JSON object format) sink.

    Buffers trace events and writes the final ``{"traceEvents": [...]}``
    document on :meth:`close`.  Complete (``ph: "X"``) slices are
    emitted at :class:`FiringStarted` time — the duration is already
    known then, Assumption A.6.1 guarantees slices on one track never
    overlap, and completions need no separate slice.
    """

    #: pid used for all simulation tracks.
    PID = 0
    #: tid reserved for frustum span marks; transitions start above it.
    FRUSTUM_TID = 0

    def __init__(self, target: PathOrFile, *, process_name: str = "simulation") -> None:
        self._target = target
        self._events: List[Dict[str, Any]] = []
        self._tids: Dict[str, int] = {}
        self._other: Dict[str, Any] = {}
        self._closed = False
        self._meta(
            "process_name", tid=self.FRUSTUM_TID, args={"name": process_name}
        )
        self._meta(
            "thread_name", tid=self.FRUSTUM_TID, args={"name": "(frustum)"}
        )

    # -- helpers --------------------------------------------------------
    def _meta(self, name: str, tid: int, args: Dict[str, Any]) -> None:
        self._events.append(
            {"name": name, "ph": "M", "pid": self.PID, "tid": tid, "args": args}
        )

    def _tid_of(self, transition: str) -> int:
        tid = self._tids.get(transition)
        if tid is None:
            tid = self._tids[transition] = len(self._tids) + 1
            self._meta("thread_name", tid=tid, args={"name": transition})
        return tid

    # -- EventSink ------------------------------------------------------
    def emit(self, event: Event) -> None:
        if isinstance(event, FiringStarted):
            self._events.append(
                {
                    "name": event.transition,
                    "cat": "firing",
                    "ph": "X",
                    "ts": event.time,
                    "dur": event.duration,
                    "pid": self.PID,
                    "tid": self._tid_of(event.transition),
                }
            )
        elif isinstance(event, FrustumDetected):
            self._events.append(
                {
                    "name": f"cyclic frustum (period {event.period})",
                    "cat": "frustum",
                    "ph": "X",
                    "ts": event.start_time,
                    "dur": event.period,
                    "pid": self.PID,
                    "tid": self.FRUSTUM_TID,
                    "args": {
                        "start_time": event.start_time,
                        "repeat_time": event.repeat_time,
                        "period": event.period,
                    },
                }
            )
            self._events.append(
                {
                    "name": "state repeats",
                    "cat": "frustum",
                    "ph": "i",
                    "s": "g",
                    "ts": event.repeat_time,
                    "pid": self.PID,
                    "tid": self.FRUSTUM_TID,
                }
            )
        elif isinstance(event, StateSnapshot):
            # Token totals as a counter track: the timeline shows the
            # marking "breathe" as the pipeline fills and settles.
            self._events.append(
                {
                    "name": "tokens",
                    "cat": "state",
                    "ph": "C",
                    "ts": event.time,
                    "pid": self.PID,
                    "args": {"total": sum(c for _, c in event.marking)},
                }
            )
        elif isinstance(event, PhaseTimer):
            timings = self._other.setdefault("phase_seconds", {})
            timings[event.phase] = timings.get(event.phase, 0.0) + event.seconds
        elif isinstance(event, FiringCompleted):
            pass  # the slice was emitted complete at FiringStarted
        # unknown event types are ignored: sinks must stay forward-compatible

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        document = {
            "traceEvents": self._events,
            "displayTimeUnit": "ms",
            "otherData": dict(
                self._other, time_unit="1 trace us == 1 simulator cycle"
            ),
        }
        handle, owns = _open(self._target)
        json.dump(document, handle, indent=1)
        handle.write("\n")
        handle.flush()
        if owns:
            handle.close()
