"""Trace sinks: JSONL and Chrome/Perfetto trace-event output.

A simulation traced through :class:`ChromeTraceSink` renders, in
``chrome://tracing`` or https://ui.perfetto.dev, as one track per
transition with one slice per firing whose length is the firing's
execution time — effectively the paper's behavior graph (Figure 1(e))
drawn by a trace viewer for free.

Conventions
-----------

* Logical simulator cycles map 1:1 to trace microseconds (``ts``/
  ``dur`` are numerically equal to cycle counts), so slice durations
  read directly as execution times.
* Every transition gets its own ``tid`` (named via ``thread_name``
  metadata), all under ``pid`` 0 ("simulation").
* :class:`~repro.obs.events.FrustumDetected` becomes a global instant
  event plus explicit ``frustum`` begin/end marks on a dedicated
  track, so the cyclic frustum's span is visible in the timeline.
* :class:`~repro.obs.events.PhaseTimer` events are wall-clock, not
  simulation-clock, so the Chrome sink records them only as metadata
  under ``otherData``.

:class:`JsonlTraceSink` is the lossless form: every event, one JSON
object per line, in emission order — the machine-readable behavior
graph used by the golden-trace tests and any downstream tooling.

Crash tolerance
---------------

:class:`ChromeTraceSink` streams events to its target as they arrive
(header first, one flushed JSON object per event) and registers itself
with :mod:`atexit`, so a process that exits without calling
:meth:`~ChromeTraceSink.close` still finalizes its document, and a
process killed outright still leaves every flushed event on disk.  The
resulting truncated file is missing the closing ``]`` — exactly the
shape Chrome's own loader accepts — and :func:`load_trace_events`
recovers every complete event from it.
"""

from __future__ import annotations

import atexit
import io
import json
import pathlib
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from .events import (
    Event,
    EventSink,
    FiringCompleted,
    FiringStarted,
    FrustumDetected,
    PhaseTimer,
    StateSnapshot,
)

__all__ = ["JsonlTraceSink", "ChromeTraceSink", "load_trace_events"]

PathOrFile = Union[str, "io.TextIOBase", IO[str]]


def _open(target: PathOrFile) -> tuple:
    """Return ``(handle, owns_handle)`` for a path or file-like."""
    if isinstance(target, str):
        return open(target, "w"), True
    return target, False


class JsonlTraceSink(EventSink):
    """One JSON object per event per line, written as events arrive.

    ``target`` may be a path or an open text handle (handles are left
    open on :meth:`close` so callers can wrap ``StringIO``).
    """

    def __init__(self, target: PathOrFile) -> None:
        self._handle, self._owns = _open(target)
        self.events_written = 0

    def emit(self, event: Event) -> None:
        json.dump(event.to_dict(), self._handle, sort_keys=True)
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        self._handle.flush()
        if self._owns:
            self._handle.close()


class ChromeTraceSink(EventSink):
    """Chrome trace-event (JSON object format) sink.

    Events are *streamed*: the ``{"traceEvents": [`` header is written
    up front and every event is serialized and flushed as it arrives,
    so a crashed or killed process leaves a file holding every event it
    reached — truncated before the closing ``]``, which Chrome (and
    :func:`load_trace_events`) accepts.  :meth:`close` finalizes the
    document with ``displayTimeUnit`` and ``otherData``; the sink also
    registers with :mod:`atexit` so a normal interpreter exit finalizes
    any sink the caller forgot.

    Complete (``ph: "X"``) slices are emitted at :class:`FiringStarted`
    time — the duration is already known then, Assumption A.6.1
    guarantees slices on one track never overlap, and completions need
    no separate slice.
    """

    #: pid used for all simulation tracks.
    PID = 0
    #: tid reserved for frustum span marks; transitions start above it.
    FRUSTUM_TID = 0

    def __init__(self, target: PathOrFile, *, process_name: str = "simulation") -> None:
        self._handle, self._owns = _open(target)
        self._events_written = 0
        self._tids: Dict[str, int] = {}
        self._other: Dict[str, Any] = {}
        self._closed = False
        self._handle.write('{\n"traceEvents": [\n')
        self._meta(
            "process_name", tid=self.FRUSTUM_TID, args={"name": process_name}
        )
        self._meta(
            "thread_name", tid=self.FRUSTUM_TID, args={"name": "(frustum)"}
        )
        self._handle.flush()
        atexit.register(self.close)

    # -- helpers --------------------------------------------------------
    def _write(self, event: Dict[str, Any]) -> None:
        prefix = ",\n" if self._events_written else ""
        self._handle.write(prefix + json.dumps(event, sort_keys=True))
        self._handle.flush()
        self._events_written += 1

    def _meta(self, name: str, tid: int, args: Dict[str, Any]) -> None:
        self._write(
            {"name": name, "ph": "M", "pid": self.PID, "tid": tid, "args": args}
        )

    def _tid_of(self, transition: str) -> int:
        tid = self._tids.get(transition)
        if tid is None:
            tid = self._tids[transition] = len(self._tids) + 1
            self._meta("thread_name", tid=tid, args={"name": transition})
        return tid

    # -- EventSink ------------------------------------------------------
    def emit(self, event: Event) -> None:
        if isinstance(event, FiringStarted):
            self._write(
                {
                    "name": event.transition,
                    "cat": "firing",
                    "ph": "X",
                    "ts": event.time,
                    "dur": event.duration,
                    "pid": self.PID,
                    "tid": self._tid_of(event.transition),
                }
            )
        elif isinstance(event, FrustumDetected):
            self._write(
                {
                    "name": f"cyclic frustum (period {event.period})",
                    "cat": "frustum",
                    "ph": "X",
                    "ts": event.start_time,
                    "dur": event.period,
                    "pid": self.PID,
                    "tid": self.FRUSTUM_TID,
                    "args": {
                        "start_time": event.start_time,
                        "repeat_time": event.repeat_time,
                        "period": event.period,
                    },
                }
            )
            self._write(
                {
                    "name": "state repeats",
                    "cat": "frustum",
                    "ph": "i",
                    "s": "g",
                    "ts": event.repeat_time,
                    "pid": self.PID,
                    "tid": self.FRUSTUM_TID,
                }
            )
        elif isinstance(event, StateSnapshot):
            # Token totals as a counter track: the timeline shows the
            # marking "breathe" as the pipeline fills and settles.
            self._write(
                {
                    "name": "tokens",
                    "cat": "state",
                    "ph": "C",
                    "ts": event.time,
                    "pid": self.PID,
                    "args": {"total": sum(c for _, c in event.marking)},
                }
            )
        elif isinstance(event, PhaseTimer):
            timings = self._other.setdefault("phase_seconds", {})
            timings[event.phase] = timings.get(event.phase, 0.0) + event.seconds
        elif isinstance(event, FiringCompleted):
            pass  # the slice was emitted complete at FiringStarted
        # unknown event types are ignored: sinks must stay forward-compatible

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        other = json.dumps(
            dict(self._other, time_unit="1 trace us == 1 simulator cycle"),
            sort_keys=True,
        )
        self._handle.write(
            '\n],\n"displayTimeUnit": "ms",\n"otherData": ' + other + "\n}\n"
        )
        self._handle.flush()
        if self._owns:
            self._handle.close()


def load_trace_events(
    source: Union[str, pathlib.Path],
) -> Tuple[List[Dict[str, Any]], bool]:
    """Load the event list of a Chrome trace file, tolerating truncation.

    Returns ``(events, truncated)``.  A complete document (object with
    ``traceEvents``, or a bare event array) parses normally; a file cut
    off mid-stream — the signature of a killed writer — is recovered by
    decoding complete event objects until the torn tail, mirroring the
    leniency of Chrome's own trace importer.
    """
    text = pathlib.Path(source).read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        return _recover_events(text), True
    if isinstance(document, list):
        return [e for e in document if isinstance(e, dict)], False
    if isinstance(document, dict):
        events = document.get("traceEvents", [])
        return [e for e in events if isinstance(e, dict)], False
    return [], False


def _recover_events(text: str) -> List[Dict[str, Any]]:
    """Best-effort event extraction from a truncated trace document."""
    marker = text.find('"traceEvents"')
    start = text.find("[", marker if marker >= 0 else 0)
    if start < 0:
        return []
    decoder = json.JSONDecoder()
    events: List[Dict[str, Any]] = []
    index = start + 1
    length = len(text)
    while index < length:
        while index < length and text[index] in " \t\r\n,":
            index += 1
        if index >= length or text[index] == "]":
            break
        try:
            event, index = decoder.raw_decode(text, index)
        except json.JSONDecodeError:
            break  # torn tail: everything before it was recovered
        if isinstance(event, dict):
            events.append(event)
    return events
