"""OpenMetrics text exposition for the metrics registry.

Renders any :class:`~repro.obs.metrics.MetricsRegistry` (or a
``dump()`` snapshot of one, including snapshots stored in ledger
records) in the `OpenMetrics text exposition format
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_ — the
surface every Prometheus-compatible scraper understands.  This is the
"pull" half of the observability story: ``repro sweep --metrics-out``
writes a scrape-ready snapshot, and ``repro metrics`` re-renders the
registry dump embedded in any ledger record.

Mapping
-------

=================  ==========================================================
registry metric    OpenMetrics family
=================  ==========================================================
``Counter``        ``counter`` — one ``<name>_total`` sample
``Gauge``          ``gauge`` — one ``<name>`` sample
``Histogram``      ``summary`` — ``quantile="0.5"/"0.95"`` samples (from
                   :meth:`~repro.obs.metrics.Histogram.percentile`) plus
                   ``_count`` and ``_sum``
timers             summaries with a ``_seconds`` unit suffix and a
                   ``# UNIT`` line (timer samples are seconds)
labeled counters   ``counter`` — one ``<name>_total`` sample per label set
                   (dump key ``labeled_counters``; values escaped per spec)
=================  ==========================================================

Label values are escaped per the exposition spec (``\\`` → ``\\\\``,
``"`` → ``\\"``, newline → ``\\n``) by :func:`escape_label_value`;
:func:`parse_labels` is the exact inverse.

Metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots and
other separators become underscores; collisions get numeric suffixes),
every family gets ``# TYPE`` and ``# HELP`` lines carrying the original
dotted name, and the exposition ends with the mandatory ``# EOF``.
:func:`parse_exposition` is the matching minimal validator used by the
test suite and ``tools/trace_lint.py``-style checks.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Tuple, Union

__all__ = [
    "sanitize_metric_name",
    "escape_label_value",
    "format_labels",
    "parse_labels",
    "render_openmetrics",
    "dump_from_record",
    "parse_exposition",
]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_BAD = re.compile(r"[^a-zA-Z0-9_]")
# One label: name="value" where value is any run of non-special chars
# or the three escape sequences \\, \", \n the spec defines.
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\\n]|\\["\\n])*)"'
)
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{(?:" + _LABEL + r"(?:," + _LABEL + r")*)?\})?"
    r" (?P<value>-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN|[+-]Inf)$"
)

#: Sample-name suffixes reserved by OpenMetrics metric types.
_RESERVED_SUFFIXES = ("_total", "_count", "_sum", "_bucket", "_created")


def sanitize_metric_name(name: str) -> str:
    """Coerce a dotted registry name into a legal OpenMetrics name."""
    text = _NAME_BAD.sub("_", str(name))
    if not text or not _NAME_OK.match(text):
        text = "_" + text
    return text


def escape_label_value(value: Any) -> str:
    """Escape a label value per the OpenMetrics exposition spec:
    backslash, double quote and newline become ``\\\\``, ``\\"`` and
    ``\\n`` (everything else passes through verbatim)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _sanitize_label_name(name: str) -> str:
    text = _LABEL_NAME_BAD.sub("_", str(name))
    if not text or not text[0].isalpha() and text[0] != "_":
        text = "_" + text
    return text


def format_labels(labels: Mapping[str, Any]) -> str:
    """Render a label mapping as a ``{name="value",...}`` label set with
    spec-compliant value escaping (names sanitized, sorted for
    determinism).  An empty mapping renders as the empty string."""
    if not labels:
        return ""
    parts = [
        f'{_sanitize_label_name(name)}="{escape_label_value(value)}"'
        for name, value in sorted(labels.items(), key=lambda kv: str(kv[0]))
    ]
    return "{" + ",".join(parts) + "}"


def parse_labels(labels: str) -> Dict[str, str]:
    """Parse a ``{name="value",...}`` label set (as captured by
    :func:`parse_exposition`) back into a mapping, undoing the value
    escaping.  The empty string parses to ``{}``."""
    if not labels:
        return {}
    if not (labels.startswith("{") and labels.endswith("}")):
        raise ValueError(f"malformed label set {labels!r}")
    body = labels[1:-1]
    if not body:
        return {}
    out: Dict[str, str] = {}
    pos = 0
    while True:
        match = _LABEL_RE.match(body, pos)
        if match is None:
            raise ValueError(f"malformed label set {labels!r} at offset {pos}")
        out[match.group("name")] = _unescape_label_value(match.group("value"))
        pos = match.end()
        if pos == len(body):
            return out
        if body[pos] != ",":
            raise ValueError(f"malformed label set {labels!r} at offset {pos}")
        pos += 1


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class _Families:
    """Accumulates family blocks with collision-free sanitized names."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._used: Dict[str, str] = {}

    def family_name(self, raw: str, strip_total: bool = False) -> str:
        base = sanitize_metric_name(raw)
        if strip_total and base.endswith("_total"):
            base = base[: -len("_total")] or "_"
        candidate, n = base, 2
        while candidate in self._used and self._used[candidate] != raw:
            candidate = f"{base}_{n}"
            n += 1
        self._used[candidate] = raw
        return candidate

    def block(
        self, family: str, kind: str, original: str, unit: str = ""
    ) -> None:
        self.lines.append(f"# TYPE {family} {kind}")
        if unit:
            self.lines.append(f"# UNIT {family} {unit}")
        self.lines.append(
            f"# HELP {family} {_escape_help(f'repro metric {original!r}')}"
        )

    def sample(self, name: str, value: Any, labels: str = "") -> None:
        self.lines.append(f"{name}{labels} {_format_value(value)}")


def _summary_block(
    families: _Families,
    raw_name: str,
    stats: Mapping[str, Any],
    unit: str = "",
) -> None:
    suffix = f"_{unit}" if unit else ""
    family = families.family_name(raw_name + suffix)
    families.block(family, "summary", raw_name, unit=unit)
    for q, key in (("0.5", "p50"), ("0.95", "p95")):
        value = stats.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            families.sample(family, value, labels=f'{{quantile="{q}"}}')
    count = stats.get("count")
    total = stats.get("total")
    if isinstance(count, (int, float)) and not isinstance(count, bool):
        families.sample(f"{family}_count", int(count))
    if isinstance(total, (int, float)) and not isinstance(total, bool):
        families.sample(f"{family}_sum", float(total))


def render_openmetrics(source: Any) -> str:
    """Render a registry (or a ``dump()``-shaped mapping) as OpenMetrics
    text exposition, terminated by ``# EOF``."""
    dump: Mapping[str, Any]
    if hasattr(source, "dump"):
        dump = source.dump()
    elif isinstance(source, Mapping):
        dump = source
    else:
        raise TypeError(
            "render_openmetrics wants a MetricsRegistry or a dump mapping, "
            f"got {type(source).__name__}"
        )

    families = _Families()
    for raw_name, value in sorted((dump.get("counters") or {}).items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        family = families.family_name(raw_name, strip_total=True)
        families.block(family, "counter", raw_name)
        families.sample(f"{family}_total", value)
    for raw_name, samples in sorted(
        (dump.get("labeled_counters") or {}).items()
    ):
        if not isinstance(samples, (list, tuple)):
            continue
        rows = [
            (entry.get("labels") or {}, entry.get("value"))
            for entry in samples
            if isinstance(entry, Mapping)
            and isinstance(entry.get("value"), (int, float))
            and not isinstance(entry.get("value"), bool)
        ]
        if not rows:
            continue  # a declared family with no samples violates the spec
        family = families.family_name(raw_name, strip_total=True)
        families.block(family, "counter", raw_name)
        for labels, value in rows:
            families.sample(
                f"{family}_total", value, labels=format_labels(labels)
            )
    for raw_name, value in sorted((dump.get("gauges") or {}).items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        family = families.family_name(raw_name)
        families.block(family, "gauge", raw_name)
        families.sample(family, value)
    for raw_name, stats in sorted((dump.get("histograms") or {}).items()):
        if isinstance(stats, Mapping):
            _summary_block(families, raw_name, stats)
    for raw_name, stats in sorted((dump.get("timers") or {}).items()):
        if isinstance(stats, Mapping):
            _summary_block(families, raw_name, stats, unit="seconds")
    families.lines.append("# EOF")
    return "\n".join(families.lines) + "\n"


def dump_from_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """Rebuild a registry ``dump()``-shaped snapshot from a ledger
    record's volatile ``timing`` section.

    ``timing.metrics`` values that are numbers become counters; one
    level of nesting is flattened (``{"cache": {"hit": 3}}`` becomes
    counter ``cache.hit``).  ``timing.phase_wall_clock`` entries are
    timer dumps and come back as timers.
    """
    timing = record.get("timing") or {}
    counters: Dict[str, Any] = {}
    for name, value in (timing.get("metrics") or {}).items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            counters[str(name)] = value
        elif isinstance(value, Mapping):
            for sub, sub_value in value.items():
                if isinstance(sub_value, (int, float)) and not isinstance(
                    sub_value, bool
                ):
                    counters[f"{name}.{sub}"] = sub_value
    timers = {
        str(name): stats
        for name, stats in (timing.get("phase_wall_clock") or {}).items()
        if isinstance(stats, Mapping)
    }
    return {"counters": counters, "gauges": {}, "histograms": {}, "timers": timers}


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Minimal OpenMetrics validator: checks line grammar, the trailing
    ``# EOF``, and that every sample belongs to a declared family of a
    compatible type.  Returns ``{family: {"type": ..., "samples":
    [(sample_name, labels, value), ...]}}``; raises :class:`ValueError`
    on any violation.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    families: Dict[str, Dict[str, Any]] = {}
    for lineno, line in enumerate(lines[:-1], start=1):
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in (
                "TYPE",
                "HELP",
                "UNIT",
            ):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            family = parts[2]
            if not _NAME_OK.match(family):
                raise ValueError(
                    f"line {lineno}: illegal family name {family!r}"
                )
            if parts[1] == "TYPE":
                if family in families:
                    raise ValueError(
                        f"line {lineno}: family {family!r} declared twice"
                    )
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: TYPE needs a type")
                families[family] = {"type": parts[3], "samples": []}
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        family = name
        for suffix in _RESERVED_SUFFIXES:
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if family not in families and name not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )
        target = families[family] if family in families else families[name]
        kind = target["type"]
        if kind == "counter" and not name.endswith(("_total", "_created")):
            raise ValueError(
                f"line {lineno}: counter sample {name!r} must end _total"
            )
        target["samples"].append(
            (name, match.group("labels") or "", match.group("value"))
        )
    for family, data in families.items():
        if not data["samples"]:
            raise ValueError(f"family {family!r} declared but has no samples")
    return families
