"""Merge per-worker span shards into one Chrome/Perfetto trace.

A traced sweep produces one span tree in the parent (the ``sweep`` root
span, dispatch, merge) plus one JSONL shard per pool worker
(:class:`~repro.obs.spans.SpanShardWriter`).  :func:`merge_traces`
stitches them into a single Chrome trace-event document with **one lane
per worker**: the parent is ``pid`` 0, each worker shard gets the next
``pid`` in deterministic (worker-id-sorted) order, and every lane is
named through ``process_name`` metadata, so ui.perfetto.dev shows the
sweep as a swimlane diagram — items stacked inside workers, pipeline
phases nested inside items.

Determinism: lanes are ordered by worker id and events are sorted by
``(ts, pid, -dur, name, span_id)``, so merging the same shards in any
order yields byte-identical output (pinned by the test suite).

Clock-skew normalization: each shard header carries the ``handshake``
wall time its worker received from the parent and the worker's own
``wall_anchor``.  A worker clock reading *earlier* than the handshake
is causally impossible (the handshake was stamped before the worker
existed), so such a shard's spans are shifted forward by the
difference.  Skew in the other direction is indistinguishable from
genuine dispatch latency and is left alone.

Timestamps in the merged trace are integer microseconds from the
earliest span (``1 trace us == 1 wall-clock microsecond`` — unlike the
simulator traces of :mod:`repro.obs.trace`, these are real durations).

Truncated inputs are tolerated end to end: shards may have a torn final
line (:func:`~repro.obs.spans.read_shard`) and previously merged traces
may be cut off mid-array (:func:`~repro.obs.trace.load_trace_events`),
matching Chrome's own loader.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .spans import Span, Tracer, read_shard, shard_paths

__all__ = ["merge_traces", "write_trace", "load_merged_spans"]

_PathLike = Union[str, pathlib.Path]

#: pid of the parent (dispatching) process's lane.
PARENT_PID = 0


def _normalized_lanes(
    shards: Iterable[_PathLike],
    parent: Optional[Tracer],
    parent_label: str,
) -> List[Tuple[str, List[Span], float]]:
    """Resolve ``(label, spans, shift)`` per lane, parent lane first,
    worker lanes in deterministic label order."""
    lanes: List[Tuple[str, List[Span], float]] = []
    if parent is not None:
        lanes.append((parent_label, list(parent.spans), 0.0))
    workers: List[Tuple[str, List[Span], float]] = []
    for path in shards:
        header, spans = read_shard(path)
        label = str(header.get("shard") or pathlib.Path(path).stem)
        handshake = header.get("handshake")
        anchor = header.get("wall_anchor")
        shift = 0.0
        if isinstance(handshake, (int, float)) and isinstance(
            anchor, (int, float)
        ):
            # the worker cannot have started before the handshake was
            # stamped; a clock reading earlier than that is skew
            shift = max(0.0, float(handshake) - float(anchor))
        workers.append((label, spans, shift))
    workers.sort(key=lambda lane: lane[0])
    return lanes + workers


def merge_traces(
    shards: Union[_PathLike, Sequence[_PathLike]],
    parent: Optional[Tracer] = None,
    parent_label: str = "parent",
    time_origin: Optional[float] = None,
) -> Dict[str, Any]:
    """Merge span shards (paths, or a shard directory) plus the parent
    tracer's spans into one Chrome trace-event document.

    Returns the document as a dict; use :func:`write_trace` to persist
    it.  ``time_origin`` overrides the inferred t0 (the earliest
    normalized span start) — mainly for tests that want fixed numbers.
    """
    if isinstance(shards, (str, pathlib.Path)):
        shard_list: Sequence[_PathLike] = shard_paths(shards)
    else:
        shard_list = list(shards)
    lanes = _normalized_lanes(shard_list, parent, parent_label)

    starts = [
        span.start + shift for _, spans, shift in lanes for span in spans
    ]
    t0 = (
        time_origin
        if time_origin is not None
        else (min(starts) if starts else 0.0)
    )

    events: List[Dict[str, Any]] = []
    lane_names: Dict[int, str] = {}
    slices: List[Dict[str, Any]] = []
    for pid, (label, spans, shift) in enumerate(lanes, start=PARENT_PID):
        lane_names[pid] = label
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "spans"},
            }
        )
        for span in spans:
            args: Dict[str, Any] = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "status": span.status,
            }
            if span.attributes:
                args.update(span.attributes)
            slices.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": int(round((span.start + shift - t0) * 1e6)),
                    "dur": max(0, int(round(span.duration * 1e6))),
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
    # Deterministic order: a slice starting when another ends sorts
    # after it only via the (ts, pid) key; longer slices first at equal
    # ts so parents precede their children.
    slices.sort(
        key=lambda e: (
            e["ts"],
            e["pid"],
            -e["dur"],
            e["name"],
            e["args"]["span_id"],
        )
    )
    events.extend(slices)

    trace_id = None
    if parent is not None:
        trace_id = parent.trace_id
    elif lanes:
        for _, spans, _ in lanes:
            if spans:
                trace_id = spans[0].trace_id
                break
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace_id,
            "time_unit": "1 trace us == 1 wall-clock microsecond",
            "time_origin_unix": t0,
            "lanes": {str(pid): name for pid, name in lane_names.items()},
        },
    }


def write_trace(document: Dict[str, Any], path: _PathLike) -> pathlib.Path:
    """Write a merged trace document deterministically (sorted keys,
    fixed indent) so identical merges are byte-identical files."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_merged_spans(path: _PathLike) -> List[Dict[str, Any]]:
    """The span slices of a merged trace file (tolerant of truncation),
    for tooling that post-processes merged traces."""
    from .trace import load_trace_events

    events, _ = load_trace_events(path)
    return [
        event
        for event in events
        if event.get("ph") == "X" and event.get("cat") == "span"
    ]
