"""The run-ledger record schema (stable, versioned).

Every cross-run artifact in this project — ledger records under
``benchmarks/ledger/``, the per-bench telemetry in
``benchmarks/results/*.json``, the regression gate's baselines — shares
one normalised record layout so that tooling written against one of
them works against all of them:

``schema_version``
    integer, bumped whenever a field changes meaning (consumers must
    refuse versions they do not know);
``kind``
    ``"bench"`` for benchmark telemetry, ``"cli"`` for a ``repro``
    invocation;
``name``
    the bench name (``fig1_l1_pipeline``) or the loop name;
``payload``
    the **stable** numbers: cycle time, frustum length, transient,
    rates, net sizes.  Everything in the payload is deterministic for a
    given commit — the regression gate hard-fails on any drift here and
    ``git diff`` over committed results stays meaningful;
``timing``
    volatile wall-clock measurements (per-phase timer dumps) — the gate
    applies a soft relative tolerance here;
``environment``
    volatile provenance: python/platform/hostname and an ISO timestamp;
``git_sha`` / ``command``
    provenance of the run itself.

Normalisation rules (applied by :func:`normalize_value`):

* ``Fraction`` values become their exact ``"p/q"`` string — rationals
  must round-trip losslessly, they are correctness numbers;
* floats are rounded to :data:`FLOAT_DECIMALS` decimal places so that
  re-serialising a loaded record is byte-identical and diffs never
  churn on 17-significant-digit noise;
* mappings are emitted with sorted keys (via :func:`stable_json`).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Mapping, Optional

from ..errors import LedgerError

__all__ = [
    "SCHEMA_VERSION",
    "FLOAT_DECIMALS",
    "RECORD_KINDS",
    "VOLATILE_SECTIONS",
    "normalize_value",
    "normalize_payload",
    "validate_record",
    "stable_json",
]

#: Bump on any incompatible field change; consumers must check it.
SCHEMA_VERSION = 1

#: Fixed float precision for everything the ledger serialises.
FLOAT_DECIMALS = 9

#: Legal values of a record's ``kind`` field.  ``"sweep"`` records are
#: appended by ``repro sweep`` / :func:`repro.batch.compile_many` and
#: carry the deterministic merged batch payload plus (volatile) cache
#: hit/miss counters in their ``timing.metrics`` section.  ``"serve"``
#: records come from the service latency bench
#: (``benchmarks/bench_serve.py``): the payload pins the served bytes
#: (sha256), the volatile latency percentiles live under ``timing``.
#: ``"stagecache"`` records come from the per-stage artifact-cache
#: bench (``benchmarks/bench_stagecache.py``): the payload pins the
#: stage resolution outcomes of a cold vs warm recompile, the volatile
#: wall clocks live under ``timing``.
RECORD_KINDS = ("bench", "cli", "sweep", "serve", "stagecache")

#: Top-level sections the regression gate treats as volatile: allowed
#: to drift between runs (within tolerance for ``timing``; freely for
#: ``environment``).
VOLATILE_SECTIONS = ("timing", "environment")

#: Fields every record must carry.
_REQUIRED = ("schema_version", "kind", "name", "payload")


def normalize_value(value: Any) -> Any:
    """Recursively convert ``value`` into deterministic JSON-ready data.

    Fractions serialise exactly (``"1/3"``), floats are rounded to
    :data:`FLOAT_DECIMALS` places, tuples become lists, and nested
    mappings are normalised recursively.  Unknown objects fall back to
    ``str`` — the same escape hatch the benchmark telemetry always used.
    """
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return value.numerator
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return round(value, FLOAT_DECIMALS)
    if isinstance(value, int) or isinstance(value, str):
        return value
    if isinstance(value, Mapping):
        return {str(k): normalize_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [normalize_value(v) for v in items]
    return str(value)


def normalize_payload(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalise a stable-payload mapping (keys sorted at dump time)."""
    return {str(k): normalize_value(v) for k, v in payload.items()}


def validate_record(record: Mapping[str, Any]) -> None:
    """Raise :class:`~repro.errors.LedgerError` unless ``record`` is a
    well-formed ledger record of a known schema version."""
    if not isinstance(record, Mapping):
        raise LedgerError(
            f"ledger record must be a mapping, got {type(record).__name__}"
        )
    for field in _REQUIRED:
        if field not in record:
            raise LedgerError(f"ledger record is missing field {field!r}")
    version = record["schema_version"]
    if version != SCHEMA_VERSION:
        raise LedgerError(
            f"unknown ledger schema version {version!r} "
            f"(this build understands version {SCHEMA_VERSION})"
        )
    if record["kind"] not in RECORD_KINDS:
        raise LedgerError(
            f"ledger record kind must be one of {RECORD_KINDS}, "
            f"got {record['kind']!r}"
        )
    if not isinstance(record["name"], str) or not record["name"]:
        raise LedgerError("ledger record 'name' must be a non-empty string")
    if not isinstance(record["payload"], Mapping):
        raise LedgerError("ledger record 'payload' must be a mapping")
    for section in VOLATILE_SECTIONS:
        if section in record and not isinstance(record[section], Mapping):
            raise LedgerError(
                f"ledger record {section!r} must be a mapping when present"
            )


def stable_json(value: Any, indent: Optional[int] = None) -> str:
    """Deterministic JSON: sorted keys, normalised values, no trailing
    whitespace surprises.  One-line (``indent=None``) for JSONL rows,
    indented for the committed ``benchmarks/results/*.json`` files."""
    return json.dumps(
        normalize_value(value),
        indent=indent,
        sort_keys=True,
        separators=(",", ": ") if indent is not None else (",", ":"),
    )
