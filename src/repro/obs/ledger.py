"""The cross-run performance ledger: append-only JSONL under
``benchmarks/ledger/``.

PR 1 made *single* runs observable; this module is the memory that
connects them.  Two files live in the ledger directory:

``runs.jsonl``
    the append-only history — every benchmark run and every opted-in
    ``repro schedule/analyze/trace`` invocation appends one record, so
    the ``repro dash`` trend charts can plot cycle time and detection
    cost across commits;
``baseline.jsonl``
    the committed regression baseline — one record per bench, written
    by ``repro bench-check --update-baseline`` and compared against
    fresh ``benchmarks/results/*.json`` by the gate.

Records follow :mod:`repro.obs.schema` (versioned, normalised, stable
serialisation); loading tolerates blank lines but rejects records whose
schema version this build does not understand, so a format change can
never be silently misread as a regression.
"""

from __future__ import annotations

import datetime
import os
import pathlib
import platform
import subprocess
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from ..errors import LedgerError
from .schema import (
    SCHEMA_VERSION,
    normalize_payload,
    stable_json,
    validate_record,
)

__all__ = [
    "RUNS_FILE",
    "BASELINE_FILE",
    "FALSY_ENV_VALUES",
    "TRUTHY_ENV_VALUES",
    "resolve_env_dir",
    "default_ledger_dir",
    "git_sha",
    "environment_info",
    "make_run_record",
    "append_record",
    "load_records",
    "latest_by_name",
]

RUNS_FILE = "runs.jsonl"
BASELINE_FILE = "baseline.jsonl"

_PathLike = Union[str, pathlib.Path]


def default_ledger_dir(root: Optional[_PathLike] = None) -> pathlib.Path:
    """``<root>/benchmarks/ledger`` (root defaults to the cwd) — where
    the CLI and the benchmark harness keep their shared history."""
    base = pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    return base / "benchmarks" / "ledger"


#: Environment values meaning "feature off".  An unset variable and the
#: empty string count as off too — ``REPRO_LEDGER=0`` must never append
#: to a ledger directory literally named ``0``.
FALSY_ENV_VALUES = frozenset({"", "0", "false", "no", "off"})

#: Environment values meaning "feature on, use the default directory".
TRUTHY_ENV_VALUES = frozenset({"1", "true", "yes", "on"})


def resolve_env_dir(
    value: Optional[str],
    default: _PathLike,
    purpose: str = "ledger",
) -> Optional[pathlib.Path]:
    """Parse an opt-in directory toggle (``REPRO_LEDGER``, ``REPRO_CACHE``).

    Three outcomes, matched case-insensitively:

    * off (``None``/empty/``0``/``false``/``no``/``off``) → ``None``;
    * on with the default directory (``1``/``true``/``yes``/``on``) →
      ``default`` as a :class:`pathlib.Path`;
    * anything else is an explicit directory path — it is created (with
      parents) and checked for writability up front, so a typo'd or
      read-only path fails loudly instead of silently dropping records.

    Raises :class:`~repro.errors.LedgerError` for an unusable explicit
    path.
    """
    if value is None:
        return None
    text = value.strip()
    lowered = text.lower()
    if lowered in FALSY_ENV_VALUES:
        return None
    if lowered in TRUTHY_ENV_VALUES:
        return pathlib.Path(default)
    explicit = pathlib.Path(text)
    try:
        explicit.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise LedgerError(
            f"cannot use {text!r} as the {purpose} directory: {error}"
        ) from error
    if not explicit.is_dir() or not os.access(explicit, os.W_OK):
        raise LedgerError(
            f"cannot use {text!r} as the {purpose} directory: not a "
            "writable directory"
        )
    return explicit


def git_sha(cwd: Optional[_PathLike] = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout
    (records must never fail to be written for provenance reasons)."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    sha = completed.stdout.strip()
    return sha if sha else "unknown"


def environment_info() -> Dict[str, Any]:
    """Volatile provenance: interpreter, platform, host, timestamp.

    Everything here lives in the record's ``environment`` section,
    which the regression gate and ``git diff`` both ignore.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def make_run_record(
    kind: str,
    name: str,
    payload: Mapping[str, Any],
    command: Optional[str] = None,
    phase_wall_clock: Optional[Mapping[str, Any]] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    spans: Optional[Mapping[str, Any]] = None,
    blame: Optional[Mapping[str, Any]] = None,
    cwd: Optional[_PathLike] = None,
) -> Dict[str, Any]:
    """Assemble one normalised, validated run record.

    ``payload`` holds only stable numbers; wall-clock goes into
    ``timing`` and host/timestamp provenance into ``environment``.
    ``metrics`` is a metrics-registry ``dump()`` snapshot — counters
    and histograms are kept in the volatile ``timing`` section too,
    since their values (step counts aside) are measurement artifacts.
    ``spans`` is a traced sweep's lane/critical-path summary
    (:meth:`repro.batch.sweep.SweepResult.timing_summary`), stored
    under ``timing.spans`` — volatile like all timing data.
    ``blame`` is a causal blame summary
    (:func:`repro.core.blame.blame_summary`), stored under
    ``timing.blame`` and rendered by the dashboard's causality lane.
    """
    record: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "name": name,
        "git_sha": git_sha(cwd),
        "payload": normalize_payload(payload),
        "environment": environment_info(),
    }
    if command is not None:
        record["command"] = command
    timing: Dict[str, Any] = {}
    if phase_wall_clock:
        timing["phase_wall_clock"] = dict(phase_wall_clock)
    if metrics:
        timing["metrics"] = dict(metrics)
    if spans:
        timing["spans"] = dict(spans)
    if blame:
        timing["blame"] = dict(blame)
    if timing:
        record["timing"] = timing
    validate_record(record)
    return record


def append_record(path: _PathLike, record: Mapping[str, Any]) -> pathlib.Path:
    """Validate and append one record to a JSONL ledger file, creating
    parent directories on first use.  Returns the file path."""
    validate_record(record)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as handle:
        handle.write(stable_json(record) + "\n")
    return target


def load_records(path: _PathLike) -> List[Dict[str, Any]]:
    """All records of one JSONL ledger file, in append order.

    Blank lines are skipped; malformed JSON or an unknown schema
    version raises :class:`~repro.errors.LedgerError` naming the line.
    """
    import json

    target = pathlib.Path(path)
    if not target.exists():
        return []
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(target.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise LedgerError(
                f"{target}:{lineno}: malformed ledger line ({error})"
            ) from error
        try:
            validate_record(record)
        except LedgerError as error:
            raise LedgerError(f"{target}:{lineno}: {error}") from error
        records.append(record)
    return records


def latest_by_name(
    records: Iterable[Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """The most recent record per ``name`` (later lines win — the file
    is append-only, so file order is time order)."""
    latest: Dict[str, Dict[str, Any]] = {}
    for record in records:
        latest[str(record["name"])] = dict(record)
    return latest
