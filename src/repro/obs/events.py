"""Structured simulation events and the opt-in ``Instrumentation`` hub.

The paper's central artifact is the *behavior graph* — the time-indexed
record of firings under the earliest firing rule.  These events are
that record, surfaced as data:

* :class:`FiringStarted` / :class:`FiringCompleted` — one pair per
  transition firing (a *transition instance* in the behavior graph; in
  the instantaneous-state semantics, the interval during which the
  transition contributes a non-zero residual firing time);
* :class:`StateSnapshot` — the instantaneous state ``(marking,
  residual vector, policy key)`` at the canonical post-completion /
  pre-firing point of a step — the states frustum detection hashes;
* :class:`FrustumDetected` — the first repeated instantaneous state,
  i.e. the boundaries of the cyclic frustum (Definition 3.3.1);
* :class:`PhaseTimer` — wall-clock duration of one named pipeline
  phase (parse, translate, detect-frustum, ...).

Event times are the simulator's *logical* clock (integer cycles), not
wall-clock; :class:`PhaseTimer` is the only wall-clock event.

``Instrumentation`` fans events out to pluggable sinks and owns a
:class:`~repro.obs.metrics.MetricsRegistry`.  The library default is
:data:`NULL_INSTRUMENTATION`, whose ``emit`` discards and which is
falsy, so hot loops guard with ``if obs:`` / ``is not None`` and pay
nothing when tracing is off.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "Event",
    "FiringStarted",
    "FiringCompleted",
    "StateSnapshot",
    "FrustumDetected",
    "PhaseTimer",
    "EventSink",
    "ListSink",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
]


@dataclasses.dataclass(frozen=True)
class Event:
    """Base class for all structured events."""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation: ``{"event": <type>, ...fields}``."""
        payload: Dict[str, Any] = {"event": type(self).__name__}
        payload.update(dataclasses.asdict(self))
        return payload


@dataclasses.dataclass(frozen=True)
class FiringStarted(Event):
    """Transition ``transition`` started firing at logical ``time`` and
    will occupy ``duration`` cycles (one behavior-graph transition
    instance).

    ``consumed`` is the token provenance of this firing: one
    ``(place, birth_time, producer)`` triple per input place, naming
    the token the firing consumed — the place it sat on, the logical
    time it was deposited, and the transition whose completion
    deposited it (``""`` for tokens of the initial marking).  Tokens
    are matched FIFO per place, exactly like
    :class:`repro.petrinet.behavior.BehaviorRecorder`, so these triples
    are the edges of the enabling DAG
    (:mod:`repro.obs.causality`).  Both simulation engines fill it
    whenever instrumentation is attached; it is ``None`` only for
    hand-built events.
    """

    time: int
    transition: str
    duration: int
    consumed: Optional[Tuple[Tuple[str, int, str], ...]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = super().to_dict()
        if self.consumed is None:
            del payload["consumed"]
        else:
            payload["consumed"] = [list(entry) for entry in self.consumed]
        return payload


@dataclasses.dataclass(frozen=True)
class FiringCompleted(Event):
    """Transition ``transition`` finished at logical ``time`` the firing
    it started at ``time - duration``."""

    time: int
    transition: str
    duration: int


@dataclasses.dataclass(frozen=True)
class StateSnapshot(Event):
    """The instantaneous state at the canonical snapshot point of step
    ``time`` — exactly what frustum detection hashes."""

    time: int
    marking: Tuple[Tuple[str, int], ...]
    residuals: Tuple[Tuple[str, int], ...]
    policy_key: Tuple


@dataclasses.dataclass(frozen=True)
class FrustumDetected(Event):
    """The instantaneous state first seen at ``start_time`` repeated at
    ``repeat_time``; the cyclic frustum spans the ``period`` steps in
    between."""

    start_time: int
    repeat_time: int
    period: int


@dataclasses.dataclass(frozen=True)
class PhaseTimer(Event):
    """One named pipeline phase took ``seconds`` of wall-clock time."""

    phase: str
    seconds: float


class EventSink:
    """Receiver interface for structured events."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further ``emit`` is undefined."""


class ListSink(EventSink):
    """In-memory sink, mainly for tests and ad-hoc inspection."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)


class Instrumentation:
    """Fan-out hub: events to sinks, phase timings to a registry.

    Truthiness doubles as the fast-path gate: a real ``Instrumentation``
    is truthy, the :data:`NULL_INSTRUMENTATION` default is falsy, so
    per-step simulator code can guard event construction with a single
    ``if obs is not None`` / ``if obs`` check.
    """

    enabled = True

    def __init__(
        self,
        sinks: Iterable[EventSink] = (),
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sinks: List[EventSink] = list(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def add_sink(self, sink: EventSink) -> EventSink:
        self.sinks.append(sink)
        return sink

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named pipeline phase: emits a :class:`PhaseTimer`
        event and records a ``phase.<name>`` timer in :attr:`metrics`."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.metrics.record_time(f"phase.{name}", elapsed)
            self.emit(PhaseTimer(name, elapsed))

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class _NullContext:
    """Reusable no-op context manager (cheaper than nullcontext churn)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullInstrumentation(Instrumentation):
    """The do-nothing default: falsy, discards events, times nothing.

    Exists so library code can unconditionally call ``obs.emit(...)`` /
    ``obs.phase(...)`` on cold paths while hot loops skip event
    construction entirely via the falsy check.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(sinks=(), metrics=MetricsRegistry(enabled=False))

    def __bool__(self) -> bool:
        return False

    def emit(self, event: Event) -> None:
        pass

    def phase(self, name: str) -> _NullContext:  # type: ignore[override]
        return _NULL_CONTEXT

    def add_sink(self, sink: EventSink) -> EventSink:
        raise ValueError(
            "cannot attach sinks to the shared NULL_INSTRUMENTATION; "
            "create a repro.obs.Instrumentation instead"
        )


#: Shared no-op used wherever instrumentation was not requested.
NULL_INSTRUMENTATION = NullInstrumentation()
