"""The benchmark regression gate behind ``repro bench-check``.

The gate compares the freshly generated ``benchmarks/results/*.json``
telemetry against the committed baseline records in
``benchmarks/ledger/baseline.jsonl`` and classifies every drift:

* **hard** — a correctness number changed: anything in a record's
  stable ``payload`` (cycle time, II, frustum length, transient,
  rates, net sizes, table rows).  These are deterministic for a given
  commit, so *any* drift fails the gate;
* **soft** — a wall-clock total grew beyond the configured relative
  tolerance.  Wall clock is machine-dependent, so soft findings are
  reported (and fail only under ``--wall-hard``);
* **info** — a bench exists on one side only (new benches are not
  failures; missing result files are).

The diff table is rendered with the same fixed-width table layer the
benchmark harness uses, so gate output reads like the artifacts it
guards.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..errors import LedgerError, RegressionError
from .ledger import latest_by_name, load_records
from .schema import validate_record

__all__ = [
    "Difference",
    "GateReport",
    "load_results_records",
    "compare_records",
    "run_gate",
]

_PathLike = Union[str, pathlib.Path]

#: Default relative wall-clock tolerance: a phase may take up to this
#: many times its baseline total before the gate calls it a drift.
DEFAULT_WALL_TOLERANCE = 5.0

#: Phases whose baseline total is below this many seconds are skipped
#: by the wall-clock check — micro-timings are pure scheduler noise.
DEFAULT_WALL_FLOOR = 0.05


@dataclass(frozen=True)
class Difference:
    """One detected drift between baseline and current results."""

    bench: str
    field: str
    baseline: Any
    current: Any
    severity: str  # "hard" | "soft" | "info"
    message: str


@dataclass
class GateReport:
    """Everything ``repro bench-check`` prints and exits on."""

    differences: List[Difference] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE

    @property
    def hard_failures(self) -> List[Difference]:
        return [d for d in self.differences if d.severity == "hard"]

    @property
    def soft_failures(self) -> List[Difference]:
        return [d for d in self.differences if d.severity == "soft"]

    def failed(self, wall_hard: bool = False) -> bool:
        if self.hard_failures:
            return True
        return wall_hard and bool(self.soft_failures)

    def render(self) -> str:
        """Human-readable verdict: a diff table when something drifted,
        a one-line all-clear otherwise."""
        from ..report.tables import render_table

        lines: List[str] = []
        if self.differences:
            rows = [
                [d.bench, d.field, _fmt(d.baseline), _fmt(d.current),
                 d.severity.upper(), d.message]
                for d in self.differences
            ]
            lines.append(
                render_table(
                    ["bench", "field", "baseline", "current", "kind", "note"],
                    rows,
                    title="Regression gate: drifts against the committed baseline",
                )
            )
        summary = (
            f"checked {len(self.checked)} bench(es): "
            f"{len(self.hard_failures)} hard, "
            f"{len(self.soft_failures)} soft "
            f"(wall tolerance {self.wall_tolerance:g}x)"
        )
        lines.append(summary)
        if not self.differences:
            lines.append("OK: current results match the baseline")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6f}"
    if value is None:
        return "-"
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


def load_results_records(results_dir: _PathLike) -> Dict[str, Dict[str, Any]]:
    """All ``*.json`` telemetry records of a results directory, keyed
    by bench name.  Files that are not schema-versioned records raise
    :class:`~repro.errors.RegressionError` naming the file — stale
    pre-ledger results must be regenerated, not half-compared."""
    directory = pathlib.Path(results_dir)
    if not directory.is_dir():
        raise RegressionError(f"results directory {directory} does not exist")
    records: Dict[str, Dict[str, Any]] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise RegressionError(f"{path}: not valid JSON ({error})") from error
        try:
            validate_record(record)
        except LedgerError as error:
            raise RegressionError(
                f"{path}: not a schema-versioned bench record ({error}); "
                "regenerate results with `make bench`"
            ) from error
        records[str(record["name"])] = record
    if not records:
        raise RegressionError(
            f"no *.json bench records found under {directory}"
        )
    return records


def _flatten(prefix: str, value: Any) -> List[Tuple[str, Any]]:
    """Dotted-path leaves of a nested payload, in sorted key order."""
    if isinstance(value, Mapping):
        items: List[Tuple[str, Any]] = []
        for key in sorted(value):
            path = f"{prefix}.{key}" if prefix else str(key)
            items.extend(_flatten(path, value[key]))
        return items
    if isinstance(value, list):
        items = []
        for index, element in enumerate(value):
            items.extend(_flatten(f"{prefix}[{index}]", element))
        return items
    return [(prefix, value)]


def compare_records(
    baseline: Mapping[str, Mapping[str, Any]],
    current: Mapping[str, Mapping[str, Any]],
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    wall_floor: float = DEFAULT_WALL_FLOOR,
) -> GateReport:
    """Compare current bench records against baseline records.

    Stable payloads must match exactly (hard).  Per-phase wall-clock
    totals may grow up to ``wall_tolerance`` times their baseline
    before a soft finding is raised; phases whose baseline total is
    below ``wall_floor`` seconds are ignored.
    """
    report = GateReport(wall_tolerance=wall_tolerance)
    for name in sorted(baseline):
        if name not in current:
            report.differences.append(
                Difference(name, "-", "present", "missing", "hard",
                           "bench result file missing")
            )
            continue
        report.checked.append(name)
        base_leaves = dict(_flatten("", baseline[name].get("payload", {})))
        curr_leaves = dict(_flatten("", current[name].get("payload", {})))
        for path in sorted(set(base_leaves) | set(curr_leaves)):
            in_base, in_curr = path in base_leaves, path in curr_leaves
            if not in_curr:
                report.differences.append(
                    Difference(name, path, base_leaves[path], None, "hard",
                               "payload field disappeared")
                )
            elif not in_base:
                report.differences.append(
                    Difference(name, path, None, curr_leaves[path], "hard",
                               "payload field appeared")
                )
            elif base_leaves[path] != curr_leaves[path]:
                report.differences.append(
                    Difference(name, path, base_leaves[path],
                               curr_leaves[path], "hard",
                               "correctness number drifted")
                )
        _compare_wall_clock(
            report, name, baseline[name], current[name],
            wall_tolerance, wall_floor,
        )
    for name in sorted(set(current) - set(baseline)):
        report.differences.append(
            Difference(name, "-", None, "present", "info",
                       "new bench (not in baseline); record a new baseline")
        )
    return report


def _phase_totals(record: Mapping[str, Any]) -> Dict[str, float]:
    phases = record.get("timing", {}).get("phase_wall_clock", {})
    totals: Dict[str, float] = {}
    for phase, stats in phases.items():
        if isinstance(stats, Mapping) and isinstance(
            stats.get("total"), (int, float)
        ):
            totals[str(phase)] = float(stats["total"])
    return totals


def _compare_wall_clock(
    report: GateReport,
    name: str,
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    tolerance: float,
    floor: float,
) -> None:
    base_totals = _phase_totals(baseline)
    curr_totals = _phase_totals(current)
    for phase in sorted(set(base_totals) & set(curr_totals)):
        base_total = base_totals[phase]
        if base_total < floor:
            continue
        curr_total = curr_totals[phase]
        if curr_total > base_total * tolerance:
            report.differences.append(
                Difference(
                    name, f"wall:{phase}", base_total, curr_total, "soft",
                    f"wall clock grew {curr_total / base_total:.1f}x "
                    f"(tolerance {tolerance:g}x)",
                )
            )


def run_gate(
    results_dir: _PathLike,
    baseline_file: _PathLike,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    wall_floor: float = DEFAULT_WALL_FLOOR,
) -> GateReport:
    """Load both sides and compare — the whole ``bench-check`` core."""
    baseline_records = load_records(baseline_file)
    if not baseline_records:
        raise RegressionError(
            f"no baseline records in {baseline_file}; record one with "
            "`repro bench-check --update-baseline` and commit it"
        )
    return compare_records(
        latest_by_name(baseline_records),
        load_results_records(results_dir),
        wall_tolerance=wall_tolerance,
        wall_floor=wall_floor,
    )
