"""Stdlib logging wiring for the ``repro`` package.

The library logs under the ``repro.*`` logger hierarchy and never
configures handlers on import (library etiquette).  Applications — the
CLI, the benchmark harness, user scripts — call :func:`logging_setup`
once; the ``REPRO_LOG`` environment variable overrides the level
(``REPRO_LOG=debug python -m repro ...``).
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO, Optional, Union

__all__ = ["logging_setup", "LOGGER_NAME"]

LOGGER_NAME = "repro"

_LEVELS = {
    "critical": logging.CRITICAL,
    "error": logging.ERROR,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "info": logging.INFO,
    "debug": logging.DEBUG,
}

_HANDLER_MARK = "_repro_logging_setup"


def logging_setup(
    level: Optional[Union[int, str]] = None,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger and return it.

    Precedence for the effective level: the ``REPRO_LOG`` environment
    variable (``debug``/``info``/``warning``/``error``/``critical``,
    case-insensitive) beats the ``level`` argument, which beats the
    default ``WARNING``.  An unrecognised ``REPRO_LOG`` value falls
    back to the argument/default and earns a one-line warning rather
    than an exception — observability must never take the program down.

    Calling this repeatedly is safe: the stream handler is installed at
    most once (re-calls only adjust the level).
    """
    logger = logging.getLogger(LOGGER_NAME)

    effective: Union[int, str] = level if level is not None else logging.WARNING
    if isinstance(effective, str):
        effective = _LEVELS.get(effective.lower(), logging.WARNING)

    env_value = os.environ.get("REPRO_LOG")
    bad_env = None
    if env_value:
        env_level = _LEVELS.get(env_value.strip().lower())
        if env_level is not None:
            effective = env_level
        else:
            bad_env = env_value

    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_MARK, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        setattr(handler, _HANDLER_MARK, True)
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)

    if bad_env is not None:
        # Emit before applying a possibly more restrictive level, so the
        # complaint is visible even when the effective level is ERROR+.
        logger.setLevel(logging.WARNING)
        logger.warning(
            "REPRO_LOG=%r is not a recognised level (expected one of %s); "
            "keeping %s",
            bad_env,
            "/".join(sorted(set(_LEVELS) - {"warn"})),
            logging.getLevelName(effective),
        )
    logger.setLevel(effective)
    return logger
