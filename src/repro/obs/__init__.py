"""Observability: structured simulator tracing, metrics and logging.

This package turns every simulation into an inspectable timeline and
gives the performance work a measurement substrate:

* :mod:`repro.obs.events` — structured event API (``FiringStarted``,
  ``FiringCompleted``, ``StateSnapshot``, ``FrustumDetected``,
  ``PhaseTimer``) behind an opt-in :class:`Instrumentation` hub whose
  default, :data:`NULL_INSTRUMENTATION`, is a falsy no-op — hot loops
  pay a single pointer check when tracing is off;
* :mod:`repro.obs.trace` — JSONL and Chrome/Perfetto trace sinks (one
  track per transition, one slice per firing: the paper's behavior
  graph rendered by a trace viewer), streaming + crash-tolerant;
* :mod:`repro.obs.spans` — cross-process span tracing: ``Span`` records
  with trace/span/parent ids, the context-manager ``Tracer`` API (no-op
  :data:`NULL_TRACER` default), ``TraceContext`` propagation into sweep
  workers, and durable per-worker JSONL span shards;
* :mod:`repro.obs.trace_merge` — merges worker span shards plus the
  parent's spans into one Chrome/Perfetto trace with one lane per
  worker (deterministic order, clock-skew normalization);
* :mod:`repro.obs.metrics` — counters/gauges/histograms/
  ``perf_counter`` timers with a ``@timed`` decorator and a
  JSON-dumpable registry;
* :mod:`repro.obs.openmetrics` — OpenMetrics text exposition of any
  registry (``repro sweep --metrics-out``, ``repro metrics``), with
  spec-compliant label-value escaping;
* :mod:`repro.obs.causality` — the enabling DAG of a traced run (one
  node per firing, one edge per consumed token) plus the wait-state
  decomposition; the substrate of ``repro explain``
  (:mod:`repro.core.blame`);
* :mod:`repro.obs.logging_setup` — stdlib logging wiring with a
  ``REPRO_LOG`` environment override;
* :mod:`repro.obs.schema` / :mod:`repro.obs.ledger` — the normalized,
  schema-versioned run-record format and the append-only JSONL run
  ledger under ``benchmarks/ledger/``;
* :mod:`repro.obs.regression` — the benchmark regression gate behind
  ``repro bench-check`` (hard failures on correctness drift, soft
  reports on wall-clock growth).

Quick use::

    from repro import compile_loop
    from repro.obs import Instrumentation, ChromeTraceSink

    obs = Instrumentation()
    obs.add_sink(ChromeTraceSink("trace.json"))
    compile_loop(source, instrumentation=obs)
    obs.close()          # open trace.json in ui.perfetto.dev
"""

from .events import (
    Event,
    EventSink,
    FiringCompleted,
    FiringStarted,
    FrustumDetected,
    Instrumentation,
    ListSink,
    NullInstrumentation,
    NULL_INSTRUMENTATION,
    PhaseTimer,
    StateSnapshot,
)
from .causality import (
    EnablingDag,
    EnablingEdge,
    Firing,
    WaitProfile,
    build_enabling_dag,
    wait_profiles,
)
from .logging_setup import logging_setup
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    time_block,
    timed,
)
from .openmetrics import (
    dump_from_record,
    escape_label_value,
    format_labels,
    parse_exposition,
    parse_labels,
    render_openmetrics,
    sanitize_metric_name,
)
from .spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanShardWriter,
    TraceContext,
    Tracer,
    read_shard,
    shard_paths,
)
from .trace_merge import load_merged_spans, merge_traces, write_trace
from .ledger import (
    BASELINE_FILE,
    RUNS_FILE,
    append_record,
    default_ledger_dir,
    environment_info,
    git_sha,
    latest_by_name,
    load_records,
    make_run_record,
    resolve_env_dir,
)
from .regression import (
    Difference,
    GateReport,
    compare_records,
    load_results_records,
    run_gate,
)
from .schema import (
    SCHEMA_VERSION,
    normalize_payload,
    stable_json,
    validate_record,
)
from .trace import ChromeTraceSink, JsonlTraceSink, load_trace_events

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanShardWriter",
    "read_shard",
    "shard_paths",
    "merge_traces",
    "write_trace",
    "load_merged_spans",
    "load_trace_events",
    "Gauge",
    "render_openmetrics",
    "dump_from_record",
    "parse_exposition",
    "sanitize_metric_name",
    "escape_label_value",
    "format_labels",
    "parse_labels",
    "EnablingDag",
    "EnablingEdge",
    "Firing",
    "WaitProfile",
    "build_enabling_dag",
    "wait_profiles",
    "Event",
    "EventSink",
    "FiringStarted",
    "FiringCompleted",
    "StateSnapshot",
    "FrustumDetected",
    "PhaseTimer",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "ListSink",
    "JsonlTraceSink",
    "ChromeTraceSink",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "timed",
    "time_block",
    "logging_setup",
    "SCHEMA_VERSION",
    "normalize_payload",
    "stable_json",
    "validate_record",
    "BASELINE_FILE",
    "RUNS_FILE",
    "append_record",
    "default_ledger_dir",
    "environment_info",
    "git_sha",
    "latest_by_name",
    "load_records",
    "make_run_record",
    "resolve_env_dir",
    "Difference",
    "GateReport",
    "compare_records",
    "load_results_records",
    "run_gate",
]
