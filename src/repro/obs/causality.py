"""The enabling DAG: causal structure reconstructed from firing events.

The paper's argument is causal — under the earliest firing rule every
firing starts exactly when its last constraint is satisfied, and the
achieved rate is pinned to the critical cycle ``C*`` those constraints
trace out.  This module materializes that structure from the event
stream both simulation engines emit:

* one :class:`Firing` node per behavior-graph transition instance
  (from ``FiringStarted``);
* one :class:`EnablingEdge` per consumed token (from the
  ``FiringStarted.consumed`` provenance), annotated with the edge
  *kind* — forward data, feedback data, acknowledgement, or the SCP
  run-place/resource token — and the *slack* between token arrival and
  firing start;
* one implicit ``"self"`` edge per consecutive firing pair of the same
  transition — Assumption A.6.1's non-reentrance constraint (the
  paper's implicit one-token self-loop).

A firing's **binding edge** is its last-arriving constraint (slack 0
in steady state); walking binding edges backward yields the observed
critical path, which :mod:`repro.core.blame` compares against the
structural critical cycles of :mod:`repro.petrinet.analysis` /
:mod:`repro.petrinet.howard`.

:func:`wait_profiles` decomposes every transition's timeline into
executing / data-wait / feedback-wait / ack-wait / resource-wait /
idle components.  The decomposition *tiles* the simulated horizon: for
each transition the components sum exactly to the total simulated
time, a property the test suite asserts with hypothesis-generated
nets.

>>> from repro.obs.events import FiringStarted, FiringCompleted
>>> events = [
...     FiringStarted(0, "a", 2, (("q", 0, ""),)),
...     FiringCompleted(2, "a", 2),
...     FiringStarted(2, "b", 1, (("p", 2, "a"),)),
...     FiringCompleted(3, "b", 1),
... ]
>>> dag = build_enabling_dag(events)
>>> edge = dag.binding_edge(dag.firings[1])
>>> (edge.place, edge.source.transition, edge.slack)
('p', 'a', 0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .events import Event, FiringCompleted, FiringStarted
from .metrics import Histogram

__all__ = [
    "EDGE_DATA",
    "EDGE_FEEDBACK",
    "EDGE_ACK",
    "EDGE_RESOURCE",
    "EDGE_SELF",
    "WAIT_KINDS",
    "Firing",
    "EnablingEdge",
    "EnablingDag",
    "WaitProfile",
    "build_enabling_dag",
    "default_classifier",
    "wait_profiles",
]

#: Edge kinds: the four token flavours of the SDSP(-SCP)-PN plus the
#: implicit non-reentrance constraint.
EDGE_DATA = "data"
EDGE_FEEDBACK = "feedback"
EDGE_ACK = "ack"
EDGE_RESOURCE = "resource"
EDGE_SELF = "self"

#: Wait-state categories a firing can be blocked on, in report order.
WAIT_KINDS = (EDGE_DATA, EDGE_FEEDBACK, EDGE_ACK, EDGE_RESOURCE, EDGE_SELF)


@dataclass(frozen=True)
class Firing:
    """One transition instance: ``transition`` started at ``start`` and
    occupied ``duration`` cycles; ``index`` counts this transition's
    firings from 0."""

    transition: str
    start: int
    duration: int
    index: int

    @property
    def end(self) -> int:
        return self.start + self.duration

    @property
    def label(self) -> str:
        """Human-readable instance name, e.g. ``E@14``."""
        return f"{self.transition}@{self.start}"


@dataclass(frozen=True)
class EnablingEdge:
    """One enabling constraint of ``target``.

    For token edges, ``place`` names the place the token crossed,
    ``arrival`` is its birth time and ``source`` the firing whose
    completion deposited it (``None`` for initial-marking tokens).
    For the implicit ``"self"`` edge, ``place`` is ``None``, ``source``
    is the previous firing of the same transition and ``arrival`` its
    completion time.  ``slack = target.start - arrival``; the binding
    (last-arriving) edge of a firing has the minimum slack.
    """

    target: Firing
    kind: str
    arrival: int
    slack: int
    place: Optional[str] = None
    source: Optional[Firing] = None

    def describe(self) -> str:
        """One line of a causal chain, e.g.
        ``E@4 <- data d[C.0->E.0] from C@3 (arrival 4, slack 0)``."""
        if self.kind == EDGE_SELF:
            origin = (
                f"non-reentrance after {self.source.label}"
                if self.source is not None
                else "non-reentrance"
            )
        else:
            born = (
                f"from {self.source.label}"
                if self.source is not None
                else "from the initial marking"
            )
            origin = f"{self.kind} {self.place} {born}"
        return (
            f"{self.target.label} <- {origin} "
            f"(arrival {self.arrival}, slack {self.slack})"
        )


def default_classifier(place: str) -> str:
    """Name-based edge-kind heuristic for streams replayed without the
    net at hand: SDSP ack places are ``a[...]``, the SCP run place is
    ``p_run``, everything else is forward data.  Feedback places can
    only be told apart from forward data with the initial marking — use
    :func:`repro.core.blame.classifier_for` when the net is available.
    """
    if place == "p_run":
        return EDGE_RESOURCE
    if place.startswith("a["):
        return EDGE_ACK
    return EDGE_DATA


class EnablingDag:
    """The enabling DAG of one run: time-ordered :attr:`firings`, the
    in-edges of each, and the simulated ``horizon`` (the latest firing
    completion, i.e. the makespan the wait decomposition tiles)."""

    def __init__(
        self,
        firings: List[Firing],
        edges: Dict[Firing, Tuple[EnablingEdge, ...]],
        horizon: int,
    ) -> None:
        self.firings = firings
        self.edges = edges
        self.horizon = horizon
        self.by_transition: Dict[str, List[Firing]] = {}
        for firing in firings:
            self.by_transition.setdefault(firing.transition, []).append(firing)

    def in_edges(self, firing: Firing) -> Tuple[EnablingEdge, ...]:
        return self.edges.get(firing, ())

    def binding_edge(self, firing: Firing) -> Optional[EnablingEdge]:
        """The last-arriving constraint of ``firing`` — the edge a blame
        query walks.  Ties prefer token edges over the implicit self
        edge (a token names a cause, non-reentrance merely repeats the
        transition), then break deterministically by place name."""
        candidates = self.edges.get(firing, ())
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda e: (e.arrival, e.kind != EDGE_SELF, e.place or ""),
        )

    def blame_chain(
        self, firing: Firing, limit: int = 64
    ) -> List[EnablingEdge]:
        """Walk binding edges backward from ``firing``: the causal chain
        of last-arriving tokens.  Stops at an initial-marking token, at
        time 0, or after ``limit`` hops."""
        chain: List[EnablingEdge] = []
        node = firing
        while len(chain) < limit:
            edge = self.binding_edge(node)
            if edge is None:
                break
            chain.append(edge)
            if edge.source is None:
                break
            node = edge.source
        return chain

    def last_firing(self) -> Optional[Firing]:
        """The latest firing of the run (ties broken by transition name
        so blame queries are deterministic)."""
        if not self.firings:
            return None
        return max(self.firings, key=lambda f: (f.start, f.transition))


def build_enabling_dag(
    events: Iterable[Event],
    classify: Optional[Callable[[str], str]] = None,
) -> EnablingDag:
    """Reconstruct the enabling DAG from an instrumented run's event
    stream (both engines emit identical streams).

    ``classify`` maps a place name to an edge kind; the default is the
    name-based :func:`default_classifier`.  Events other than
    ``FiringStarted``/``FiringCompleted`` are ignored, and firings
    without ``consumed`` provenance contribute nodes but no token
    edges.
    """
    if classify is None:
        classify = default_classifier
    firings: List[Firing] = []
    edges: Dict[Firing, Tuple[EnablingEdge, ...]] = {}
    last: Dict[str, Firing] = {}
    counts: Dict[str, int] = {}
    in_flight: Dict[str, Firing] = {}
    completions: Dict[Tuple[str, int], Firing] = {}
    horizon = 0
    for event in events:
        if isinstance(event, FiringCompleted):
            node = in_flight.pop(event.transition, None)
            if node is not None:
                # non-reentrance: at most one completion per
                # (transition, time), so the key is unambiguous
                completions[(event.transition, event.time)] = node
        elif isinstance(event, FiringStarted):
            index = counts.get(event.transition, 0)
            counts[event.transition] = index + 1
            node = Firing(event.transition, event.time, event.duration, index)
            in_edges: List[EnablingEdge] = []
            previous = last.get(event.transition)
            if previous is not None:
                in_edges.append(
                    EnablingEdge(
                        target=node,
                        kind=EDGE_SELF,
                        arrival=previous.end,
                        slack=node.start - previous.end,
                        source=previous,
                    )
                )
            for entry in event.consumed or ():
                place, birth, producer = entry
                source = (
                    completions.get((producer, birth)) if producer else None
                )
                in_edges.append(
                    EnablingEdge(
                        target=node,
                        kind=classify(place),
                        arrival=birth,
                        slack=node.start - birth,
                        place=place,
                        source=source,
                    )
                )
            firings.append(node)
            edges[node] = tuple(in_edges)
            last[event.transition] = node
            in_flight[event.transition] = node
            if node.end > horizon:
                horizon = node.end
    return EnablingDag(firings, edges, horizon)


@dataclass
class WaitProfile:
    """Where one transition's cycles went over ``[0, horizon)``.

    ``executing`` counts in-flight cycles, ``waits[kind]`` the cycles
    spent blocked on the last-arriving token of that kind, and ``idle``
    the tail after the final completion (plus the whole horizon for a
    transition that never fired).  By construction ``executing +
    sum(waits) + idle == horizon`` — the components are a partition of
    the transition's timeline, not estimates.  ``percentiles[kind]``
    carries p50/p95 of the per-firing wait of that kind (over *all*
    firings, zeros included), computed by the shared
    :class:`~repro.obs.metrics.Histogram`.
    """

    transition: str
    horizon: int
    firings: int = 0
    executing: int = 0
    idle: int = 0
    waits: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in WAIT_KINDS}
    )
    percentiles: Dict[str, Dict[str, Optional[float]]] = field(
        default_factory=dict
    )

    @property
    def total(self) -> int:
        return self.executing + self.idle + sum(self.waits.values())

    def to_payload(self) -> Dict[str, Any]:
        return {
            "firings": self.firings,
            "executing": self.executing,
            "idle": self.idle,
            "waits": dict(self.waits),
            "percentiles": {
                kind: dict(stats)
                for kind, stats in sorted(self.percentiles.items())
            },
        }


def wait_profiles(
    dag: EnablingDag,
    transitions: Optional[Sequence[str]] = None,
    horizon: Optional[int] = None,
) -> Dict[str, WaitProfile]:
    """Decompose every transition's timeline into wait states.

    Per firing, the window from its *ready* instant (the previous
    firing's completion, or 0) to its start is partitioned at the
    consumed tokens' clipped arrival instants; each segment is
    attributed to the token that ended it — "these cycles were spent
    waiting for that arrival".  Under the earliest firing rule the
    start *is* the last clipped arrival (nothing else can delay an
    enabled, idle transition; a lost SCP conflict surfaces as a later
    run-place token birth), so the segments tile the window exactly.
    Any residue from a foreign event stream is attributed to the
    binding edge rather than silently dropped, keeping the tiling
    invariant unconditional.
    """
    if horizon is None:
        horizon = dag.horizon
    names = list(
        transitions if transitions is not None else sorted(dag.by_transition)
    )
    profiles: Dict[str, WaitProfile] = {}
    for name in names:
        profile = WaitProfile(transition=name, horizon=horizon)
        nodes = dag.by_transition.get(name, [])
        profile.firings = len(nodes)
        histograms = {kind: Histogram(kind) for kind in WAIT_KINDS}
        clock = 0  # start of this firing's accountability window
        for node in nodes:
            ready = clock
            per_firing = {kind: 0 for kind in WAIT_KINDS}
            token_edges = sorted(
                (
                    edge
                    for edge in dag.in_edges(node)
                    if edge.kind != EDGE_SELF
                ),
                key=lambda e: (max(e.arrival, ready), e.place or ""),
            )
            cursor = ready
            for edge in token_edges:
                arrival = max(edge.arrival, ready)
                if arrival > cursor:
                    per_firing[edge.kind] += arrival - cursor
                    cursor = arrival
            if cursor < node.start:  # residue; see the docstring
                binding = dag.binding_edge(node)
                kind = binding.kind if binding is not None else EDGE_SELF
                per_firing[kind] += node.start - cursor
            for kind, cycles in per_firing.items():
                profile.waits[kind] += cycles
                histograms[kind].observe(cycles)
            profile.executing += min(node.end, horizon) - node.start
            clock = node.end
        profile.idle = max(horizon - clock, 0)
        profile.percentiles = {
            kind: {
                "p50": histogram.percentile(50),
                "p95": histogram.percentile(95),
            }
            for kind, histogram in histograms.items()
            if histogram.count
        }
        profiles[name] = profile
    return profiles
