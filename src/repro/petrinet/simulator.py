"""Discrete-time simulator for timed Petri nets under the earliest
firing rule (Assumption A.6.2).

The simulator advances in unit time steps.  Within the step at time
``u`` it performs, in order:

1. **Completion** — every transition whose firing finishes at ``u``
   deposits one token on each of its output places.
2. **Snapshot** — the instantaneous state ``(marking, residual
   firing-time vector, policy key)`` is captured.  Because the net is
   deterministic from here on (earliest firing + a deterministic
   conflict-resolution policy), this snapshot fully determines the
   future — which is exactly what frustum detection exploits.
3. **Firing** — the enabled, idle transitions are offered to the
   conflict-resolution policy; each selected transition consumes one
   token per input place and is scheduled to complete at
   ``u + τ``.  Selection is *greedy with re-check*: a transition is
   fired only if it is still enabled after earlier selections in the
   same step consumed their tokens, so structural conflicts (the SCP
   run place) are resolved correctly.

Assumption A.6.1 (non-reentrance) is enforced by keeping at most one
in-flight firing per transition, equivalent to the paper's implicit
one-token self-loops.

The event-driven alternative — same rule, same snapshots, but jumping
straight between completion instants — is
:class:`repro.petrinet.event_sim.EventDrivenSimulator`.

>>> from repro.petrinet import PetriNet, Marking, TimedPetriNet
>>> net = PetriNet(name="ring")
>>> for t in ("a", "b"):
...     _ = net.add_transition(t)
>>> for place, (src, dst) in [("p", ("a", "b")), ("q", ("b", "a"))]:
...     _ = net.add_place(place)
...     _ = net.add_arc(src, place)
...     _ = net.add_arc(place, dst)
>>> sim = EarliestFiringSimulator(
...     TimedPetriNet(net, {"a": 2, "b": 1}), Marking({"p": 1}))
>>> record = sim.step()          # time 0: p feeds b, which fires
>>> record.fired
('b',)
>>> sim.step().fired             # b needs 1 cycle; a fires at time 1
('a',)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..obs.events import (
    FiringCompleted,
    FiringStarted,
    Instrumentation,
    StateSnapshot,
)
from .marking import Marking
from .net import PetriNet
from .timed import InstantaneousState, TimedPetriNet

__all__ = [
    "ConflictResolutionPolicy",
    "FireAllPolicy",
    "StepRecord",
    "EarliestFiringSimulator",
]


class ConflictResolutionPolicy:
    """Interface for deterministic conflict resolution.

    Persistent nets (marked graphs) never present a choice, so the
    default :class:`FireAllPolicy` fires every candidate.  Nets with
    structural conflict — the SDSP-SCP-PN — need a real policy; the
    paper's Assumption 5.2.1 only requires the policy to be a
    deterministic function of the machine's instantaneous state, which
    is why :meth:`state_key` feeds into the state hash used for frustum
    detection.
    """

    def reset(self) -> None:
        """Forget all internal state (called when a simulation starts)."""

    def begin_step(self, time: int, marking: Marking, idle: Sequence[str]) -> None:
        """Observe the post-completion state of the net at ``time``.
        ``idle`` lists transitions that are not currently in flight.

        **Event-engine contract.**  The event-driven engine
        (:class:`repro.petrinet.event_sim.EventDrivenSimulator`) only
        calls this at *event* instants — times when a firing completes
        or the net starts.  An override must therefore be a no-op on
        quiet ticks: between events no transition completes and none
        fires, so the marking and in-flight set it would observe are
        unchanged from the previous event, and any state it would
        accumulate from them is already accumulated.  Both shipped
        policies satisfy this (:class:`FireAllPolicy` and
        :class:`~repro.machine.policies.StaticPriorityPolicy` do not
        override it; :class:`~repro.machine.policies.FifoRunPlacePolicy`
        only reacts to newly data-ready transitions, which appear only
        at events).  A policy that genuinely depends on wall-clock
        ``time`` at quiet ticks would break step/event equivalence —
        don't write one.
        """

    def order(self, candidates: Sequence[str]) -> List[str]:
        """Return the candidates in the order firing should be
        attempted.  The simulator re-checks enabledness before each
        firing, so returning every candidate is always safe."""
        return list(candidates)

    def notify_fired(self, transition: str) -> None:
        """Called for each transition actually fired this step."""

    def state_key(self) -> Tuple:
        """Hashable internal-state summary, merged into the
        instantaneous state."""
        return ()


class FireAllPolicy(ConflictResolutionPolicy):
    """Fire every enabled idle transition — the earliest firing rule on
    a persistent net, where this is the unique maximal choice."""


@dataclass(frozen=True)
class StepRecord:
    """What happened during one simulated time step.

    ``state`` is the instantaneous state *after* completions and
    *before* firings — the canonical snapshot point described in the
    module docstring.
    """

    time: int
    completed: Tuple[str, ...]
    fired: Tuple[str, ...]
    state: InstantaneousState


class EarliestFiringSimulator:
    """Step-by-step executor for a :class:`TimedPetriNet`.

    Parameters
    ----------
    timed_net:
        The net with execution times.
    initial:
        Initial marking ``M0``.
    policy:
        Conflict-resolution policy; defaults to firing everything,
        which is correct exactly when the net is persistent.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation`.  When given (and
        enabled), every step emits :class:`FiringCompleted`,
        :class:`StateSnapshot` and :class:`FiringStarted` events in
        intra-step order.  The default no-op costs one pointer check
        per step.
    """

    def __init__(
        self,
        timed_net: TimedPetriNet,
        initial: Marking,
        policy: Optional[ConflictResolutionPolicy] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.timed_net = timed_net
        self.net: PetriNet = timed_net.net
        self.policy = policy if policy is not None else FireAllPolicy()
        # A falsy instrumentation (None or NULL_INSTRUMENTATION)
        # collapses to None so step() guards with one identity check.
        self._obs: Optional[Instrumentation] = (
            instrumentation if instrumentation else None
        )
        self._initial = initial
        self.reset()

    def reset(self) -> None:
        """Return to time 0 with the initial marking and no in-flight
        firings."""
        self.time = 0
        self.marking = self._initial
        # transition -> absolute completion time
        self._in_flight: Dict[str, int] = {}
        self.total_firings: Dict[str, int] = {
            t: 0 for t in self.net.transition_names
        }
        # Token provenance, kept only when instrumentation is attached:
        # per place, a FIFO of (birth time, producing transition) for
        # every token currently on it ("" marks initial-marking tokens).
        # Deposits append, firings pop — the same FIFO matching as
        # BehaviorRecorder, so FiringStarted.consumed agrees with the
        # behavior graph's consumption arcs.
        self._births: Optional[Dict[str, List[Tuple[int, str]]]] = (
            {
                p: [(0, "")] * self._initial[p]
                for p in self.net.place_names
            }
            if self._obs is not None
            else None
        )
        self.policy.reset()
        self._check_policy_key()

    def _check_policy_key(self) -> None:
        """Assert the policy's ``state_key`` is hashable.

        The key is merged into every :class:`InstantaneousState` (see
        :meth:`snapshot`), and frustum detection uses those states as
        dict keys — an unhashable key would only explode deep inside
        detection, so fail fast here with a pointed message instead.
        Checked once per reset to keep it off the per-step hot path.
        """
        key = self.policy.state_key()
        try:
            hash(key)
        except TypeError:
            raise SimulationError(
                f"policy {type(self.policy).__name__} returned an unhashable "
                f"state_key {key!r}; frustum detection hashes the "
                "instantaneous state (marking, residuals, policy key), so "
                "state_key() must return a hashable tuple"
            ) from None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> Dict[str, int]:
        """Copy of the map from busy transitions to completion times."""
        return dict(self._in_flight)

    def residuals(self) -> Dict[str, int]:
        """Remaining execution time per busy transition, relative to the
        current time."""
        return {t: finish - self.time for t, finish in self._in_flight.items()}

    def snapshot(self) -> InstantaneousState:
        """Instantaneous state at the canonical point of the current
        step (post-completion / pre-firing when called from
        :meth:`step`).

        The policy's ``state_key()`` is part of the returned state and
        therefore part of the hash used by frustum detection: per
        Assumption 5.2.1 the machine's choices must be a deterministic
        function of its instantaneous state, so any policy-internal
        memory (e.g. the SCP FIFO queue) has to be in the state for a
        repeated snapshot to really imply repeated behaviour.
        Hashability of the key is asserted at :meth:`reset` time.
        """
        return InstantaneousState.make(
            self.marking, self.residuals(), self.policy.state_key()
        )

    def is_deadlocked(self) -> bool:
        """No in-flight work and nothing enabled."""
        return not self._in_flight and not self._enabled_idle()

    def _enabled_idle(self) -> List[str]:
        enabled = []
        for transition in self.net.transition_names:
            if transition in self._in_flight:
                continue
            if all(self.marking[p] > 0 for p in self.net.input_places(transition)):
                enabled.append(transition)
        return enabled

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Advance one time unit; see the module docstring for the
        intra-step ordering."""
        now = self.time
        obs = self._obs

        # 1. completions
        completed = tuple(
            sorted(t for t, finish in self._in_flight.items() if finish == now)
        )
        if completed:
            deltas: Dict[str, int] = {}
            for transition in completed:
                del self._in_flight[transition]
                for place in self.net.output_places(transition):
                    deltas[place] = deltas.get(place, 0) + 1
            self.marking = self.marking.with_delta(deltas)
            if obs is not None:
                births = self._births
                for transition in completed:
                    for place in self.net.output_places(transition):
                        births[place].append((now, transition))
                    obs.emit(
                        FiringCompleted(
                            now, transition, self.timed_net.duration(transition)
                        )
                    )

        # 2. snapshot (also lets the policy observe the state)
        idle = [
            t for t in self.net.transition_names if t not in self._in_flight
        ]
        self.policy.begin_step(now, self.marking, idle)
        state = self.snapshot()
        if obs is not None:
            obs.emit(
                StateSnapshot(
                    now,
                    tuple(sorted(state.marking.items())),
                    state.residuals,
                    state.policy_key,
                )
            )

        # 3. firings, greedy with re-check in policy order
        candidates = self._enabled_idle()
        fired: List[str] = []
        for transition in self.policy.order(candidates):
            if transition in self._in_flight:
                continue
            inputs = self.net.input_places(transition)
            if not all(self.marking[p] > 0 for p in inputs):
                continue  # lost a structural conflict earlier this step
            duration = self.timed_net.duration(transition)
            if duration < 1:
                # A completion is detected by `finish == now`, so a
                # non-positive duration means the firing would complete
                # in the past (or this same step) and never be seen —
                # the transition stays in flight and run() spins to its
                # budget.  This only happens when the durations mapping
                # was mutated after TimedPetriNet validation.
                raise SimulationError(
                    f"transition {transition!r} has non-positive firing "
                    f"duration {duration}; durations must be >= 1 (was the "
                    "TimedPetriNet.durations mapping mutated?)"
                )
            self.marking = self.marking.with_delta({p: -1 for p in inputs})
            self._in_flight[transition] = now + duration
            self.total_firings[transition] += 1
            self.policy.notify_fired(transition)
            fired.append(transition)
            if obs is not None:
                births = self._births
                consumed = tuple(
                    (place, *births[place].pop(0)) for place in inputs
                )
                obs.emit(FiringStarted(now, transition, duration, consumed))

        self.time = now + 1
        return StepRecord(now, completed, tuple(fired), state)

    def run(
        self,
        max_steps: int,
        stop: Optional[Callable[[StepRecord], bool]] = None,
    ) -> List[StepRecord]:
        """Run up to ``max_steps`` steps, stopping early on deadlock or
        when ``stop(record)`` returns True.  Raises
        :class:`SimulationError` if a stop condition was requested but
        never met within the budget."""
        records: List[StepRecord] = []
        for _ in range(max_steps):
            if self.is_deadlocked():
                return records
            record = self.step()
            records.append(record)
            if stop is not None and stop(record):
                return records
        if stop is not None:
            raise SimulationError(
                f"stop condition not reached within {max_steps} steps"
            )
        return records
