"""Discrete-time simulator for timed Petri nets under the earliest
firing rule (Assumption A.6.2).

The simulator advances in unit time steps.  Within the step at time
``u`` it performs, in order:

1. **Completion** — every transition whose firing finishes at ``u``
   deposits one token on each of its output places.
2. **Snapshot** — the instantaneous state ``(marking, residual
   firing-time vector, policy key)`` is captured.  Because the net is
   deterministic from here on (earliest firing + a deterministic
   conflict-resolution policy), this snapshot fully determines the
   future — which is exactly what frustum detection exploits.
3. **Firing** — the enabled, idle transitions are offered to the
   conflict-resolution policy; each selected transition consumes one
   token per input place and is scheduled to complete at
   ``u + τ``.  Selection is *greedy with re-check*: a transition is
   fired only if it is still enabled after earlier selections in the
   same step consumed their tokens, so structural conflicts (the SCP
   run place) are resolved correctly.

Assumption A.6.1 (non-reentrance) is enforced by keeping at most one
in-flight firing per transition, equivalent to the paper's implicit
one-token self-loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .marking import Marking
from .net import PetriNet
from .timed import InstantaneousState, TimedPetriNet

__all__ = [
    "ConflictResolutionPolicy",
    "FireAllPolicy",
    "StepRecord",
    "EarliestFiringSimulator",
]


class ConflictResolutionPolicy:
    """Interface for deterministic conflict resolution.

    Persistent nets (marked graphs) never present a choice, so the
    default :class:`FireAllPolicy` fires every candidate.  Nets with
    structural conflict — the SDSP-SCP-PN — need a real policy; the
    paper's Assumption 5.2.1 only requires the policy to be a
    deterministic function of the machine's instantaneous state, which
    is why :meth:`state_key` feeds into the state hash used for frustum
    detection.
    """

    def reset(self) -> None:
        """Forget all internal state (called when a simulation starts)."""

    def begin_step(self, time: int, marking: Marking, idle: Sequence[str]) -> None:
        """Observe the post-completion state of the net at ``time``.
        ``idle`` lists transitions that are not currently in flight."""

    def order(self, candidates: Sequence[str]) -> List[str]:
        """Return the candidates in the order firing should be
        attempted.  The simulator re-checks enabledness before each
        firing, so returning every candidate is always safe."""
        return list(candidates)

    def notify_fired(self, transition: str) -> None:
        """Called for each transition actually fired this step."""

    def state_key(self) -> Tuple:
        """Hashable internal-state summary, merged into the
        instantaneous state."""
        return ()


class FireAllPolicy(ConflictResolutionPolicy):
    """Fire every enabled idle transition — the earliest firing rule on
    a persistent net, where this is the unique maximal choice."""


@dataclass(frozen=True)
class StepRecord:
    """What happened during one simulated time step.

    ``state`` is the instantaneous state *after* completions and
    *before* firings — the canonical snapshot point described in the
    module docstring.
    """

    time: int
    completed: Tuple[str, ...]
    fired: Tuple[str, ...]
    state: InstantaneousState


class EarliestFiringSimulator:
    """Step-by-step executor for a :class:`TimedPetriNet`.

    Parameters
    ----------
    timed_net:
        The net with execution times.
    initial:
        Initial marking ``M0``.
    policy:
        Conflict-resolution policy; defaults to firing everything,
        which is correct exactly when the net is persistent.
    """

    def __init__(
        self,
        timed_net: TimedPetriNet,
        initial: Marking,
        policy: Optional[ConflictResolutionPolicy] = None,
    ) -> None:
        self.timed_net = timed_net
        self.net: PetriNet = timed_net.net
        self.policy = policy if policy is not None else FireAllPolicy()
        self._initial = initial
        self.reset()

    def reset(self) -> None:
        """Return to time 0 with the initial marking and no in-flight
        firings."""
        self.time = 0
        self.marking = self._initial
        # transition -> absolute completion time
        self._in_flight: Dict[str, int] = {}
        self.total_firings: Dict[str, int] = {
            t: 0 for t in self.net.transition_names
        }
        self.policy.reset()

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> Dict[str, int]:
        """Copy of the map from busy transitions to completion times."""
        return dict(self._in_flight)

    def residuals(self) -> Dict[str, int]:
        """Remaining execution time per busy transition, relative to the
        current time."""
        return {t: finish - self.time for t, finish in self._in_flight.items()}

    def snapshot(self) -> InstantaneousState:
        """Instantaneous state at the canonical point of the current
        step (post-completion / pre-firing when called from
        :meth:`step`)."""
        return InstantaneousState.make(
            self.marking, self.residuals(), self.policy.state_key()
        )

    def is_deadlocked(self) -> bool:
        """No in-flight work and nothing enabled."""
        return not self._in_flight and not self._enabled_idle()

    def _enabled_idle(self) -> List[str]:
        enabled = []
        for transition in self.net.transition_names:
            if transition in self._in_flight:
                continue
            if all(self.marking[p] > 0 for p in self.net.input_places(transition)):
                enabled.append(transition)
        return enabled

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Advance one time unit; see the module docstring for the
        intra-step ordering."""
        now = self.time

        # 1. completions
        completed = tuple(
            sorted(t for t, finish in self._in_flight.items() if finish == now)
        )
        if completed:
            deltas: Dict[str, int] = {}
            for transition in completed:
                del self._in_flight[transition]
                for place in self.net.output_places(transition):
                    deltas[place] = deltas.get(place, 0) + 1
            self.marking = self.marking.with_delta(deltas)

        # 2. snapshot (also lets the policy observe the state)
        idle = [
            t for t in self.net.transition_names if t not in self._in_flight
        ]
        self.policy.begin_step(now, self.marking, idle)
        state = self.snapshot()

        # 3. firings, greedy with re-check in policy order
        candidates = self._enabled_idle()
        fired: List[str] = []
        for transition in self.policy.order(candidates):
            if transition in self._in_flight:
                continue
            inputs = self.net.input_places(transition)
            if not all(self.marking[p] > 0 for p in inputs):
                continue  # lost a structural conflict earlier this step
            self.marking = self.marking.with_delta({p: -1 for p in inputs})
            self._in_flight[transition] = now + self.timed_net.duration(transition)
            self.total_firings[transition] += 1
            self.policy.notify_fired(transition)
            fired.append(transition)

        self.time = now + 1
        return StepRecord(now, completed, tuple(fired), state)

    def run(
        self,
        max_steps: int,
        stop: Optional[Callable[[StepRecord], bool]] = None,
    ) -> List[StepRecord]:
        """Run up to ``max_steps`` steps, stopping early on deadlock or
        when ``stop(record)`` returns True.  Raises
        :class:`SimulationError` if a stop condition was requested but
        never met within the budget."""
        records: List[StepRecord] = []
        for _ in range(max_steps):
            if self.is_deadlocked():
                return records
            record = self.step()
            records.append(record)
            if stop is not None and stop(record):
                return records
        if stop is not None:
            raise SimulationError(
                f"stop condition not reached within {max_steps} steps"
            )
        return records
