"""Markings and the basic (untimed) firing rule.

A marking is a function ``M : P -> N`` (Appendix A.2).  The class below
is an immutable mapping with value semantics: two markings compare and
hash equal iff they assign the same token counts to the same places,
which is what reachability analysis and frustum detection rely on.

>>> m = Marking({"p": 1, "q": 0})
>>> m["p"], m["q"], m["unnamed"]
(1, 0, 0)
>>> m == Marking({"p": 1})           # zero counts are dropped
True
>>> sorted(m.with_delta({"p": -1, "q": 2}).items())
[('q', 2)]
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..errors import FiringError, MarkingError
from .net import PetriNet

__all__ = ["Marking", "enabled_transitions", "fire"]


class Marking(Mapping[str, int]):
    """An immutable token assignment over a net's places.

    Places not mentioned explicitly hold zero tokens.  Construction
    validates that counts are non-negative and, when a net is supplied,
    that every place named exists in the net.
    """

    __slots__ = ("_tokens", "_hash")

    def __init__(
        self,
        tokens: Optional[Mapping[str, int]] = None,
        net: Optional[PetriNet] = None,
    ) -> None:
        items: Dict[str, int] = {}
        if tokens:
            for place, count in tokens.items():
                if count < 0:
                    raise MarkingError(
                        f"negative token count {count} on place {place!r}"
                    )
                if net is not None and not net.has_place(place):
                    raise MarkingError(f"marking names unknown place {place!r}")
                if count:
                    items[place] = count
        self._tokens: Dict[str, int] = items
        self._hash: Optional[int] = None

    # Mapping protocol --------------------------------------------------
    def __getitem__(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, place: object) -> bool:
        return place in self._tokens

    # Value semantics ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._tokens == other._tokens
        if isinstance(other, Mapping):
            return self._tokens == {p: c for p, c in other.items() if c}
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._tokens.items()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{p}:{c}" for p, c in sorted(self._tokens.items()))
        return f"Marking({{{inner}}})"

    # Arithmetic helpers --------------------------------------------------
    def total(self) -> int:
        """Total number of tokens in the marking."""
        return sum(self._tokens.values())

    def with_delta(self, deltas: Mapping[str, int]) -> "Marking":
        """Return a new marking with ``deltas`` applied (may be negative);
        raises :class:`MarkingError` if any count would go negative."""
        updated = dict(self._tokens)
        for place, delta in deltas.items():
            new_count = updated.get(place, 0) + delta
            if new_count < 0:
                raise MarkingError(
                    f"token count on {place!r} would become {new_count}"
                )
            if new_count:
                updated[place] = new_count
            else:
                updated.pop(place, None)
        return Marking(updated)

    def dominates(self, other: "Marking") -> bool:
        """``self >= other`` pointwise — used for coverability checks."""
        for place, count in other._tokens.items():
            if self[place] < count:
                return False
        return True

    def strictly_dominates(self, other: "Marking") -> bool:
        """Pointwise ``>=`` with at least one strict inequality."""
        return self.dominates(other) and self._tokens != other._tokens

    def restricted_to(self, places: Iterable[str]) -> "Marking":
        """Projection onto a subset of places."""
        keep = set(places)
        return Marking({p: c for p, c in self._tokens.items() if p in keep})

    def as_tuple(self, place_order: Iterable[str]) -> Tuple[int, ...]:
        """Token counts in a fixed place order (for compact state keys)."""
        return tuple(self[p] for p in place_order)


def enabled_transitions(net: PetriNet, marking: Marking) -> Tuple[str, ...]:
    """Transitions enabled by ``marking``: every input place holds at
    least one token (``M -t->`` in the paper's notation).

    The result preserves the net's transition insertion order, which
    keeps downstream conflict-resolution policies deterministic.
    """
    enabled = []
    for transition in net.transition_names:
        if all(marking[p] > 0 for p in net.input_places(transition)):
            enabled.append(transition)
    return tuple(enabled)


def fire(net: PetriNet, marking: Marking, transition: str) -> Marking:
    """Fire one enabled transition atomically (untimed rule): remove one
    token from each input place and deposit one on each output place.

    Raises :class:`FiringError` if the transition is not enabled.
    """
    inputs = net.input_places(transition)
    for place in inputs:
        if marking[place] <= 0:
            raise FiringError(
                f"transition {transition!r} is not enabled: place {place!r} empty"
            )
    deltas: Dict[str, int] = {}
    for place in inputs:
        deltas[place] = deltas.get(place, 0) - 1
    for place in net.output_places(transition):
        deltas[place] = deltas.get(place, 0) + 1
    return marking.with_delta(deltas)
