"""Behavioural and structural Petri-net properties (Appendix A.3/A.4).

These are the definitions the paper's correctness claims rest on:

* **liveness** — from every reachable marking, every transition can
  eventually fire (the modelled system never deadlocks);
* **boundedness / safety** — token counts stay below a bound ``N``
  (safe: ``N = 1``), so the system has finitely many states;
* **persistence** — once two transitions are enabled together, firing
  one never disables the other (no choice); marked graphs are always
  persistent;
* **consistency** — a non-zero firing-count assignment reproduces the
  marking (Theorems A.4.1/A.4.2), the precondition for a *cycle time*
  to be meaningful.

All behavioural checks run on the explored reachability graph and are
therefore exact for bounded nets (every net this library builds is live
and safe by construction — the checks exist to *verify* that, and are
exercised heavily by the test suite).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import AnalysisError
from .marking import Marking, enabled_transitions, fire
from .net import PetriNet
from .reachability import ReachabilityGraph, explore

__all__ = [
    "is_live",
    "is_bounded",
    "bound_of",
    "is_safe",
    "is_persistent",
    "is_consistent",
    "consistent_firing_vector",
    "deadlocked_markings",
]


def _graph(
    net: PetriNet, initial: Marking, graph: Optional[ReachabilityGraph]
) -> ReachabilityGraph:
    if graph is None:
        graph = explore(net, initial)
    if not graph.complete:
        raise AnalysisError(
            "reachability exploration did not terminate (net unbounded or "
            "budget exceeded); behavioural properties are undecidable here"
        )
    return graph


def is_live(
    net: PetriNet,
    initial: Marking,
    graph: Optional[ReachabilityGraph] = None,
) -> bool:
    """Exact liveness on a bounded net.

    A marking is live iff from *every* reachable marking, every
    transition can still be fired eventually.  On the finite
    reachability graph this holds iff from every marking, every
    transition's firing is reachable.  We check it by computing, per
    transition ``t``, the set of markings that can reach a firing of
    ``t`` (backward closure), and requiring it to cover all markings.
    """
    graph = _graph(net, initial, graph)
    markings = graph.markings
    index = {m: i for i, m in enumerate(markings)}
    predecessors: Dict[int, List[int]] = {i: [] for i in range(len(markings))}
    fires_at: Dict[str, List[int]] = {t: [] for t in net.transition_names}
    for source, transition, target in graph.edges:
        predecessors[index[target]].append(index[source])
        fires_at[transition].append(index[source])

    for transition in net.transition_names:
        seeds = fires_at[transition]
        if not seeds:
            return False
        can_reach: Set[int] = set()
        stack = list(seeds)
        while stack:
            node = stack.pop()
            if node in can_reach:
                continue
            can_reach.add(node)
            stack.extend(predecessors[node])
        if len(can_reach) != len(markings):
            return False
    return True


def is_bounded(
    net: PetriNet,
    initial: Marking,
    bound: Optional[int] = None,
    graph: Optional[ReachabilityGraph] = None,
) -> bool:
    """True iff every place stays at or below ``bound`` tokens in every
    reachable marking (any finite bound when ``bound`` is None)."""
    if graph is None:
        graph = explore(net, initial)
    if graph.unbounded:
        return False
    if graph.truncated:
        raise AnalysisError("exploration budget exceeded; increase max_markings")
    if bound is None:
        return True
    return all(
        marking[place] <= bound
        for marking in graph.markings
        for place in marking
    )


def bound_of(
    net: PetriNet,
    initial: Marking,
    graph: Optional[ReachabilityGraph] = None,
) -> Dict[str, int]:
    """The exact per-place bound over the forward marking class."""
    graph = _graph(net, initial, graph)
    return {p: graph.max_tokens(p) for p in net.place_names}


def is_safe(
    net: PetriNet,
    initial: Marking,
    graph: Optional[ReachabilityGraph] = None,
) -> bool:
    """Safety is boundedness with ``N = 1``."""
    return is_bounded(net, initial, bound=1, graph=graph)


def is_persistent(
    net: PetriNet,
    initial: Marking,
    graph: Optional[ReachabilityGraph] = None,
) -> bool:
    """Exact persistence check on the reachability graph.

    For every reachable marking ``M`` and distinct transitions ``t1``,
    ``t2`` both enabled at ``M``, firing ``t1`` must leave ``t2``
    enabled.  Marked graphs pass trivially (each place feeds a single
    transition); nets with structural conflict — like the SDSP-SCP-PN
    with its shared run place — generally fail, which is exactly why
    the paper needs Assumption 5.2.1 there.
    """
    graph = _graph(net, initial, graph)
    for marking in graph.markings:
        enabled = enabled_transitions(net, marking)
        for t1 in enabled:
            after = fire(net, marking, t1)
            for t2 in enabled:
                if t2 == t1:
                    continue
                if not all(after[p] > 0 for p in net.input_places(t2)):
                    return False
    return True


def deadlocked_markings(
    net: PetriNet,
    initial: Marking,
    graph: Optional[ReachabilityGraph] = None,
) -> List[Marking]:
    """Reachable markings that enable no transition at all."""
    graph = _graph(net, initial, graph)
    return [m for m in graph.markings if not enabled_transitions(net, m)]


def consistent_firing_vector(net: PetriNet) -> Optional[Dict[str, int]]:
    """A strictly positive integer firing vector ``x`` with ``C·x = 0``.

    Consistency (Appendix A.4) asks for a non-zero integer assignment
    per transition such that token production balances consumption at
    every place.  We search for a strictly positive rational solution
    with :func:`scipy.optimize.linprog` (feasibility of ``C x = 0``,
    ``x >= 1``) and scale it to integers.  Returns ``None`` when no such
    vector exists.
    """
    from fractions import Fraction

    from scipy.optimize import linprog

    transitions = net.transition_names
    if not transitions:
        return None
    incidence = np.array(net.incidence_matrix(), dtype=float)
    n = len(transitions)
    if incidence.size == 0:
        # No places: every positive vector is trivially consistent.
        return {t: 1 for t in transitions}
    result = linprog(
        c=np.ones(n),
        A_eq=incidence,
        b_eq=np.zeros(incidence.shape[0]),
        bounds=[(1, None)] * n,
        method="highs",
    )
    if not result.success:
        return None
    fractions = [Fraction(value).limit_denominator(10**6) for value in result.x]
    common = 1
    for fraction in fractions:
        common = common * fraction.denominator // np.gcd(
            common, fraction.denominator
        )
    vector = {
        t: int(f * common) for t, f in zip(transitions, fractions)
    }
    # Normalise by the gcd for a canonical minimal representative.
    g = 0
    for value in vector.values():
        g = int(np.gcd(g, value))
    if g > 1:
        vector = {t: v // g for t, v in vector.items()}
    return vector


def is_consistent(net: PetriNet) -> bool:
    """True iff the net admits a strictly positive firing vector in the
    kernel of its incidence matrix (Theorem A.4.1 equivalent form)."""
    return consistent_firing_vector(net) is not None
