"""Timed Petri nets and instantaneous states (Appendix A.6).

A timed Petri net is a pair ``(PN, Ω)`` where ``Ω`` assigns each
transition a non-negative integer *execution time* (Ramchandani's
deterministic timing).  During execution a transition may be mid-firing,
so a marking alone no longer determines the future: the paper pairs the
marking with a *residual firing-time vector* ``R`` recording the
remaining execution time of each in-flight transition, and calls the
pair an **instantaneous state**.

Two standing assumptions of the paper are honoured here:

* **A.6.1 (non-reentrance)** — two firings of one transition never
  overlap.  The paper models this with an implicit one-token self-loop
  per transition; :meth:`TimedPetriNet.with_explicit_self_loops`
  materialises those loops for theory-level experiments, while the
  simulator enforces the same constraint directly.
* **A.6.2 (earliest firing rule)** — transitions fire as soon as they
  are enabled; this is what the simulator implements.

>>> from repro.petrinet import PetriNet
>>> net = PetriNet(name="n")
>>> _ = net.add_transition("t")
>>> timed = TimedPetriNet(net, {"t": 3})
>>> timed.duration("t")
3
>>> state = InstantaneousState.make(Marking({"p": 1}), {"t": 2})
>>> state.residuals              # only in-flight transitions appear
(('t', 2),)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..errors import NetConstructionError
from .marking import Marking
from .net import PetriNet

__all__ = ["TimedPetriNet", "InstantaneousState"]


class TimedPetriNet:
    """A Petri net together with integer transition execution times.

    ``durations`` maps every transition name to its execution time
    ``τ >= 1``.  (The paper permits ``τ = 0``; the series-expansion
    construction in :mod:`repro.core.scp` never produces zero-time
    transitions — when the pipeline has a single stage the dummy
    transitions are omitted — so the simulator can assume progress at
    every step.  We enforce ``τ >= 1`` here to keep that invariant
    visible.)
    """

    def __init__(self, net: PetriNet, durations: Mapping[str, int]) -> None:
        for transition in net.transition_names:
            if transition not in durations:
                raise NetConstructionError(
                    f"no execution time given for transition {transition!r}"
                )
        for transition, duration in durations.items():
            if not net.has_transition(transition):
                raise NetConstructionError(
                    f"duration names unknown transition {transition!r}"
                )
            if duration < 1:
                raise NetConstructionError(
                    f"execution time of {transition!r} must be >= 1, got "
                    f"{duration}"
                )
        self.net = net
        self.durations: Dict[str, int] = dict(durations)

    @classmethod
    def unit(cls, net: PetriNet) -> "TimedPetriNet":
        """All execution times equal to one cycle — the setting of the
        paper's examples and Livermore experiments."""
        return cls(net, {t: 1 for t in net.transition_names})

    def duration(self, transition: str) -> int:
        return self.durations[transition]

    def with_explicit_self_loops(self) -> "TimedPetriNet":
        """Materialise Assumption A.6.1's implicit self-loops.

        Each transition ``t`` gains a private place ``selfloop[t]`` with
        one token, consumed while ``t`` executes.  Behaviour under the
        earliest firing rule is identical to the simulator's built-in
        non-reentrance; this form exists so the structural theorems
        (e.g. safety of the SDSP-PN) can be checked on the literal net
        of the paper.
        """
        clone = self.net.copy(self.net.name + "+selfloops")
        for transition in self.net.transition_names:
            loop_place = f"selfloop[{transition}]"
            clone.add_place(loop_place, annotation="selfloop")
            clone.add_arc(loop_place, transition)
            clone.add_arc(transition, loop_place)
        return TimedPetriNet(clone, self.durations)

    def self_loop_marking(self, base: Marking) -> Marking:
        """Extend ``base`` with one token on every explicit self-loop
        place (companion to :meth:`with_explicit_self_loops`)."""
        extra = {
            f"selfloop[{t}]": 1
            for t in self.net.transition_names
            if self.net.has_place(f"selfloop[{t}]")
        }
        if not extra:
            extra = {}
        merged = dict(base)
        merged.update(extra)
        return Marking(merged)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimedPetriNet({self.net!r})"


@dataclass(frozen=True)
class InstantaneousState:
    """The pair ``(marking, residual firing-time vector)`` of Appendix
    A.6, extended with an opaque ``policy_key``.

    * ``marking`` — tokens at this instant (after all completions due at
      this time have deposited their outputs and before new firings
      start; the paper's Figure 1(e) highlights states at exactly such
      instants, where the residual vector is all-zero).
    * ``residuals`` — for each in-flight transition, its remaining
      execution time (absent = idle).  Stored as a sorted tuple for
      value-semantics hashing.
    * ``policy_key`` — state of the conflict-resolution policy, if any.
      Assumption 5.2.1 requires the machine's choices to be a function
      of its instantaneous state; a policy with internal memory (e.g.
      the FIFO queue of the SCP machine) contributes that memory to the
      state so that a repeated :class:`InstantaneousState` really does
      imply repeated behaviour.  For persistent nets it is ``()``.
    """

    marking: Marking
    residuals: Tuple[Tuple[str, int], ...]
    policy_key: Tuple = ()

    @classmethod
    def make(
        cls,
        marking: Marking,
        residuals: Mapping[str, int],
        policy_key: Tuple = (),
    ) -> "InstantaneousState":
        packed = tuple(sorted((t, r) for t, r in residuals.items() if r > 0))
        return cls(marking, packed, policy_key)

    @property
    def is_quiescent(self) -> bool:
        """True when no transition is mid-firing (all-zero residual
        vector) — the form of the frustum endpoints in Figure 1(e)."""
        return not self.residuals

    def residual_of(self, transition: str) -> int:
        for name, remaining in self.residuals:
            if name == transition:
                return remaining
        return 0
