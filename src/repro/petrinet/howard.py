"""Howard's policy iteration for the maximum cycle ratio (cycle time).

The cycle time of a live timed marked graph,

    alpha = max over simple cycles C of  Ω(C) / M(C),

is the max-plus spectral radius of the transition digraph in which each
place becomes an edge ``producer → consumer`` with *weight* the
producer's execution time and *height* the place's initial token count
(plus, per Assumption A.6.1, one implicit self-loop of weight ``τ(t)``
and height 1 per transition).  Enumeration
(:func:`repro.petrinet.analysis.cycle_time_by_enumeration`) is
exponential in general and Lawler's parametric search re-runs
Bellman–Ford per probe; Howard's policy iteration computes the same
value in near-linear practical time (Cochet-Terrasson et al.; the same
lever used by the max-plus scheduling literature, e.g. Zorzenon et al.
2022 and Millo & de Simone 2012), which is why
:func:`repro.core.rate.optimal_rate` routes through it.

The iteration maintains a *policy* — one outgoing edge per node — whose
one-cycle-per-component functional graph is evaluated exactly
(:class:`fractions.Fraction` arithmetic, no floats), then improved
first by gain (reach a larger cycle ratio) and then by bias.  At
convergence the optimality inequalities hold for **every** edge, which
telescopes into a machine-checked proof that no cycle beats the answer,
and the final policy graph contains a witness cycle attaining it.

>>> from repro.loops import parse_loop, translate
>>> from repro.core import build_sdsp_pn
>>> pn = build_sdsp_pn(translate(parse_loop(
...     "do tiny:\\n  A[i] = A[i-1] + IN[i]")).graph, include_io=False)
>>> result = howard_analysis(pn.view(), pn.durations)
>>> result.cycle_time
Fraction(1, 1)
>>> cycle_time_howard(pn.view(), pn.durations) == result.cycle_time
True
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from ..errors import AnalysisError
from .marked_graph import MarkedGraphView, SimpleCycle

__all__ = ["HowardResult", "howard_analysis", "cycle_time_howard"]


@dataclass(frozen=True)
class _Edge:
    """One out-edge of the transition digraph: follow ``place`` (or the
    implicit self-loop when ``place`` is None) to ``target``, paying
    ``weight`` execution time over ``height`` tokens."""

    target: str
    weight: int
    height: int
    place: Optional[str]


@dataclass(frozen=True)
class HowardResult:
    """The converged answer with its witness.

    ``critical_cycle`` is a structural simple cycle attaining the cycle
    time, canonically rotated like
    :meth:`~repro.petrinet.marked_graph.MarkedGraphView.simple_cycles`;
    it is ``None`` when the maximum is attained only by an implicit
    self-loop, in which case ``critical_self_loop`` names the slow
    transition.  ``iterations`` counts policy-improvement rounds.
    """

    cycle_time: Fraction
    critical_cycle: Optional[SimpleCycle]
    critical_self_loop: Optional[str]
    iterations: int

    @property
    def computation_rate(self) -> Fraction:
        return 1 / self.cycle_time


def _build_edges(
    view: MarkedGraphView, durations: Mapping[str, int]
) -> Dict[str, List[_Edge]]:
    net = view.net
    initial = view.initial
    out: Dict[str, List[_Edge]] = {t: [] for t in net.transition_names}
    for place in net.place_names:
        (producer,) = net.input_transitions(place)
        (consumer,) = net.output_transitions(place)
        out[producer].append(
            _Edge(consumer, durations[producer], initial[place], place)
        )
    for transition in net.transition_names:
        out[transition].append(
            _Edge(transition, durations[transition], 1, None)
        )
    # Deterministic edge order (place name; self-loop last) so the
    # converged policy — and hence the reported witness — is stable
    # across processes and hash seeds.
    for transition in out:
        out[transition].sort(key=lambda e: (e.place is None, e.place or ""))
    return out


def _require_live(view: MarkedGraphView) -> None:
    """Reject token-free structural cycles up front (no finite cycle
    time exists).  A cycle all of whose places are empty is exactly a
    cycle of the zero-token edge subgraph — an O(P + T) check, no cycle
    enumeration needed."""
    zero = nx.DiGraph()
    zero.add_nodes_from(view.net.transition_names)
    for place in view.net.place_names:
        if view.initial[place] == 0:
            (producer,) = view.net.input_transitions(place)
            (consumer,) = view.net.output_transitions(place)
            zero.add_edge(producer, consumer)
    try:
        cycle_edges = nx.find_cycle(zero)
    except nx.NetworkXNoCycle:
        return
    transitions = [edge[0] for edge in cycle_edges]
    raise AnalysisError(
        "cycle through "
        + " -> ".join(transitions)
        + " carries no token: the net is not live and has no cycle time"
    )


def _evaluate(
    nodes: Tuple[str, ...], policy: Dict[str, _Edge]
) -> Tuple[Dict[str, Fraction], Dict[str, Fraction]]:
    """Exact multichain policy evaluation.

    The policy graph is functional (one successor per node), so every
    node leads to exactly one cycle.  Each cycle gets gain
    ``λ = Σ weight / Σ height``; values satisfy
    ``v(u) = w(u) − λ·h(u) + v(next(u))`` with the cycle's first
    discovered node anchored at 0.
    """
    lam: Dict[str, Fraction] = {}
    val: Dict[str, Fraction] = {}
    state: Dict[str, int] = {node: 0 for node in nodes}  # 0 new, 1 open, 2 done
    for start in nodes:
        if state[start] == 2:
            continue
        path: List[str] = []
        node = start
        while state[node] == 0:
            state[node] = 1
            path.append(node)
            node = policy[node].target
        if state[node] == 1:
            # Discovered a new policy cycle: path[index:] closes at node.
            index = path.index(node)
            cycle = path[index:]
            weight = sum(policy[u].weight for u in cycle)
            height = sum(policy[u].height for u in cycle)
            if height == 0:  # pragma: no cover - excluded by _require_live
                raise AnalysisError(
                    "policy cycle through "
                    + " -> ".join(cycle)
                    + " carries no token: the net is not live"
                )
            gain = Fraction(weight, height)
            anchor = cycle[0]
            lam[anchor] = gain
            val[anchor] = Fraction(0)
            state[anchor] = 2
            for u in reversed(cycle[1:]):
                edge = policy[u]
                lam[u] = gain
                val[u] = edge.weight - gain * edge.height + val[edge.target]
                state[u] = 2
        # Unwind the tail (and any prefix before the cycle): each node's
        # gain/value follow from its successor's.
        for u in reversed(path):
            if state[u] == 2:
                continue
            edge = policy[u]
            lam[u] = lam[edge.target]
            val[u] = edge.weight - lam[u] * edge.height + val[edge.target]
            state[u] = 2
    return lam, val


def howard_analysis(
    view: MarkedGraphView, durations: Mapping[str, int]
) -> HowardResult:
    """Maximum cycle ratio of a live timed marked graph by policy
    iteration, with a witness critical cycle (or self-loop)."""
    nodes = tuple(view.net.transition_names)
    if not nodes:
        raise AnalysisError("net has no transitions; cycle time undefined")
    _require_live(view)
    out_edges = _build_edges(view, durations)
    # Start from the always-present self-loops: a valid policy whose
    # evaluation (λ(t) = τ(t)) is the paper's self-loop floor.
    policy: Dict[str, _Edge] = {u: out_edges[u][-1] for u in nodes}

    iterations = 0
    limit = 16 + 4 * len(nodes) * sum(len(e) for e in out_edges.values())
    while True:
        iterations += 1
        if iterations > limit:  # pragma: no cover - defensive
            raise AnalysisError(
                "Howard policy iteration failed to converge within "
                f"{limit} rounds"
            )
        lam, val = _evaluate(nodes, policy)
        # Gain improvement: move to a strictly larger reachable ratio.
        changed = False
        for u in nodes:
            best = policy[u]
            best_gain = lam[u]
            for edge in out_edges[u]:
                if lam[edge.target] > best_gain:
                    best, best_gain = edge, lam[edge.target]
            if best_gain > lam[u]:
                policy[u] = best
                changed = True
        if changed:
            continue
        # Bias improvement among equal-gain edges.
        for u in nodes:
            gain = lam[u]
            best_val = val[u]
            best = None
            for edge in out_edges[u]:
                if lam[edge.target] != gain:
                    continue
                candidate = edge.weight - gain * edge.height + val[edge.target]
                if candidate > best_val:
                    best, best_val = edge, candidate
            if best is not None:
                policy[u] = best
                changed = True
        if not changed:
            break

    alpha = max(lam.values())
    witness_cycle, witness_loop = _extract_witness(nodes, policy, lam, alpha)
    return HowardResult(alpha, witness_cycle, witness_loop, iterations)


def _extract_witness(
    nodes: Tuple[str, ...],
    policy: Dict[str, _Edge],
    lam: Dict[str, Fraction],
    alpha: Fraction,
) -> Tuple[Optional[SimpleCycle], Optional[str]]:
    """Walk the converged policy from the smallest-named optimal node to
    its cycle; that cycle's ratio equals its nodes' gain, i.e. alpha."""
    start = min(u for u in nodes if lam[u] == alpha)
    seen: Dict[str, int] = {}
    path: List[str] = []
    node = start
    while node not in seen:
        seen[node] = len(path)
        path.append(node)
        node = policy[node].target
    cycle = path[seen[node]:]
    if len(cycle) == 1 and policy[cycle[0]].place is None:
        return None, cycle[0]
    places = [policy[u].place for u in cycle]
    rotate = min(range(len(cycle)), key=cycle.__getitem__)
    transitions = tuple(cycle[rotate:]) + tuple(cycle[:rotate])
    rotated_places = tuple(places[rotate:]) + tuple(places[:rotate])
    return SimpleCycle(transitions, rotated_places), None


def cycle_time_howard(
    view: MarkedGraphView, durations: Mapping[str, int]
) -> Fraction:
    """Cycle time ``alpha`` by Howard's policy iteration (exact)."""
    return howard_analysis(view, durations).cycle_time
