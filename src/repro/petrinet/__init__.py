"""Timed Petri-net substrate.

This package implements the Petri-net machinery of Appendix A of the
paper: untimed nets and markings, reachability-based behavioural
properties, marked-graph theory, timed nets with instantaneous states,
the earliest-firing simulators (unit-time stepping and event-driven),
behavior graphs with cyclic-frustum detection, and cycle-time analysis
(Howard's policy iteration, enumeration, parametric search and linear
programming).
"""

from .net import Arc, PetriNet, Place, Transition
from .marking import Marking, enabled_transitions, fire
from .reachability import ReachabilityGraph, explore
from .properties import (
    bound_of,
    consistent_firing_vector,
    deadlocked_markings,
    is_bounded,
    is_consistent,
    is_live,
    is_persistent,
    is_safe,
)
from .marked_graph import MarkedGraphView, SimpleCycle, require_marked_graph
from .timed import InstantaneousState, TimedPetriNet
from .simulator import (
    ConflictResolutionPolicy,
    EarliestFiringSimulator,
    FireAllPolicy,
    StepRecord,
)
from .event_sim import EventDrivenSimulator, EventFrustumDetector
from .behavior import (
    BehaviorGraph,
    BehaviorRecorder,
    BehaviorStep,
    CyclicFrustum,
    FrustumDetector,
    PlaceInstance,
    TransitionInstance,
    detect_frustum,
)
from .howard import HowardResult, cycle_time_howard, howard_analysis
from .analysis import (
    CriticalCycleReport,
    CycleMetrics,
    computation_rate,
    critical_cycle_report,
    cycle_metrics,
    cycle_time_by_enumeration,
    cycle_time_lawler,
)
from .linprog import PeriodicScheduleLP, cycle_time_lp

__all__ = [
    "Arc",
    "PetriNet",
    "Place",
    "Transition",
    "Marking",
    "enabled_transitions",
    "fire",
    "ReachabilityGraph",
    "explore",
    "bound_of",
    "consistent_firing_vector",
    "deadlocked_markings",
    "is_bounded",
    "is_consistent",
    "is_live",
    "is_persistent",
    "is_safe",
    "MarkedGraphView",
    "SimpleCycle",
    "require_marked_graph",
    "InstantaneousState",
    "TimedPetriNet",
    "ConflictResolutionPolicy",
    "EarliestFiringSimulator",
    "EventDrivenSimulator",
    "EventFrustumDetector",
    "FireAllPolicy",
    "StepRecord",
    "BehaviorGraph",
    "BehaviorRecorder",
    "BehaviorStep",
    "CyclicFrustum",
    "FrustumDetector",
    "PlaceInstance",
    "TransitionInstance",
    "detect_frustum",
    "CriticalCycleReport",
    "CycleMetrics",
    "computation_rate",
    "critical_cycle_report",
    "cycle_metrics",
    "cycle_time_by_enumeration",
    "cycle_time_lawler",
    "HowardResult",
    "cycle_time_howard",
    "howard_analysis",
    "PeriodicScheduleLP",
    "cycle_time_lp",
]
