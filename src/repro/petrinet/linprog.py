"""Linear-programming formulation of the cycle-time problem.

Appendix A.7 notes (citing Magott [30]) that enumerating simple cycles
can be exponential, while the cycle time of a timed marked graph can be
found in polynomial time by linear programming.  The classical LP is
the *periodic schedule* formulation: a period ``Φ`` is feasible iff
there exist start offsets ``s(t)`` such that for every place
``p : u → v`` with ``M(p)`` initial tokens

    s(v) + Φ·M(p)  >=  s(u) + τ(u)

(the token produced by ``u``'s firing in iteration ``i`` is consumed by
``v``'s firing in iteration ``i + M(p)``).  Minimising ``Φ`` subject to
these constraints yields exactly ``max_C Ω(C)/M(C)`` — summing the
constraints around any cycle cancels the offsets — and the optimal
offsets are themselves a rate-optimal static schedule, which the rest
of the library uses as an independent cross-check of the schedules
derived from cyclic frustums.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional

import numpy as np
from scipy.optimize import linprog

from ..errors import AnalysisError
from .marked_graph import MarkedGraphView

__all__ = ["PeriodicScheduleLP", "cycle_time_lp"]


@dataclass
class PeriodicScheduleLP:
    """Result of the LP: the optimal period and a witness schedule.

    ``offsets`` maps each transition to a rational start offset ``s(t)``;
    firing ``t`` at times ``s(t) + i·period`` for ``i = 0, 1, ...``
    satisfies every dependence (this is checked by the test suite, not
    assumed).
    """

    period: Fraction
    offsets: Dict[str, Fraction]

    @property
    def computation_rate(self) -> Fraction:
        return 1 / self.period


def cycle_time_lp(
    view: MarkedGraphView,
    durations: Mapping[str, int],
    include_self_loops: bool = True,
) -> PeriodicScheduleLP:
    """Solve the periodic-schedule LP with HiGHS and snap the period to
    the exact rational it must be (denominator bounded by the net's
    total token count).

    ``include_self_loops`` adds the non-reentrance constraints
    ``Φ >= τ(t)`` of Assumption A.6.1; disable only to study the
    relaxed model.
    """
    transitions = list(view.net.transition_names)
    if not transitions:
        raise AnalysisError("net has no transitions; cycle time undefined")
    index = {t: i for i, t in enumerate(transitions)}
    n = len(transitions)
    # Variables: s_0 .. s_{n-1}, phi  (phi last).
    rows = []
    bounds_rhs = []
    initial = view.initial
    for place in view.net.place_names:
        (producer,) = view.net.input_transitions(place)
        (consumer,) = view.net.output_transitions(place)
        # s(u) - s(v) - phi * M(p) <= -tau(u)
        row = np.zeros(n + 1)
        row[index[producer]] += 1.0
        row[index[consumer]] -= 1.0
        row[n] = -float(initial[place])
        rows.append(row)
        bounds_rhs.append(-float(durations[producer]))
    if include_self_loops:
        for transition in transitions:
            row = np.zeros(n + 1)
            row[n] = -1.0
            rows.append(row)
            bounds_rhs.append(-float(durations[transition]))

    cost = np.zeros(n + 1)
    cost[n] = 1.0
    # Offsets are free; pin the first to zero to remove the translation
    # degree of freedom (improves solver conditioning).
    variable_bounds = [(None, None)] * n + [(0, None)]
    variable_bounds[0] = (0, 0)

    result = linprog(
        c=cost,
        A_ub=np.array(rows) if rows else None,
        b_ub=np.array(bounds_rhs) if rows else None,
        bounds=variable_bounds,
        method="highs",
    )
    if not result.success:
        raise AnalysisError(f"cycle-time LP failed: {result.message}")

    total_tokens = max(1, sum(initial[p] for p in view.net.place_names))
    period = Fraction(float(result.x[n])).limit_denominator(total_tokens)
    lcm = int(np.lcm(period.denominator, 1))
    # Offsets are rationals over a modest denominator; snap generously.
    offsets = {
        t: Fraction(float(result.x[index[t]])).limit_denominator(
            total_tokens * max(1, lcm) * 64
        )
        for t in transitions
    }
    _verify_periodic_schedule(view, durations, period, offsets, include_self_loops)
    return PeriodicScheduleLP(period, offsets)


def _verify_periodic_schedule(
    view: MarkedGraphView,
    durations: Mapping[str, int],
    period: Fraction,
    offsets: Dict[str, Fraction],
    include_self_loops: bool,
) -> None:
    """Exact feasibility check of the snapped LP solution; raises
    :class:`AnalysisError` if snapping broke a constraint."""
    initial = view.initial
    for place in view.net.place_names:
        (producer,) = view.net.input_transitions(place)
        (consumer,) = view.net.output_transitions(place)
        lhs = offsets[consumer] + period * initial[place]
        rhs = offsets[producer] + durations[producer]
        if lhs < rhs:
            raise AnalysisError(
                f"LP schedule violates place {place!r}: "
                f"{lhs} < {rhs} (period {period})"
            )
    if include_self_loops:
        for transition, duration in durations.items():
            if period < duration:
                raise AnalysisError(
                    f"period {period} below execution time of {transition!r}"
                )
