"""Event-driven simulation engine: completion-heap execution of timed
Petri nets under the earliest firing rule.

:class:`~repro.petrinet.simulator.EarliestFiringSimulator` advances in
unit time steps — its cost is proportional to elapsed *time*, which the
theory only bounds by O(n⁴) (Theorem 4.1.2).  The engine in this module
exploits a structural fact of the earliest firing rule to do work
proportional to *firings* instead:

**Gap theorem.**  After the greedy-with-re-check firing loop of a step,
no transition is both enabled and idle (each candidate either fired or
was found disabled, and firings only *consume* tokens, so a rejected
candidate cannot become enabled again within the step).  Tokens are
deposited and transitions become idle only when a firing *completes*.
Hence nothing can start at a time instant with no completion: between
two consecutive completion instants the marking, the in-flight set and
(for gap-invariant policies, see
:class:`~repro.petrinet.simulator.ConflictResolutionPolicy.begin_step`)
the policy state are all frozen.  The only *event times* are 0 and the
completion instants, and it suffices to simulate those.

:class:`EventDrivenSimulator` therefore keeps a heap of completion
times and jumps directly from event to event, producing at each event
exactly the :class:`~repro.petrinet.simulator.StepRecord` the step
simulator would produce at that tick — same completions, same snapshot,
same conflict offers to the policy, same firings, same instrumentation
events.

:class:`EventFrustumDetector` detects the cyclic frustum on top of
this: it hashes the instantaneous state of every *event* (an
incremental state-hash table — one insert per event instead of one per
tick) and, on the first repeated event state, reconstructs the exact
step-simulator answer.  States at gap times are recovered analytically
(the marking is the post-firing marking of the previous event; the
residuals are absolute completion times minus the queried instant), so
the minimal transient ``ρ`` is found by walking the candidate
breakpoints backwards — the resulting frustum, kernel and schedule are
bit-identical to the step engine's.  See ``docs/ARCHITECTURE.md`` for
the full argument.

>>> from repro.petrinet import PetriNet, Marking, TimedPetriNet
>>> from repro.petrinet import detect_frustum
>>> net = PetriNet("ring")
>>> for t in ("a", "b"):
...     _ = net.add_transition(t)
>>> for p, src, dst in (("ab", "a", "b"), ("ba", "b", "a")):
...     _ = net.add_place(p)
...     _ = net.add_arc(src, p)
...     _ = net.add_arc(p, dst)
>>> timed = TimedPetriNet(net, {"a": 3, "b": 2})
>>> step_f, _ = detect_frustum(timed, Marking({"ba": 1}), engine="step")
>>> event_f, _ = detect_frustum(timed, Marking({"ba": 1}), engine="event")
>>> (step_f.start_time, step_f.repeat_time) == (event_f.start_time, event_f.repeat_time)
True
>>> step_f.schedule_steps == event_f.schedule_steps
True
"""

from __future__ import annotations

import bisect
import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..obs.events import (
    FiringCompleted,
    FiringStarted,
    FrustumDetected,
    Instrumentation,
    StateSnapshot,
)
from .behavior import BehaviorGraph, BehaviorRecorder, CyclicFrustum
from .marking import Marking
from .net import PetriNet
from .simulator import ConflictResolutionPolicy, FireAllPolicy, StepRecord
from .timed import InstantaneousState, TimedPetriNet

__all__ = ["EventDrivenSimulator", "EventFrustumDetector"]


class EventDrivenSimulator:
    """Event-jumping executor for a :class:`TimedPetriNet`.

    The constructor signature matches
    :class:`~repro.petrinet.simulator.EarliestFiringSimulator`; the
    difference is purely in how time advances: :meth:`advance` processes
    the *next event* (time 0, then each completion instant) and returns
    the very :class:`~repro.petrinet.simulator.StepRecord` the step
    simulator would have produced at that tick.  Ticks in between carry
    no completions and — by the gap theorem in the module docstring —
    no firings either, so skipping them loses nothing.

    Policies are offered candidates in the same order as under the step
    engine (the net's transition declaration order) and with the same
    greedy re-check, so conflict resolution is identical.  A policy that
    overrides ``begin_step`` is called once per event; it must be
    *gap-invariant* (see
    :meth:`~repro.petrinet.simulator.ConflictResolutionPolicy.begin_step`)
    for the two engines to coincide — both shipped policies are.
    """

    def __init__(
        self,
        timed_net: TimedPetriNet,
        initial: Marking,
        policy: Optional[ConflictResolutionPolicy] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.timed_net = timed_net
        self.net: PetriNet = timed_net.net
        self.policy = policy if policy is not None else FireAllPolicy()
        self._obs: Optional[Instrumentation] = (
            instrumentation if instrumentation else None
        )
        self._initial = initial
        net = self.net
        # Static structure, precomputed once: candidate discovery after a
        # completion only looks at the completed transitions and the
        # consumers of the places they deposited on.
        self._tindex: Dict[str, int] = {
            t: i for i, t in enumerate(net.transition_names)
        }
        self._inputs: Dict[str, Tuple[str, ...]] = {
            t: tuple(net.input_places(t)) for t in net.transition_names
        }
        self._outputs: Dict[str, Tuple[str, ...]] = {
            t: tuple(net.output_places(t)) for t in net.transition_names
        }
        self._consumers: Dict[str, Tuple[str, ...]] = {
            p: tuple(net.output_transitions(p)) for p in net.place_names
        }
        # Only call begin_step on policies that actually override it;
        # the base implementation is a documented no-op and skipping it
        # saves the per-event idle-list construction.
        self._policy_observes = (
            type(self.policy).begin_step is not ConflictResolutionPolicy.begin_step
        )
        self.reset()

    def reset(self) -> None:
        """Return to time 0 with the initial marking, an empty
        completion heap and no in-flight firings."""
        self.time = 0
        self.marking = self._initial
        self._started = False
        # transition -> absolute completion time, mirrored in a heap of
        # (completion time, transition) pairs; non-reentrance keeps at
        # most one heap entry per transition, so no lazy deletion.
        self._in_flight: Dict[str, int] = {}
        self._heap: List[Tuple[int, str]] = []
        self.total_firings: Dict[str, int] = {
            t: 0 for t in self.net.transition_names
        }
        # Token provenance (see EarliestFiringSimulator.reset): per-place
        # FIFO of (birth time, producer), kept only when instrumented.
        # Completions append in sorted order and firings pop in firing
        # order — identical to the step engine, so both engines attach
        # byte-identical FiringStarted.consumed provenance.
        self._births: Optional[Dict[str, List[Tuple[int, str]]]] = (
            {
                p: [(0, "")] * self._initial[p]
                for p in self.net.place_names
            }
            if self._obs is not None
            else None
        )
        self.policy.reset()
        self._check_policy_key()

    def _check_policy_key(self) -> None:
        """Fail fast on unhashable policy keys, exactly like the step
        simulator (frustum detection hashes instantaneous states)."""
        key = self.policy.state_key()
        try:
            hash(key)
        except TypeError:
            raise SimulationError(
                f"policy {type(self.policy).__name__} returned an unhashable "
                f"state_key {key!r}; frustum detection hashes the "
                "instantaneous state (marking, residuals, policy key), so "
                "state_key() must return a hashable tuple"
            ) from None

    # ------------------------------------------------------------------
    # State inspection (same surface as EarliestFiringSimulator)
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> Dict[str, int]:
        """Copy of the map from busy transitions to completion times."""
        return dict(self._in_flight)

    def residuals(self) -> Dict[str, int]:
        """Remaining execution time per busy transition, relative to the
        current time."""
        return {t: finish - self.time for t, finish in self._in_flight.items()}

    def snapshot(self) -> InstantaneousState:
        """Instantaneous state at the current time (between events the
        marking and policy key are frozen; only residuals shift)."""
        return InstantaneousState.make(
            self.marking, self.residuals(), self.policy.state_key()
        )

    def is_deadlocked(self) -> bool:
        """No in-flight work and nothing enabled."""
        return not self._in_flight and not self._enabled_idle()

    def next_event_time(self) -> Optional[int]:
        """Time of the next event :meth:`advance` would process: 0
        before the first call, else the earliest pending completion;
        ``None`` when nothing is in flight (no further events ever)."""
        if not self._started:
            return 0
        if not self._heap:
            return None
        return self._heap[0][0]

    def _enabled_idle(self) -> List[str]:
        enabled = []
        for transition in self.net.transition_names:
            if transition in self._in_flight:
                continue
            if all(self.marking[p] > 0 for p in self._inputs[transition]):
                enabled.append(transition)
        return enabled

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def advance(self) -> StepRecord:
        """Jump to the next event and process it (completions, policy
        observation, snapshot, firings — the step simulator's intra-step
        order).  Raises :class:`SimulationError` when no event is
        pending (the net is deadlocked or permanently idle)."""
        obs = self._obs
        if self._started:
            if not self._heap:
                raise SimulationError(
                    "no pending completions: the net is deadlocked or idle"
                )
            now = self._heap[0][0]
        else:
            now = 0
            self._started = True

        # 1. completions (every heap entry due now)
        completed_list: List[str] = []
        heap = self._heap
        while heap and heap[0][0] == now:
            completed_list.append(heapq.heappop(heap)[1])
        completed = tuple(sorted(completed_list))
        wake: set = set()
        if completed:
            deltas: Dict[str, int] = {}
            for transition in completed:
                del self._in_flight[transition]
                wake.add(transition)
                for place in self._outputs[transition]:
                    deltas[place] = deltas.get(place, 0) + 1
                    wake.update(self._consumers[place])
            self.marking = self.marking.with_delta(deltas)
            if obs is not None:
                births = self._births
                for transition in completed:
                    for place in self._outputs[transition]:
                        births[place].append((now, transition))
                    obs.emit(
                        FiringCompleted(
                            now, transition, self.timed_net.duration(transition)
                        )
                    )

        # 2. snapshot (also lets the policy observe the state)
        if self._policy_observes:
            idle = [
                t for t in self.net.transition_names if t not in self._in_flight
            ]
            self.policy.begin_step(now, self.marking, idle)
        state = InstantaneousState.make(
            self.marking,
            {t: finish - now for t, finish in self._in_flight.items()},
            self.policy.state_key(),
        )
        if obs is not None:
            obs.emit(
                StateSnapshot(
                    now,
                    tuple(sorted(state.marking.items())),
                    state.residuals,
                    state.policy_key,
                )
            )

        # 3. firings.  Candidates: by the gap theorem nothing was
        # enabled+idle after the previous event's firing loop, so a
        # candidate now must involve this event's completions — either
        # it completed (newly idle) or a completion deposited on one of
        # its input places.  Offered in transition declaration order,
        # exactly like the step simulator's full scan.
        if completed:
            index = self._tindex
            candidates = [
                t
                for t in sorted(wake, key=index.__getitem__)
                if t not in self._in_flight
                and all(self.marking[p] > 0 for p in self._inputs[t])
            ]
        else:  # first event (time 0): full scan, nothing in flight yet
            candidates = self._enabled_idle()

        fired: List[str] = []
        for transition in self.policy.order(candidates):
            if transition in self._in_flight:
                continue
            inputs = self._inputs[transition]
            if not all(self.marking[p] > 0 for p in inputs):
                continue  # lost a structural conflict earlier this event
            duration = self.timed_net.duration(transition)
            if duration < 1:
                raise SimulationError(
                    f"transition {transition!r} has non-positive firing "
                    f"duration {duration}; durations must be >= 1 (was the "
                    "TimedPetriNet.durations mapping mutated?)"
                )
            self.marking = self.marking.with_delta({p: -1 for p in inputs})
            finish = now + duration
            self._in_flight[transition] = finish
            heapq.heappush(heap, (finish, transition))
            self.total_firings[transition] += 1
            self.policy.notify_fired(transition)
            fired.append(transition)
            if obs is not None:
                births = self._births
                consumed = tuple(
                    (place, *births[place].pop(0)) for place in inputs
                )
                obs.emit(FiringStarted(now, transition, duration, consumed))

        self.time = now + 1
        return StepRecord(now, completed, tuple(fired), state)

    def run(
        self,
        max_events: int,
        stop: Optional[Callable[[StepRecord], bool]] = None,
    ) -> List[StepRecord]:
        """Process up to ``max_events`` events, stopping early on
        deadlock or when ``stop(record)`` returns True.  Raises
        :class:`SimulationError` if a stop condition was requested but
        never met within the budget."""
        records: List[StepRecord] = []
        for _ in range(max_events):
            if self.is_deadlocked():
                return records
            record = self.advance()
            records.append(record)
            if stop is not None and stop(record):
                return records
        if stop is not None:
            raise SimulationError(
                f"stop condition not reached within {max_events} events"
            )
        return records


class EventFrustumDetector:
    """Cyclic-frustum detection on the event-driven engine.

    Bit-compatible with :class:`~repro.petrinet.behavior.FrustumDetector`:
    the returned :class:`~repro.petrinet.behavior.CyclicFrustum` has the
    same ``start_time``/``repeat_time``/``state``/``schedule_steps``/
    ``firing_counts``, and :attr:`graph` records the same consumption and
    production arcs (its ``steps`` list only contains event ticks — gap
    ticks fire nothing, which every downstream consumer treats as
    equivalent).

    Detection hashes the instantaneous state of each event.  The first
    repeated *event* state fixes the exact period ``p`` (within one
    steady-state period all states are distinct, so the first event-level
    match is exactly one period apart); the minimal transient ``ρ`` is
    then recovered by evaluating ``s(t) == s(t+p)`` backwards over the
    finitely many *breakpoints* where that predicate can change — the
    instants adjacent to an event on either side of the comparison.
    Between breakpoints both sides shift their residuals in lockstep, so
    the predicate is constant there and the walk is exact.
    """

    def __init__(
        self,
        timed_net: TimedPetriNet,
        initial: Marking,
        policy: Optional[ConflictResolutionPolicy] = None,
        record_arcs: bool = True,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.simulator = EventDrivenSimulator(
            timed_net, initial, policy, instrumentation=instrumentation
        )
        self._obs: Optional[Instrumentation] = (
            instrumentation if instrumentation else None
        )
        self.record_arcs = record_arcs
        self._recorder = BehaviorRecorder(timed_net, initial, record_arcs)
        self._seen: Dict[InstantaneousState, int] = {}
        self._times: List[int] = []
        # Per event: the StepRecord plus the policy key *after* the
        # firing loop — the key every gap tick up to the next event
        # carries (gap-invariant policies observe nothing new in gaps).
        self._records: List[Tuple[StepRecord, Tuple]] = []

    @property
    def graph(self) -> BehaviorGraph:
        return self._recorder.graph

    def detect(self, max_steps: int) -> CyclicFrustum:
        """Advance event by event until an instantaneous state repeats;
        raises :class:`SimulationError` on deadlock or when the next
        event lies beyond ``max_steps`` (same budget semantics and
        messages as the step detector)."""
        sim = self.simulator
        while True:
            if not sim._started:
                if sim.is_deadlocked():
                    raise SimulationError(
                        "net deadlocked at time 0 before a cyclic frustum "
                        "appeared"
                    )
                next_time = 0
            elif not sim._in_flight:
                # Nothing in flight after an event: the step simulator
                # would sit at the next tick with nothing enabled
                # (firing loops leave nothing enabled+idle) and report
                # deadlock there.
                if sim.time > max_steps:
                    raise SimulationError(
                        "no repeated instantaneous state within "
                        f"{max_steps} time steps"
                    )
                raise SimulationError(
                    f"net deadlocked at time {sim.time} before a cyclic "
                    "frustum appeared"
                )
            else:
                next_time = sim._heap[0][0]
            if next_time > max_steps:
                raise SimulationError(
                    f"no repeated instantaneous state within {max_steps} "
                    "time steps"
                )
            record = sim.advance()
            first = self._seen.get(record.state)
            if first is not None:
                return self._finish(first, record)
            self._seen[record.state] = len(self._records)
            self._times.append(record.time)
            self._records.append((record, self.simulator.policy.state_key()))
            self._recorder.record(record)

    # ------------------------------------------------------------------
    # Exact reconstruction
    # ------------------------------------------------------------------
    def _state_at(self, t: int) -> InstantaneousState:
        """The instantaneous state at any simulated tick ``t`` (event or
        gap), reconstructed from the nearest preceding event."""
        i = bisect.bisect_right(self._times, t) - 1
        record, post_key = self._records[i]
        if record.time == t:
            return record.state
        # Gap tick: marking/key are the previous event's post-firing
        # values; residuals are absolute completion times minus t (all
        # positive — every pending completion is a *later* event).
        sim = self.simulator
        marking = record.state.marking
        if record.fired:
            deltas: Dict[str, int] = {}
            for transition in record.fired:
                for place in sim._inputs[transition]:
                    deltas[place] = deltas.get(place, 0) - 1
            marking = marking.with_delta(deltas)
        residuals: Dict[str, int] = {
            name: record.time + remaining - t
            for name, remaining in record.state.residuals
        }
        for transition in record.fired:
            residuals[transition] = (
                record.time + sim.timed_net.duration(transition) - t
            )
        return InstantaneousState.make(marking, residuals, post_key)

    def _finish(self, first_index: int, final: StepRecord) -> CyclicFrustum:
        e1 = self._times[first_index]
        period = final.time - e1
        # Minimal transient: s(t) == s(t+p) holds on a suffix [ρ, ∞) and
        # can only change value at a breakpoint — an event time or the
        # tick right after one, on either side of the comparison.
        breakpoints = {0}
        for time in self._times:
            for candidate in (time, time + 1, time - period, time - period + 1):
                if 0 <= candidate < e1:
                    breakpoints.add(candidate)
        rho = e1
        for b in sorted(breakpoints, reverse=True):
            if self._state_at(b) == self._state_at(b + period):
                rho = b
            else:
                break
        repeat = rho + period

        fired_at: Dict[int, Tuple[str, ...]] = {}
        for record, _key in self._records:
            if rho <= record.time < repeat and record.fired:
                fired_at[record.time] = record.fired
        schedule_steps: List[Tuple[int, Tuple[str, ...]]] = [
            (t, fired_at.get(t, ())) for t in range(rho, repeat)
        ]
        firing_counts: Dict[str, int] = {}
        for _t, fired in schedule_steps:
            for transition in fired:
                firing_counts[transition] = firing_counts.get(transition, 0) + 1

        if self._obs is not None:
            self._obs.emit(
                FrustumDetected(
                    start_time=rho, repeat_time=repeat, period=period
                )
            )
        return CyclicFrustum(
            start_time=rho,
            repeat_time=repeat,
            state=self._state_at(rho),
            schedule_steps=schedule_steps,
            firing_counts=firing_counts,
        )
