"""Marked graphs (event graphs) — the net class the paper's theory uses.

A Petri net is a *marked graph* iff every place has exactly one input
and one output transition (Definition A.5.1).  Marked graphs are
persistent by construction and admit sharp structural characterisations
of liveness and safety (Theorems A.5.1/A.5.2), which this module
implements directly on cycles — no state-space exploration required.

A marked graph is conveniently viewed as a digraph over transitions in
which each place becomes an edge from its producer to its consumer,
labelled with its initial token count; simple cycles of that digraph
are in bijection with the simple cycles of the net (paper footnote 8/9:
directed paths where all nodes are distinct except the endpoints).

>>> from repro.petrinet import PetriNet, Marking
>>> net = PetriNet(name="ring")
>>> for t in ("a", "b"):
...     _ = net.add_transition(t)
>>> for place, (src, dst) in [("p", ("a", "b")), ("q", ("b", "a"))]:
...     _ = net.add_place(place)
...     _ = net.add_arc(src, place)
...     _ = net.add_arc(place, dst)
>>> view = MarkedGraphView(net, Marking({"p": 1}))
>>> [cycle.transitions for cycle in view.simple_cycles()]
[('a', 'b')]
>>> view.simple_cycles()[0].token_sum(Marking({"p": 1}))
1
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..errors import NotAMarkedGraphError
from .marking import Marking
from .net import PetriNet

__all__ = [
    "SimpleCycle",
    "MarkedGraphView",
    "require_marked_graph",
]


def require_marked_graph(net: PetriNet) -> None:
    """Raise :class:`NotAMarkedGraphError` unless ``net`` is a marked
    graph, naming an offending place for diagnosis."""
    for place in net.place_names:
        producers = net.input_transitions(place)
        consumers = net.output_transitions(place)
        if len(producers) != 1 or len(consumers) != 1:
            raise NotAMarkedGraphError(
                f"place {place!r} has {len(producers)} producers and "
                f"{len(consumers)} consumers; a marked graph requires "
                "exactly one of each"
            )


@dataclass(frozen=True)
class SimpleCycle:
    """A simple cycle of a marked graph.

    ``transitions`` lists the transitions in cycle order;
    ``places[i]`` is the place on the edge from ``transitions[i]`` to
    ``transitions[(i+1) % len]``.
    """

    transitions: Tuple[str, ...]
    places: Tuple[str, ...]

    def token_sum(self, marking: Marking) -> int:
        """``M(C)``: initial tokens summed over the cycle's places."""
        return sum(marking[p] for p in self.places)

    def value_sum(self, durations: Mapping[str, int]) -> int:
        """``Ω(C)``: execution times summed over the cycle's
        transitions."""
        return sum(durations[t] for t in self.transitions)

    def cycle_time(self, marking: Marking, durations: Mapping[str, int]) -> Fraction:
        """``Ω(C) / M(C)`` — infinite token-free cycles are rejected by
        the caller (they mean deadlock)."""
        tokens = self.token_sum(marking)
        if tokens == 0:
            raise ZeroDivisionError("token-free cycle has no finite cycle time")
        return Fraction(self.value_sum(durations), tokens)

    def balancing_ratio(self, marking: Marking) -> Fraction:
        """``M(C) / |C|`` — Section 6's balancing ratio, with ``|C|`` the
        number of transitions on the cycle (unit execution times)."""
        return Fraction(self.token_sum(marking), len(self.transitions))

    def __len__(self) -> int:
        return len(self.transitions)


class MarkedGraphView:
    """Cycle-level analysis of a marked graph with an initial marking.

    The view caches the transition-level digraph and the simple-cycle
    enumeration.  All of Theorems A.5.1–A.5.3 are available as methods.
    """

    def __init__(self, net: PetriNet, initial: Marking) -> None:
        require_marked_graph(net)
        self.net = net
        self.initial = initial
        self._digraph: Optional[nx.MultiDiGraph] = None
        self._cycles: Optional[List[SimpleCycle]] = None

    # ------------------------------------------------------------------
    # Underlying digraph
    # ------------------------------------------------------------------
    def digraph(self) -> nx.MultiDiGraph:
        """Transitions as nodes; one edge per place (producer →
        consumer), keyed by the place name and labelled with its initial
        token count."""
        if self._digraph is None:
            graph = nx.MultiDiGraph()
            graph.add_nodes_from(self.net.transition_names)
            for place in self.net.place_names:
                (producer,) = self.net.input_transitions(place)
                (consumer,) = self.net.output_transitions(place)
                graph.add_edge(
                    producer,
                    consumer,
                    key=place,
                    tokens=self.initial[place],
                )
            self._digraph = graph
        return self._digraph

    # ------------------------------------------------------------------
    # Cycle enumeration
    # ------------------------------------------------------------------
    def simple_cycles(self) -> List[SimpleCycle]:
        """All simple cycles (node-simple, per the paper's footnote), as
        :class:`SimpleCycle` records.

        Parallel places between the same pair of transitions yield one
        cycle per place choice, as they should: each corresponds to a
        distinct simple cycle of the net.
        """
        if self._cycles is not None:
            return self._cycles
        graph = self.digraph()
        cycles: List[SimpleCycle] = []
        for node_cycle in nx.simple_cycles(nx.DiGraph(graph)):
            cycles.extend(self._expand_parallel_places(node_cycle))
        # networkx yields cycles in hash order; sort canonicalized
        # cycles so reports, ledgers and goldens are reproducible
        # across processes and PYTHONHASHSEED values.
        cycles.sort(key=lambda c: (c.transitions, c.places))
        self._cycles = cycles
        return cycles

    def _expand_parallel_places(self, node_cycle: Sequence[str]) -> List[SimpleCycle]:
        """Turn a node cycle into all place-labelled cycles it induces
        (cartesian product over parallel places on each hop), rotated to
        the canonical start (the lexicographically smallest transition)
        so the same cycle always prints the same way."""
        graph = self.digraph()
        hops: List[List[str]] = []
        size = len(node_cycle)
        for i in range(size):
            u = node_cycle[i]
            v = node_cycle[(i + 1) % size]
            hops.append(sorted(graph[u][v].keys()))
        combos: List[List[str]] = [[]]
        for options in hops:
            combos = [prefix + [choice] for prefix in combos for choice in options]
        start = min(range(size), key=node_cycle.__getitem__)
        rotated = tuple(node_cycle[start:]) + tuple(node_cycle[:start])
        return [
            SimpleCycle(rotated, tuple(combo[start:] + combo[:start]))
            for combo in combos
        ]

    # ------------------------------------------------------------------
    # Theorems A.5.1 – A.5.3
    # ------------------------------------------------------------------
    def is_live(self) -> bool:
        """Theorem A.5.1: live iff every simple cycle carries a token."""
        return all(c.token_sum(self.initial) > 0 for c in self.simple_cycles())

    def token_free_cycles(self) -> List[SimpleCycle]:
        """Witnesses against liveness (empty when live)."""
        return [c for c in self.simple_cycles() if c.token_sum(self.initial) == 0]

    def is_safe(self) -> bool:
        """Theorem A.5.2 (for a live marking): safe iff every place lies
        on some simple cycle with token count exactly 1."""
        covered = set()
        for cycle in self.simple_cycles():
            if cycle.token_sum(self.initial) == 1:
                covered.update(cycle.places)
        return covered >= set(self.net.place_names)

    def unsafe_places(self) -> List[str]:
        """Places not covered by any token-1 simple cycle."""
        covered = set()
        for cycle in self.simple_cycles():
            if cycle.token_sum(self.initial) == 1:
                covered.update(cycle.places)
        return [p for p in self.net.place_names if p not in covered]

    def token_count_invariant(self, marking: Marking) -> bool:
        """The token count of every simple cycle is a firing invariant
        (Appendix A.7); this checks ``marking`` agrees with the initial
        marking on every cycle — useful as a simulator sanity oracle."""
        return all(
            c.token_sum(marking) == c.token_sum(self.initial)
            for c in self.simple_cycles()
        )

    def is_strongly_connected(self) -> bool:
        """Strong connectivity of the transition digraph; steady-state
        equivalent nets are strongly connected by construction."""
        graph = nx.DiGraph(self.digraph())
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_strongly_connected(graph)
