"""Reachability analysis for (small) untimed Petri nets.

The paper leans on the *forward marking class* ``M̂`` — the set of
markings reachable from an initial marking — to define liveness,
boundedness, safety and persistence (Appendix A.3).  For the bounded
nets the paper studies (SDSP-PN and SDSP-SCP-PN are live and safe) the
forward marking class is finite and can be explored exhaustively; this
module does so with breadth-first search and also detects unboundedness
by the classic strict-domination (coverability) criterion so that it
terminates on every input.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import SimulationError
from .marking import Marking, enabled_transitions, fire
from .net import PetriNet

__all__ = ["ReachabilityGraph", "explore"]


@dataclass
class ReachabilityGraph:
    """The explored forward marking class of a net.

    Attributes
    ----------
    initial:
        The initial marking the exploration started from.
    markings:
        Every distinct reachable marking found.
    edges:
        Triples ``(source_marking, transition, target_marking)``.
    unbounded:
        True if exploration found a marking strictly dominating one of
        its BFS ancestors — a witness that the net is unbounded, in
        which case ``markings`` is only a truncated sample.
    truncated:
        True if the ``max_markings`` budget was hit before exhausting
        the state space (distinct from proven unboundedness).
    """

    initial: Marking
    markings: List[Marking] = field(default_factory=list)
    edges: List[Tuple[Marking, str, Marking]] = field(default_factory=list)
    unbounded: bool = False
    truncated: bool = False

    def successors(self, marking: Marking) -> List[Tuple[str, Marking]]:
        return [(t, m2) for (m1, t, m2) in self.edges if m1 == marking]

    def transitions_fired(self) -> Set[str]:
        """The set of transitions that fire somewhere in the explored
        graph (used by the liveness check)."""
        return {t for (_, t, _) in self.edges}

    @property
    def complete(self) -> bool:
        """True iff the full (finite) forward marking class was explored."""
        return not (self.unbounded or self.truncated)

    def max_tokens(self, place: str) -> int:
        """The bound ``N`` for ``place`` over the explored markings."""
        return max((m[place] for m in self.markings), default=0)


def explore(
    net: PetriNet,
    initial: Marking,
    max_markings: int = 100_000,
) -> ReachabilityGraph:
    """Breadth-first exploration of the forward marking class.

    Unboundedness detection: along each BFS path we keep the chain of
    ancestor markings; if a newly produced marking strictly dominates an
    ancestor, the standard pumping argument shows the net is unbounded
    and exploration stops with ``unbounded=True``.  (We compare against
    BFS-tree ancestors only — sound, and sufficient for the structured
    nets in this project; the full Karp–Miller construction is not
    needed because all nets we analyse exhaustively are safe.)
    """
    graph = ReachabilityGraph(initial=initial)
    seen: Dict[Marking, int] = {initial: 0}
    # parent pointers for the ancestor/domination check
    parent: Dict[Marking, Optional[Marking]] = {initial: None}
    graph.markings.append(initial)
    queue = deque([initial])

    while queue:
        current = queue.popleft()
        for transition in enabled_transitions(net, current):
            successor = fire(net, current, transition)
            is_new = successor not in seen
            if is_new:
                # domination check against ancestors of `current`
                ancestor: Optional[Marking] = current
                while ancestor is not None:
                    if successor.strictly_dominates(ancestor):
                        graph.unbounded = True
                        graph.edges.append((current, transition, successor))
                        graph.markings.append(successor)
                        return graph
                    ancestor = parent[ancestor]
                seen[successor] = len(graph.markings)
                parent[successor] = current
                graph.markings.append(successor)
                queue.append(successor)
            graph.edges.append((current, transition, successor))
            if len(graph.markings) > max_markings:
                graph.truncated = True
                return graph
    return graph
