"""Behavior graphs and cyclic-frustum detection (Section 3.3).

A *behavior graph* is the trace generated while executing a timed Petri
net under the earliest firing rule: at each time step it records the
newly marked places and the set of transitions fired at that step, with
arcs for token consumption (place instance → transition instance) and
production (transition instance → place instance).

The key observation of the paper (Lemmas 3.3.1/3.3.2) is that the
behavior graph of an SDSP-PN is unique and eventually repeats an
*instantaneous state*; the segment between two consecutive occurrences
of a repeated state is the **cyclic frustum** (Definition 3.3.1), from
which the steady-state equivalent net and a time-optimal schedule are
derived.  Detection is a hash-map lookup per step, so finding the
frustum costs O(detected time × net size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..obs.events import FrustumDetected, Instrumentation
from ..obs.metrics import timed
from .marking import Marking
from .simulator import (
    ConflictResolutionPolicy,
    EarliestFiringSimulator,
    StepRecord,
)
from .timed import InstantaneousState, TimedPetriNet

__all__ = [
    "PlaceInstance",
    "TransitionInstance",
    "BehaviorStep",
    "BehaviorGraph",
    "BehaviorRecorder",
    "CyclicFrustum",
    "FrustumDetector",
    "detect_frustum",
]


@dataclass(frozen=True)
class PlaceInstance:
    """A token birth: ``place`` became marked at ``time`` (time 0 births
    are the initial marking)."""

    place: str
    time: int


@dataclass(frozen=True)
class TransitionInstance:
    """A firing: ``transition`` started executing at ``time``."""

    transition: str
    time: int


@dataclass(frozen=True)
class BehaviorStep:
    """One level of the behavior graph."""

    time: int
    fired: Tuple[str, ...]
    newly_marked: Tuple[str, ...]
    state: InstantaneousState


@dataclass
class BehaviorGraph:
    """The recorded trace: levels plus consumption/production arcs.

    ``consumptions`` maps each :class:`TransitionInstance` to the place
    instances whose tokens it consumed; ``productions`` maps it to the
    place instances it created.  Tokens are matched FIFO per place,
    which is exact for safe nets (at most one token is ever pending per
    place) and a faithful queueing interpretation otherwise.
    """

    steps: List[BehaviorStep] = field(default_factory=list)
    consumptions: Dict[TransitionInstance, Tuple[PlaceInstance, ...]] = field(
        default_factory=dict
    )
    productions: Dict[TransitionInstance, Tuple[PlaceInstance, ...]] = field(
        default_factory=dict
    )

    def fired_between(self, start: int, stop: int) -> List[Tuple[int, Tuple[str, ...]]]:
        """``(time, fired)`` pairs for steps with ``start <= time < stop``."""
        return [
            (s.time, s.fired) for s in self.steps if start <= s.time < stop
        ]

    def firing_counts(self, start: int, stop: int) -> Dict[str, int]:
        """How many times each transition fires in ``[start, stop)``."""
        counts: Dict[str, int] = {}
        for _, fired in self.fired_between(start, stop):
            for transition in fired:
                counts[transition] = counts.get(transition, 0) + 1
        return counts


@dataclass
class CyclicFrustum:
    """The repeating segment of a behavior graph.

    Attributes mirror the measurement columns of Tables 1 and 2:

    * ``start_time`` — when the initial instantaneous state is first
      seen (the paper's *start time*);
    * ``repeat_time`` — when that state recurs (*repeat time*);
    * ``length`` — ``repeat_time - start_time`` (*length of frustum*),
      the initiation period ``p`` of the steady-state schedule;
    * ``firing_counts`` — occurrences of each transition inside the
      frustum (*transition count*);
    * ``state`` — the repeated instantaneous state itself.
    """

    start_time: int
    repeat_time: int
    state: InstantaneousState
    schedule_steps: List[Tuple[int, Tuple[str, ...]]]
    firing_counts: Dict[str, int]

    @property
    def length(self) -> int:
        return self.repeat_time - self.start_time

    def transition_count(self, transition: Optional[str] = None) -> int:
        """Count for one transition, or the common count when uniform.

        For marked graphs the frustum is a cyclic firing sequence, so by
        Theorem A.5.3 every transition fires the same number of times;
        asking for the common count on a non-uniform frustum raises.
        """
        if transition is not None:
            return self.firing_counts.get(transition, 0)
        counts = set(self.firing_counts.values())
        if len(counts) != 1:
            raise SimulationError(
                "transition counts are not uniform across the frustum; "
                f"distinct counts: {sorted(counts)}"
            )
        return counts.pop()

    def computation_rate(self, transition: str) -> Fraction:
        """Average firings per time unit inside the frustum — the
        paper's *computation rate* column.

        A transition the frustum never recorded raises instead of
        reporting a silent rate of 0 — the only way a live marked
        graph's steady state omits a transition is a caller asking
        about the wrong net."""
        if self.length == 0:
            raise SimulationError("empty frustum has no computation rate")
        if transition not in self.firing_counts:
            raise SimulationError(
                f"transition {transition!r} does not appear in the "
                "frustum's firing counts"
            )
        return Fraction(self.firing_counts[transition], self.length)

    def uniform_rate(self) -> Fraction:
        """The common computation rate (requires uniform counts)."""
        return Fraction(self.transition_count(), self.length)


class BehaviorRecorder:
    """Incrementally builds a :class:`BehaviorGraph` from
    :class:`StepRecord` objects — shared by the step and event frustum
    detectors so both record identical consumption/production arcs."""

    def __init__(
        self,
        timed_net: TimedPetriNet,
        initial: Marking,
        record_arcs: bool = True,
    ) -> None:
        self._timed_net = timed_net
        self._net = timed_net.net
        self.record_arcs = record_arcs
        self.graph = BehaviorGraph()
        # FIFO queues of pending token birth times, per place.
        self._pending: Dict[str, List[int]] = {
            p: [0] * initial[p] for p in timed_net.net.place_names
        }

    def record(self, record: StepRecord) -> None:
        net = self._net
        newly_marked: List[str] = []
        for transition in record.completed:
            duration = self._timed_net.duration(transition)
            start = record.time - duration
            instance = TransitionInstance(transition, start)
            produced = []
            for place in net.output_places(transition):
                self._pending[place].append(record.time)
                produced.append(PlaceInstance(place, record.time))
                newly_marked.append(place)
            if self.record_arcs:
                self.graph.productions[instance] = tuple(produced)
        for transition in record.fired:
            instance = TransitionInstance(transition, record.time)
            consumed = []
            for place in net.input_places(transition):
                birth = self._pending[place].pop(0)
                consumed.append(PlaceInstance(place, birth))
            if self.record_arcs:
                self.graph.consumptions[instance] = tuple(consumed)
        self.graph.steps.append(
            BehaviorStep(
                record.time, record.fired, tuple(newly_marked), record.state
            )
        )


class FrustumDetector:
    """Runs the earliest-firing simulation, records the behavior graph,
    and stops at the first repeated instantaneous state."""

    def __init__(
        self,
        timed_net: TimedPetriNet,
        initial: Marking,
        policy: Optional[ConflictResolutionPolicy] = None,
        record_arcs: bool = True,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.simulator = EarliestFiringSimulator(
            timed_net, initial, policy, instrumentation=instrumentation
        )
        self._obs: Optional[Instrumentation] = (
            instrumentation if instrumentation else None
        )
        self.record_arcs = record_arcs
        self._recorder = BehaviorRecorder(timed_net, initial, record_arcs)
        self._seen: Dict[InstantaneousState, int] = {}

    @property
    def graph(self) -> BehaviorGraph:
        return self._recorder.graph

    def _record_step(self, record: StepRecord) -> None:
        self._recorder.record(record)

    def detect(self, max_steps: int) -> CyclicFrustum:
        """Advance until an instantaneous state repeats.

        Raises :class:`SimulationError` on deadlock or when ``max_steps``
        is exhausted — by Lemma 3.3.2 a repeat always exists for live,
        safe nets, and the theory bounds it by O(n⁴) time steps, so a
        generous budget never fires spuriously.
        """
        while self.simulator.time <= max_steps:
            if self.simulator.is_deadlocked():
                raise SimulationError(
                    f"net deadlocked at time {self.simulator.time} before a "
                    "cyclic frustum appeared"
                )
            record = self.simulator.step()
            first_seen = self._seen.get(record.state)
            if first_seen is not None:
                if self._obs is not None:
                    self._obs.emit(
                        FrustumDetected(
                            start_time=first_seen,
                            repeat_time=record.time,
                            period=record.time - first_seen,
                        )
                    )
                return self._build_frustum(first_seen, record.time, record.state)
            self._seen[record.state] = record.time
            self._record_step(record)
        raise SimulationError(
            f"no repeated instantaneous state within {max_steps} time steps"
        )

    def _build_frustum(
        self, start: int, repeat: int, state: InstantaneousState
    ) -> CyclicFrustum:
        return CyclicFrustum(
            start_time=start,
            repeat_time=repeat,
            state=state,
            schedule_steps=self.graph.fired_between(start, repeat),
            firing_counts=self.graph.firing_counts(start, repeat),
        )


@timed("petrinet.detect_frustum")
def detect_frustum(
    timed_net: TimedPetriNet,
    initial: Marking,
    policy: Optional[ConflictResolutionPolicy] = None,
    max_steps: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
    engine: str = "step",
) -> Tuple[CyclicFrustum, BehaviorGraph]:
    """Convenience wrapper: detect the cyclic frustum and return it with
    the behavior graph that produced it.

    ``max_steps`` defaults to a generous multiple of the theoretical
    O(n⁴) bound (Theorem 4.1.2), clamped to at least 10,000 steps so
    tiny nets with long pipelines are not cut short.

    ``instrumentation`` threads down to the simulator: the whole
    detection run streams firing/snapshot events plus one
    :class:`~repro.obs.events.FrustumDetected` when the state repeats.

    ``engine`` selects the simulation engine: ``"step"`` runs the
    unit-time :class:`~repro.petrinet.simulator.EarliestFiringSimulator`
    and snapshots every tick; ``"event"`` runs the completion-heap
    :class:`~repro.petrinet.event_sim.EventDrivenSimulator`, which jumps
    between firing/completion instants and does work proportional to
    firings rather than elapsed time.  Both return the same frustum (the
    test suite cross-validates them); the event engine's behavior graph
    simply omits the no-op gap steps.

    >>> from repro.loops import parse_loop, translate
    >>> from repro.core import build_sdsp_pn
    >>> pn = build_sdsp_pn(translate(parse_loop(
    ...     "do tiny:\\n  A[i] = A[i-1] + IN[i]")).graph, include_io=False)
    >>> frustum, _ = detect_frustum(pn.timed, pn.initial, engine="event")
    >>> (frustum.start_time, frustum.length)
    (0, 1)
    """
    if max_steps is None:
        n = max(1, len(timed_net.net.transition_names))
        total_duration = sum(timed_net.durations.values())
        max_steps = max(10_000, 4 * n**4, 16 * total_duration)
    if engine == "step":
        detector = FrustumDetector(
            timed_net, initial, policy, instrumentation=instrumentation
        )
    elif engine == "event":
        from .event_sim import EventFrustumDetector

        detector = EventFrustumDetector(
            timed_net, initial, policy, instrumentation=instrumentation
        )
    else:
        raise SimulationError(
            f"unknown simulation engine {engine!r}; expected 'step' or 'event'"
        )
    frustum = detector.detect(max_steps)
    return frustum, detector.graph
