"""Untimed Petri-net structure.

A Petri net is the triple ``(P, T, A)`` of Appendix A.1 of the paper:
a set of *places*, a set of *transitions*, and a set of directed arcs
connecting places to transitions (token consumption) and transitions to
places (token production).  This module provides the structural layer
only — markings live in :mod:`repro.petrinet.marking` and time in
:mod:`repro.petrinet.timed`.

Places and transitions are identified by string names, unique within
their net.  The dot-notation of the paper (``•t`` for input places of a
transition, ``t•`` for output places, and symmetrically for places) is
exposed as :meth:`PetriNet.preset` and :meth:`PetriNet.postset`.

>>> net = PetriNet(name="ring")
>>> _ = net.add_transition("a")
>>> _ = net.add_transition("b")
>>> _ = net.add_place("a_to_b")
>>> _ = net.add_arc("a", "a_to_b")
>>> _ = net.add_arc("a_to_b", "b")
>>> net.input_places("b")
('a_to_b',)
>>> net.preset("a_to_b"), net.postset("a_to_b")
(('a',), ('b',))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import NetConstructionError

__all__ = ["Place", "Transition", "Arc", "PetriNet"]


@dataclass(frozen=True)
class Place:
    """A place (drawn as a circle).  ``annotation`` is free-form metadata
    used by higher layers, e.g. ``"data"`` / ``"ack"`` for SDSP-PN places
    or ``"run"`` for the SCP run place."""

    name: str
    annotation: str = ""


@dataclass(frozen=True)
class Transition:
    """A transition (drawn as a bar).  ``annotation`` carries metadata
    such as ``"sdsp"`` versus ``"dummy"`` for series-expanded nets."""

    name: str
    annotation: str = ""


@dataclass(frozen=True)
class Arc:
    """A directed arc.  Exactly one endpoint is a place and the other a
    transition; ``source_is_place`` records the direction."""

    source: str
    target: str
    source_is_place: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} -> {self.target}"


class PetriNet:
    """A mutable Petri-net structure ``(P, T, A)``.

    The class enforces the structural well-formedness conditions of the
    definition: non-empty disjoint place/transition name spaces and arcs
    only between a place and a transition (in either direction).

    Typical construction::

        net = PetriNet("example")
        net.add_place("p1", tokens_hint=1)
        net.add_transition("t1")
        net.add_arc("p1", "t1")   # consumption arc
        net.add_arc("t1", "p1")   # production arc
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        self._arcs: Set[Tuple[str, str]] = set()
        # Adjacency, kept in insertion order for deterministic iteration.
        self._place_inputs: Dict[str, List[str]] = {}
        self._place_outputs: Dict[str, List[str]] = {}
        self._transition_inputs: Dict[str, List[str]] = {}
        self._transition_outputs: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(self, name: str, annotation: str = "") -> Place:
        """Add a place.  Raises if the name is already used by a place or
        a transition (the two name spaces must be disjoint)."""
        self._check_fresh(name)
        place = Place(name, annotation)
        self._places[name] = place
        self._place_inputs[name] = []
        self._place_outputs[name] = []
        return place

    def add_transition(self, name: str, annotation: str = "") -> Transition:
        """Add a transition.  Raises on name collision."""
        self._check_fresh(name)
        transition = Transition(name, annotation)
        self._transitions[name] = transition
        self._transition_inputs[name] = []
        self._transition_outputs[name] = []
        return transition

    def add_arc(self, source: str, target: str) -> Arc:
        """Add a directed arc between a place and a transition.

        The direction is inferred from which endpoint is a place.  Arcs
        between two places or two transitions are rejected, as are
        duplicate arcs and arcs with unknown endpoints.
        """
        source_is_place = source in self._places
        target_is_place = target in self._places
        if source_is_place == target_is_place:
            if source not in self._places and source not in self._transitions:
                raise NetConstructionError(f"unknown arc source {source!r}")
            if target not in self._places and target not in self._transitions:
                raise NetConstructionError(f"unknown arc target {target!r}")
            kind = "places" if source_is_place else "transitions"
            raise NetConstructionError(
                f"arc {source!r} -> {target!r} connects two {kind}; arcs must "
                "join a place and a transition"
            )
        if not source_is_place and source not in self._transitions:
            raise NetConstructionError(f"unknown arc source {source!r}")
        if not target_is_place and target not in self._transitions:
            raise NetConstructionError(f"unknown arc target {target!r}")
        if (source, target) in self._arcs:
            raise NetConstructionError(f"duplicate arc {source!r} -> {target!r}")
        self._arcs.add((source, target))
        if source_is_place:
            self._place_outputs[source].append(target)
            self._transition_inputs[target].append(source)
        else:
            self._transition_outputs[source].append(target)
            self._place_inputs[target].append(source)
        return Arc(source, target, source_is_place)

    def remove_arc(self, source: str, target: str) -> None:
        """Remove an existing arc (used by net-rewriting passes such as
        the storage optimiser)."""
        if (source, target) not in self._arcs:
            raise NetConstructionError(f"no arc {source!r} -> {target!r} to remove")
        self._arcs.discard((source, target))
        if source in self._places:
            self._place_outputs[source].remove(target)
            self._transition_inputs[target].remove(source)
        else:
            self._transition_outputs[source].remove(target)
            self._place_inputs[target].remove(source)

    def remove_place(self, name: str) -> None:
        """Remove a place and all arcs touching it."""
        if name not in self._places:
            raise NetConstructionError(f"unknown place {name!r}")
        for transition in list(self._place_inputs[name]):
            self.remove_arc(transition, name)
        for transition in list(self._place_outputs[name]):
            self.remove_arc(name, transition)
        del self._places[name]
        del self._place_inputs[name]
        del self._place_outputs[name]

    def _check_fresh(self, name: str) -> None:
        if name in self._places or name in self._transitions:
            raise NetConstructionError(f"name {name!r} already used in net")
        if not name:
            raise NetConstructionError("empty names are not allowed")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def places(self) -> Tuple[Place, ...]:
        return tuple(self._places.values())

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        return tuple(self._transitions.values())

    @property
    def place_names(self) -> Tuple[str, ...]:
        return tuple(self._places)

    @property
    def transition_names(self) -> Tuple[str, ...]:
        return tuple(self._transitions)

    @property
    def arcs(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(self._arcs)

    def has_place(self, name: str) -> bool:
        return name in self._places

    def has_transition(self, name: str) -> bool:
        return name in self._transitions

    def place(self, name: str) -> Place:
        try:
            return self._places[name]
        except KeyError:
            raise NetConstructionError(f"unknown place {name!r}") from None

    def transition(self, name: str) -> Transition:
        try:
            return self._transitions[name]
        except KeyError:
            raise NetConstructionError(f"unknown transition {name!r}") from None

    # Dot notation ------------------------------------------------------
    def preset(self, name: str) -> Tuple[str, ...]:
        """``•x``: input transitions of a place, or input places of a
        transition."""
        if name in self._places:
            return tuple(self._place_inputs[name])
        if name in self._transitions:
            return tuple(self._transition_inputs[name])
        raise NetConstructionError(f"unknown node {name!r}")

    def postset(self, name: str) -> Tuple[str, ...]:
        """``x•``: output transitions of a place, or output places of a
        transition."""
        if name in self._places:
            return tuple(self._place_outputs[name])
        if name in self._transitions:
            return tuple(self._transition_outputs[name])
        raise NetConstructionError(f"unknown node {name!r}")

    def input_places(self, transition: str) -> Tuple[str, ...]:
        """``•t`` for a transition ``t``."""
        if transition not in self._transitions:
            raise NetConstructionError(f"unknown transition {transition!r}")
        return tuple(self._transition_inputs[transition])

    def output_places(self, transition: str) -> Tuple[str, ...]:
        """``t•`` for a transition ``t``."""
        if transition not in self._transitions:
            raise NetConstructionError(f"unknown transition {transition!r}")
        return tuple(self._transition_outputs[transition])

    def input_transitions(self, place: str) -> Tuple[str, ...]:
        """``•p`` for a place ``p``."""
        if place not in self._places:
            raise NetConstructionError(f"unknown place {place!r}")
        return tuple(self._place_inputs[place])

    def output_transitions(self, place: str) -> Tuple[str, ...]:
        """``p•`` for a place ``p``."""
        if place not in self._places:
            raise NetConstructionError(f"unknown place {place!r}")
        return tuple(self._place_outputs[place])

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def is_marked_graph(self) -> bool:
        """True iff every place has exactly one input and one output
        transition (Definition A.5.1)."""
        return all(
            len(self._place_inputs[p]) == 1 and len(self._place_outputs[p]) == 1
            for p in self._places
        )

    def structural_conflicts(self) -> Tuple[str, ...]:
        """Places with more than one output transition (``|p•| > 1``) —
        the necessary condition for choice (Appendix A.4)."""
        return tuple(p for p in self._places if len(self._place_outputs[p]) > 1)

    def has_structural_conflict(self) -> bool:
        return bool(self.structural_conflicts())

    def incidence_matrix(self) -> "List[List[int]]":
        """The place × transition incidence matrix ``C`` with
        ``C[p][t] = produced(t, p) - consumed(t, p)``.

        Row/column order follows :attr:`place_names` and
        :attr:`transition_names`.  Self-loop place/transition pairs
        contribute zero, as usual.
        """
        place_index = {p: i for i, p in enumerate(self._places)}
        transition_index = {t: j for j, t in enumerate(self._transitions)}
        matrix = [[0] * len(transition_index) for _ in place_index]
        for source, target in self._arcs:
            if source in self._places:  # consumption p -> t
                matrix[place_index[source]][transition_index[target]] -= 1
            else:  # production t -> p
                matrix[place_index[target]][transition_index[source]] += 1
        return matrix

    def transition_adjacency(self) -> Dict[str, List[Tuple[str, str]]]:
        """For each transition ``u``, the list of ``(place, v)`` pairs such
        that ``u -> place -> v``.  Only defined for marked graphs, where
        each place has a unique consumer; on other nets the place's every
        consumer contributes a pair."""
        adjacency: Dict[str, List[Tuple[str, str]]] = {
            t: [] for t in self._transitions
        }
        for place in self._places:
            for producer in self._place_inputs[place]:
                for consumer in self._place_outputs[place]:
                    adjacency[producer].append((place, consumer))
        return adjacency

    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """Structural deep copy (annotations preserved)."""
        clone = PetriNet(name if name is not None else self.name)
        for place in self._places.values():
            clone.add_place(place.name, place.annotation)
        for transition in self._transitions.values():
            clone.add_transition(transition.name, transition.annotation)
        for source, target in sorted(self._arcs):
            clone.add_arc(source, target)
        return clone

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._places or name in self._transitions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PetriNet({self.name!r}, |P|={len(self._places)}, "
            f"|T|={len(self._transitions)}, |A|={len(self._arcs)})"
        )
