"""Cycle-time and critical-cycle analysis of timed marked graphs
(Appendix A.7).

The *cycle time* of a live timed marked graph is::

    alpha = max over simple cycles C of  Ω(C) / M(C)

where ``Ω(C)`` sums the execution times of the cycle's transitions and
``M(C)`` its initial tokens; the *computation rate* is ``1 / alpha`` and
the maximising cycles are the **critical cycles** whose structure
drives everything in the paper: the steady-state period, the schedule,
the polynomial bounds, and the storage optimiser.

Three independent algorithms are provided and cross-checked in the test
suite:

* :func:`cycle_time_by_enumeration` — exact, enumerates all simple
  cycles (fine for loop bodies; can be exponential in general);
* :func:`cycle_time_lawler` — Lawler's parametric search: binary-search
  the ratio ``λ`` and test for a positive-weight cycle under edge
  weights ``τ(u) − λ·M(p)`` with exact rational arithmetic, then snap
  to the bounded-denominator rational the answer must be;
* :mod:`repro.petrinet.linprog` — the LP formulation (Magott [30]).

(The production path for rates, Howard's policy iteration, lives in
:mod:`repro.petrinet.howard` and is cross-checked against all three.)

Per Appendix A.7 the implicit self-loops of Assumption A.6.1 also count
as cycles: a transition ``t`` contributes a cycle of ratio ``τ(t)/1``,
so the cycle time is never below the longest execution time.

>>> from repro.petrinet import PetriNet, Marking, MarkedGraphView
>>> net = PetriNet(name="ring")
>>> for t in ("a", "b"):
...     _ = net.add_transition(t)
>>> for place, (src, dst), tokens in [
...     ("p", ("a", "b"), 1), ("q", ("b", "a"), 0)]:
...     _ = net.add_place(place)
...     _ = net.add_arc(src, place)
...     _ = net.add_arc(place, dst)
>>> view = MarkedGraphView(net, Marking({"p": 1}))
>>> cycle_time_by_enumeration(view, {"a": 2, "b": 3})  # (2+3)/1 token
Fraction(5, 1)
>>> cycle_time_lawler(view, {"a": 2, "b": 3})
Fraction(5, 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .marked_graph import MarkedGraphView, SimpleCycle
from .marking import Marking
from .net import PetriNet

__all__ = [
    "CycleMetrics",
    "CriticalCycleReport",
    "cycle_metrics",
    "cycle_time_by_enumeration",
    "critical_cycle_report",
    "cycle_time_lawler",
    "computation_rate",
]


@dataclass(frozen=True)
class CycleMetrics:
    """A simple cycle with its token sum, value sum and ratio."""

    cycle: SimpleCycle
    tokens: int
    value: int

    @property
    def ratio(self) -> Fraction:
        return Fraction(self.value, self.tokens)


@dataclass
class CriticalCycleReport:
    """Everything the rest of the library wants to know about cycles.

    ``critical_cycles`` lists the structural cycles achieving the cycle
    time; ``critical_self_loops`` lists transitions whose implicit
    self-loop achieves it (possible when one operation is slower than
    every recurrence).  ``transitions_on_critical_cycles`` is the union
    used by the multiple-critical-cycle bound (Theorem 4.2.2).
    """

    cycle_time: Fraction
    metrics: List[CycleMetrics]
    critical_cycles: List[SimpleCycle]
    critical_self_loops: List[str]

    @property
    def computation_rate(self) -> Fraction:
        return 1 / self.cycle_time

    @property
    def transitions_on_critical_cycles(self) -> frozenset:
        names = set(self.critical_self_loops)
        for cycle in self.critical_cycles:
            names.update(cycle.transitions)
        return frozenset(names)

    @property
    def has_unique_critical_cycle(self) -> bool:
        return len(self.critical_cycles) + len(self.critical_self_loops) == 1


def cycle_metrics(
    view: MarkedGraphView, durations: Mapping[str, int]
) -> List[CycleMetrics]:
    """Metrics for every structural simple cycle; raises
    :class:`AnalysisError` on a token-free cycle (a deadlocked net has
    no cycle time)."""
    result = []
    for cycle in view.simple_cycles():
        tokens = cycle.token_sum(view.initial)
        if tokens == 0:
            raise AnalysisError(
                "cycle through "
                + " -> ".join(cycle.transitions)
                + " carries no token: the net is not live and has no cycle time"
            )
        result.append(
            CycleMetrics(cycle, tokens, cycle.value_sum(durations))
        )
    return result


def critical_cycle_report(
    view: MarkedGraphView, durations: Mapping[str, int]
) -> CriticalCycleReport:
    """Exhaustive critical-cycle analysis (enumeration algorithm)."""
    metrics = cycle_metrics(view, durations)
    best = Fraction(0)
    for transition in view.net.transition_names:
        best = max(best, Fraction(durations[transition], 1))
    for m in metrics:
        best = max(best, m.ratio)
    if best == 0:
        raise AnalysisError("net has no transitions; cycle time undefined")
    critical = [m.cycle for m in metrics if m.ratio == best]
    self_loops = [
        t
        for t in view.net.transition_names
        if Fraction(durations[t], 1) == best
    ]
    return CriticalCycleReport(best, metrics, critical, self_loops)


def cycle_time_by_enumeration(
    view: MarkedGraphView, durations: Mapping[str, int]
) -> Fraction:
    """Cycle time via exhaustive simple-cycle enumeration."""
    return critical_cycle_report(view, durations).cycle_time


def computation_rate(
    view: MarkedGraphView, durations: Mapping[str, int]
) -> Fraction:
    """Optimal computation rate ``γ = 1 / cycle time`` — the maximum
    achievable firing rate under *any* machine model (Appendix A.7)."""
    return 1 / cycle_time_by_enumeration(view, durations)


# ---------------------------------------------------------------------------
# Lawler's parametric search
# ---------------------------------------------------------------------------


def _has_positive_cycle(
    nodes: Sequence[str],
    edges: Sequence[Tuple[str, str, Fraction]],
    strict: bool = True,
) -> bool:
    """Bellman–Ford longest-path relaxation: does the graph contain a
    cycle of total weight > 0 (or >= 0 off the trivial zero-edge case
    when ``strict`` is False)?

    Distances start at zero everywhere, which is equivalent to a
    virtual source with zero-weight edges to all nodes, so cycles are
    found regardless of reachability.
    """
    distance: Dict[str, Fraction] = {node: Fraction(0) for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for source, target, weight in edges:
            candidate = distance[source] + weight
            if candidate > distance[target]:
                distance[target] = candidate
                changed = True
        if not changed:
            return False
    # One more pass: any further relaxation proves a positive cycle.
    for source, target, weight in edges:
        if distance[source] + weight > distance[target]:
            return True
    return False


def _ratio_edges(
    view: MarkedGraphView,
    durations: Mapping[str, int],
    lam: Fraction,
) -> List[Tuple[str, str, Fraction]]:
    """Edges weighted ``τ(u) − λ·M(p)`` (plus the implicit self-loops
    ``τ(u) − λ``); a positive cycle exists iff some cycle has ratio
    greater than ``λ``."""
    edges: List[Tuple[str, str, Fraction]] = []
    initial = view.initial
    for place in view.net.place_names:
        (producer,) = view.net.input_transitions(place)
        (consumer,) = view.net.output_transitions(place)
        weight = Fraction(durations[producer]) - lam * initial[place]
        edges.append((producer, consumer, weight))
    for transition in view.net.transition_names:
        edges.append(
            (transition, transition, Fraction(durations[transition]) - lam)
        )
    return edges


def cycle_time_lawler(
    view: MarkedGraphView, durations: Mapping[str, int]
) -> Fraction:
    """Cycle time by parametric (binary) search over the ratio.

    The answer is a rational ``Ω(C)/M(C)`` whose denominator is at most
    the total token count ``D`` (self-loops give denominator 1), and two
    distinct candidate ratios differ by at least ``1/D²``; searching to
    below that gap and snapping with ``limit_denominator`` recovers the
    exact value, which is then verified with exact arithmetic.
    """
    nodes = list(view.net.transition_names)
    if not nodes:
        raise AnalysisError("net has no transitions; cycle time undefined")
    initial = view.initial
    total_tokens = max(
        1, sum(initial[p] for p in view.net.place_names)
    )
    # Self-loops contribute denominator-1 ratios.
    max_denominator = total_tokens
    total_value = sum(durations[t] for t in nodes)
    low = Fraction(max(durations[t] for t in nodes))  # self-loop floor
    high = Fraction(total_value)  # any cycle ratio <= total value / 1

    if not _has_positive_cycle(nodes, _ratio_edges(view, durations, low)):
        # No structural cycle beats the slowest transition's self-loop.
        return low

    gap = Fraction(1, max_denominator * max_denominator * 2)
    while high - low > gap:
        mid = (low + high) / 2
        if _has_positive_cycle(nodes, _ratio_edges(view, durations, mid)):
            low = mid
        else:
            high = mid
    candidate = Fraction((low + high) / 2).limit_denominator(max_denominator)
    # Exact verification: no cycle exceeds the candidate, and lowering it
    # by the minimal gap re-admits one (so it is attained).
    if _has_positive_cycle(nodes, _ratio_edges(view, durations, candidate)):
        raise AnalysisError(
            f"parametric search failed to verify cycle time {candidate}"
        )
    just_below = candidate - gap
    if not _has_positive_cycle(nodes, _ratio_edges(view, durations, just_below)):
        raise AnalysisError(
            f"cycle time {candidate} is not attained by any cycle"
        )
    return candidate
