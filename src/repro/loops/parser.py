"""A small textual frontend for the loop IR.

Grammar (one loop per source)::

    loop      := ("do" | "doall") NAME? ":" NEWLINE stmt+
    stmt      := target "=" expr
    target    := NAME "[" "i" "]" | NAME
    expr      := arith (("<" | "<=" | ">" | ">=" | "==") arith)?
    arith     := term (("+" | "-") term)*
    term      := factor (("*" | "/") factor)*
    factor    := "-" factor | NUMBER | NAME subscript? | "(" expr ")"
               | NAME "(" expr ")"            # unary intrinsic: sqrt, abs
               | "where" "(" expr "," expr "," expr ")"  # conditional
    subscript := "[" "i" (("+" | "-") NUMBER)? "]"

Example (loop L1 of the paper)::

    doall L1:
        A[i] = X[i] + 5
        B[i] = Y[i] + A[i]
        C[i] = A[i] + Z[i]
        D[i] = B[i] + C[i]
        E[i] = W[i] + D[i]

Blank lines and ``#`` comments are ignored.  The parser produces a
:class:`repro.loops.ir.Loop`; dependence legality (e.g. that a
``doall`` really has no loop-carried dependence) is checked later by
:mod:`repro.loops.dependence`.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple, Union

from ..errors import LoopIRError
from .ir import (
    ArrayRef,
    Assign,
    Binary,
    Const,
    Expr,
    Loop,
    ScalarRef,
    Ternary,
    Unary,
)

__all__ = ["parse_loop", "parse_expression"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d+|\d+|\.\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<symbol><=|>=|==|<|>|\*|/|\+|-|\(|\)|\[|\]|=|:|,))"
)

_COMPARISONS = ("<", "<=", ">", ">=", "==")

_UNARY_INTRINSICS = {"sqrt", "abs", "neg", "not"}


class _Tokens:
    """A trivial token cursor over one line."""

    def __init__(self, text: str, line_number: int) -> None:
        self.line_number = line_number
        self.items: List[Tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                if text[position:].strip():
                    raise LoopIRError(
                        f"line {line_number}: cannot tokenise "
                        f"{text[position:].strip()!r}"
                    )
                break
            position = match.end()
            for kind in ("number", "name", "symbol"):
                value = match.group(kind)
                if value is not None:
                    self.items.append((kind, value))
                    break
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self) -> Tuple[str, str]:
        item = self.peek()
        if item is None:
            raise LoopIRError(
                f"line {self.line_number}: unexpected end of statement"
            )
        self.index += 1
        return item

    def expect(self, symbol: str) -> None:
        kind, value = self.next()
        if value != symbol:
            raise LoopIRError(
                f"line {self.line_number}: expected {symbol!r}, found "
                f"{value!r}"
            )

    def at_end(self) -> bool:
        return self.index >= len(self.items)


def parse_loop(source: str) -> Loop:
    """Parse one loop from ``source`` text."""
    lines = [
        (number, line.split("#", 1)[0].rstrip())
        for number, line in enumerate(source.splitlines(), start=1)
    ]
    lines = [(n, line) for n, line in lines if line.strip()]
    if not lines:
        raise LoopIRError("empty loop source")

    header_number, header = lines[0]
    header_tokens = _Tokens(header, header_number)
    kind, keyword = header_tokens.next()
    if kind != "name" or keyword not in ("do", "doall"):
        raise LoopIRError(
            f"line {header_number}: loop must start with 'do' or 'doall'"
        )
    parallel = keyword == "doall"
    name = "loop"
    item = header_tokens.peek()
    if item is not None and item[0] == "name":
        name = header_tokens.next()[1]
    header_tokens.expect(":")
    if not header_tokens.at_end():
        raise LoopIRError(f"line {header_number}: trailing tokens after ':'")

    statements = [
        _parse_statement(_Tokens(line, number)) for number, line in lines[1:]
    ]
    if not statements:
        raise LoopIRError("loop has no statements")
    return Loop(name=name, statements=statements, parallel=parallel)


def _parse_statement(tokens: _Tokens) -> Assign:
    kind, name = tokens.next()
    if kind != "name":
        raise LoopIRError(
            f"line {tokens.line_number}: statement must start with a name"
        )
    target: Union[ArrayRef, ScalarRef]
    item = tokens.peek()
    if item is not None and item[1] == "[":
        offset = _parse_subscript(tokens)
        if offset != 0:
            raise LoopIRError(
                f"line {tokens.line_number}: may only assign to {name}[i]"
            )
        target = ArrayRef(name, 0)
    else:
        target = ScalarRef(name)
    tokens.expect("=")
    expr = _parse_expr(tokens)
    if not tokens.at_end():
        kind, value = tokens.next()
        raise LoopIRError(
            f"line {tokens.line_number}: trailing token {value!r}"
        )
    return Assign(target, expr)


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used in tests and the examples)."""
    tokens = _Tokens(text, 1)
    expr = _parse_expr(tokens)
    if not tokens.at_end():
        raise LoopIRError(f"trailing tokens in expression {text!r}")
    return expr


def _parse_expr(tokens: _Tokens) -> Expr:
    expr = _parse_arith(tokens)
    item = tokens.peek()
    if item is not None and item[1] in _COMPARISONS:
        op = tokens.next()[1]
        expr = Binary(op, expr, _parse_arith(tokens))
    return expr


def _parse_arith(tokens: _Tokens) -> Expr:
    expr = _parse_term(tokens)
    while True:
        item = tokens.peek()
        if item is None or item[1] not in ("+", "-"):
            return expr
        op = tokens.next()[1]
        expr = Binary(op, expr, _parse_term(tokens))


def _parse_term(tokens: _Tokens) -> Expr:
    expr = _parse_factor(tokens)
    while True:
        item = tokens.peek()
        if item is None or item[1] not in ("*", "/"):
            return expr
        op = tokens.next()[1]
        expr = Binary(op, expr, _parse_factor(tokens))


def _parse_factor(tokens: _Tokens) -> Expr:
    kind, value = tokens.next()
    if value == "-":
        return Unary("neg", _parse_factor(tokens))
    if kind == "number":
        return Const(float(value))
    if value == "(":
        inner = _parse_expr(tokens)
        tokens.expect(")")
        return inner
    if kind == "name":
        item = tokens.peek()
        if item is not None and item[1] == "[":
            return ArrayRef(value, _parse_subscript(tokens))
        if item is not None and item[1] == "(" and value == "where":
            tokens.expect("(")
            cond = _parse_expr(tokens)
            tokens.expect(",")
            then = _parse_expr(tokens)
            tokens.expect(",")
            els = _parse_expr(tokens)
            tokens.expect(")")
            return Ternary(cond, then, els)
        if item is not None and item[1] == "(" and value in _UNARY_INTRINSICS:
            tokens.expect("(")
            inner = _parse_expr(tokens)
            tokens.expect(")")
            return Unary(value, inner)
        return ScalarRef(value)
    raise LoopIRError(
        f"line {tokens.line_number}: unexpected token {value!r} in expression"
    )


def _parse_subscript(tokens: _Tokens) -> int:
    tokens.expect("[")
    kind, value = tokens.next()
    if kind != "name" or value != "i":
        raise LoopIRError(
            f"line {tokens.line_number}: subscripts must use the loop "
            f"index 'i', found {value!r}"
        )
    item = tokens.peek()
    offset = 0
    if item is not None and item[1] in ("+", "-"):
        sign = 1 if tokens.next()[1] == "+" else -1
        kind, magnitude = tokens.next()
        if kind != "number" or "." in magnitude:
            raise LoopIRError(
                f"line {tokens.line_number}: subscript offset must be an "
                "integer literal"
            )
        offset = sign * int(magnitude)
    tokens.expect("]")
    return offset
