"""Loop unrolling: replicate an SDSP dataflow graph ``U`` times.

The paper's optimality results (Theorem 5.2.2, Section 6) give the
time-optimal computation rate as an exact rational ``γ = p/q``.  A
1-periodic schedule of the *base* loop body issues each instruction at
most once per initiation interval, so whenever the binding constraint
is the one-token-per-arc storage discipline rather than a dependence
cycle, the base net under-achieves the dependence bound — the loop must
be *unrolled*: the body is replicated ``U`` times and the steady state
issues ``U`` base iterations per period (the k-periodic schedules of
the balanced-binary-words line of work).

The transformation is purely structural, on the dataflow graph:

* node ``v`` becomes copies ``v@0 .. v@U-1``;
* an arc with dependence distance ``d`` (its ``initial_tokens``: 0 for
  forward arcs, ``d >= 1`` for feedback arcs) from ``u`` to ``v``
  becomes, for every copy ``k``, an arc ``u@k -> v@(k + d) mod U``
  carrying ``(k + d) // U`` tokens — the mod-U rewiring rule.  Arcs
  whose rewired token count is 0 are forward arcs of the unrolled
  graph, the rest are feedback arcs.

The acknowledgement structure is *not* copied — it is re-derived from
the unrolled data graph by the usual SDSP-PN construction, which is
exactly what gives the unrolled loop ``U`` independent buffers per base
arc and lets the steady-state rate per *base* instruction climb to the
dependence bound (:func:`repro.core.rate.dependence_bound_rate`).

``unroll_graph(g, 1)`` returns a plain copy with the original node
names, so the ``U = 1`` path of the compiler is byte-identical to the
pre-unrolling pipeline.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Union

from ..dataflow.graph import ArcKind, DataArc, DataflowGraph
from ..errors import DataflowError, ReproError

__all__ = [
    "MAX_UNROLL",
    "COPY_SEPARATOR",
    "copy_name",
    "base_instruction",
    "base_firing_totals",
    "validate_unroll",
    "unroll_graph",
]

#: The documented cap on explicit and auto-selected unroll factors.
#: The unrolled net has ``U * n`` transitions and ``Θ(U * |arcs|)``
#: places, so an absurd factor turns one compile into an unbounded
#: amount of work — requests beyond the cap are rejected up front
#: (manifest validation, the service wire layer, and ``compile_loop``
#: itself all share this constant).
MAX_UNROLL = 64

#: Separator between a base instruction name and its copy index.  The
#: loop frontend never emits it in node names, which keeps the
#: ``copy -> base`` mapping unambiguous.
COPY_SEPARATOR = "@"


def copy_name(name: str, k: int) -> str:
    """The name of copy ``k`` of base instruction ``name``."""
    return f"{name}{COPY_SEPARATOR}{k}"


def base_instruction(name: str) -> str:
    """The base instruction a (possibly unrolled) transition belongs
    to: ``"B@2" -> "B"``; names without a copy suffix map to
    themselves, so the function is safe on ``U = 1`` nets."""
    base, _, _ = name.rpartition(COPY_SEPARATOR)
    return base if base else name


def base_firing_totals(
    firing_counts: Dict[str, int], transitions
) -> Dict[str, int]:
    """Sum per-copy firing counts up to base instructions.

    ``transitions`` enumerates every transition that *should* appear
    (a copy missing from ``firing_counts`` counts as 0 rather than
    silently disappearing — the caller's rate check then fails loudly).
    """
    totals: Dict[str, int] = {}
    for name in transitions:
        base = base_instruction(name)
        totals[base] = totals.get(base, 0) + firing_counts.get(name, 0)
    return totals


def validate_unroll(value: object, where: str = "unroll") -> Union[int, str]:
    """Validate an unroll request: a positive integer up to
    :data:`MAX_UNROLL`, or the string ``"auto"``.

    Raises :class:`~repro.errors.ReproError` (so manifest validation
    and the service wire layer reject bad values with their stable
    error paths) for zero, negative, non-integer, or beyond-the-cap
    values.
    """
    if isinstance(value, str):
        if value == "auto":
            return "auto"
        raise ReproError(
            f"{where}: expected a positive integer or 'auto', got {value!r}"
        )
    # bool is an int subclass; `true` is not a meaningful unroll factor.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(
            f"{where}: expected a positive integer or 'auto', got "
            f"{type(value).__name__} {value!r}"
        )
    if value < 1:
        raise ReproError(f"{where}: unroll factor must be >= 1, got {value}")
    if value > MAX_UNROLL:
        raise ReproError(
            f"{where}: unroll factor {value} exceeds the cap of "
            f"{MAX_UNROLL}"
        )
    return value


def unroll_graph(graph: DataflowGraph, factor: int) -> DataflowGraph:
    """Replicate ``graph`` ``factor`` times with the mod-U rewiring rule.

    ``factor = 1`` returns a plain :meth:`~repro.dataflow.graph.
    DataflowGraph.copy` (original names, original arcs).  For larger
    factors every node gains copies ``name@0 .. name@factor-1`` and an
    arc of distance ``d`` from ``u`` to ``v`` becomes ``factor`` arcs
    ``u@k -> v@(k+d) mod factor`` carrying ``(k+d) // factor`` tokens.

    The result is again a valid static dataflow graph whenever the
    input's dependence distances do not exceed ``factor`` (the loop
    frontend normalises all distances to 1 via carry chains, so
    compiled graphs always qualify); a distance large enough to leave
    more than one token on an unrolled arc fails the usual SDSP
    validation downstream.
    """
    if isinstance(factor, bool) or not isinstance(factor, int):
        raise DataflowError(
            f"unroll_graph needs a concrete integer factor, got "
            f"{factor!r} (resolve 'auto' before unrolling)"
        )
    if factor < 1:
        raise DataflowError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return graph.copy()
    for name in graph.actor_names:
        if COPY_SEPARATOR in name:
            raise DataflowError(
                f"actor name {name!r} already contains the copy "
                f"separator {COPY_SEPARATOR!r}; refusing to unroll an "
                "already-unrolled graph"
            )

    unrolled = DataflowGraph(f"{graph.name}x{factor}")
    for k in range(factor):
        for actor in graph.actors:
            unrolled.add_actor(
                dataclasses.replace(actor, name=copy_name(actor.name, k))
            )
    for arc in graph.arcs:
        distance = arc.initial_tokens  # 0 on forward arcs, d on feedback
        for k in range(factor):
            target_copy = (k + distance) % factor
            tokens = (k + distance) // factor
            unrolled.add_arc(
                DataArc(
                    source=copy_name(arc.source, k),
                    target=copy_name(arc.target, target_copy),
                    target_port=arc.target_port,
                    kind=(
                        ArcKind.FEEDBACK if tokens >= 1 else ArcKind.FORWARD
                    ),
                    source_port=arc.source_port,
                    initial_tokens=tokens,
                )
            )
    return unrolled
