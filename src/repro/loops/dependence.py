"""Dependence analysis over the loop IR.

Classifies every value flow in the loop body:

* **intra-iteration** flow (distance 0): a statement uses a value the
  same iteration computes — a forward data arc in the SDSP;
* **loop-carried** flow (distance ``d >= 1``): a use of ``A[i−d]`` or of
  an accumulator's previous value — a feedback arc.  The SDSP model of
  the paper handles distance exactly 1 ("we assume that loop-carried
  dependences are from one iteration to the next", Section 3.2);
  larger distances are reported so the translator can reject them.

A ``doall`` annotation is *checked*: a parallel loop with a detected
loop-carried dependence is an analysis error (this is how the test
suite demonstrates that Livermore loop 9 is DOALL-able only after
subscript analysis, mirroring the paper's footnote 5).

Reads of arrays written by the loop at *future* iterations
(``A[i + c]``, ``c > 0`` with ``A`` defined in the loop) would be
anti-dependences on uncomputed values and are rejected outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import LoopIRError
from .ir import ArrayRef, Assign, Expr, Loop, ScalarRef, walk_expr

__all__ = ["Dependence", "DependenceInfo", "analyze"]


@dataclass(frozen=True)
class Dependence:
    """A flow dependence between two statements (by target name).

    ``distance`` 0 means same-iteration; ``d >= 1`` means the consumer's
    iteration ``i`` uses the producer's iteration ``i − d``.
    """

    producer: str
    consumer: str
    distance: int

    @property
    def loop_carried(self) -> bool:
        return self.distance >= 1


@dataclass
class DependenceInfo:
    """The dependence summary the translator consumes."""

    loop: Loop
    dependences: List[Dependence] = field(default_factory=list)

    @property
    def loop_carried(self) -> List[Dependence]:
        return [d for d in self.dependences if d.loop_carried]

    @property
    def is_doall(self) -> bool:
        """True iff no loop-carried dependence exists — the class of
        loops the paper calls DOALL (Section 2)."""
        return not self.loop_carried

    @property
    def max_distance(self) -> int:
        return max((d.distance for d in self.dependences), default=0)

    def producers_of(self, consumer: str) -> List[Dependence]:
        return [d for d in self.dependences if d.consumer == consumer]


def analyze(loop: Loop, strict_doall: bool = True) -> DependenceInfo:
    """Compute all flow dependences of ``loop``.

    ``strict_doall`` makes a ``doall`` loop with loop-carried
    dependences an error (on by default; disable to *measure* how
    parallel an annotated loop actually is).
    """
    defined = loop.defined_names
    statement_order = {s.target_name: i for i, s in enumerate(loop.statements)}
    info = DependenceInfo(loop)
    seen: Set[Tuple[str, str, int]] = set()

    for statement in loop.statements:
        consumer = statement.target_name
        for node in walk_expr(statement.expr):
            dependence = _classify(node, consumer, defined, statement_order, loop)
            if dependence is None:
                continue
            key = (dependence.producer, dependence.consumer, dependence.distance)
            if key not in seen:
                seen.add(key)
                info.dependences.append(dependence)

    if strict_doall and loop.parallel and not info.is_doall:
        carried = ", ".join(
            f"{d.producer}->{d.consumer} (distance {d.distance})"
            for d in info.loop_carried
        )
        raise LoopIRError(
            f"loop {loop.name!r} is annotated doall but has loop-carried "
            f"dependences: {carried}"
        )
    return info


def _classify(
    node: Expr,
    consumer: str,
    defined: Set[str],
    statement_order: Dict[str, int],
    loop: Loop,
) -> Optional[Dependence]:
    if isinstance(node, ArrayRef) and node.array in defined:
        if node.offset > 0:
            raise LoopIRError(
                f"statement {consumer!r} reads {node} but {node.array!r} is "
                "written by the loop: a use of a future iteration's value "
                "is not computable"
            )
        return Dependence(node.array, consumer, -node.offset)
    if isinstance(node, ScalarRef) and node.name in defined:
        # Reading an accumulator: before its assignment in program
        # order (or in its own defining statement) it is the previous
        # iteration's value; after, it is this iteration's.
        producer_position = statement_order[node.name]
        consumer_position = statement_order[consumer]
        distance = 1 if producer_position >= consumer_position else 0
        return Dependence(node.name, consumer, distance)
    return None
