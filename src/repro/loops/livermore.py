"""The Livermore loops used in the paper's experiments (Section 5).

The paper simulates six Livermore kernels, written in SISAL, through
the McGill A-code testbed:

* without loop-carried dependence (LCD): Loop 1 (hydro fragment),
  Loop 7 (equation of state fragment), Loop 12 (first difference);
* with LCD: Loop 3 (inner product), Loop 5 (tri-diagonal elimination,
  below the diagonal), Loop 9 (integrate predictors — examined both
  with and without LCD, since exposing its DOALL parallelism needs
  subscript analysis; paper footnote 5).

We re-express each kernel in the loop IR (see DESIGN.md §4 for why
this substitution is faithful) and add Loop 11 (first sum), which the
paper's Table 1 area also mentions, as an extra LCD datapoint.  Every
kernel carries reference input generators so the whole pipeline can be
checked semantically, not just structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import LoopIRError
from .ir import Loop
from .parser import parse_loop
from .translate import TranslationResult, translate

__all__ = ["LivermoreKernel", "KERNELS", "kernel", "paper_kernel_set"]


@dataclass(frozen=True)
class LivermoreKernel:
    """One benchmark kernel.

    ``scalars`` binds the loop-invariant scalars; ``array_margin`` maps
    each input array to the extra elements needed beyond the iteration
    count (positive subscript offsets); ``boundary`` gives pre-loop
    values for loop-carried names.
    """

    key: str
    number: int
    title: str
    has_lcd: bool
    source: str
    scalars: Tuple[Tuple[str, float], ...] = ()
    array_margin: Tuple[Tuple[str, int], ...] = ()
    boundary: Tuple[Tuple[str, float], ...] = ()

    def loop(self) -> Loop:
        return parse_loop(self.source)

    def scalar_bindings(self) -> Dict[str, float]:
        return dict(self.scalars)

    def boundary_values(self) -> Dict[str, float]:
        return dict(self.boundary)

    def translation(self, store_scalars: bool = True) -> TranslationResult:
        return translate(
            self.loop(), self.scalar_bindings(), store_scalars=store_scalars
        )

    def input_arrays(self) -> List[str]:
        loop = self.loop()
        return sorted(loop.input_arrays)

    def make_inputs(
        self, iterations: int, seed: int = 0
    ) -> Dict[str, np.ndarray]:
        """Deterministic pseudo-random input arrays sized for
        ``iterations`` iterations (plus subscript margins)."""
        rng = np.random.default_rng(seed + self.number)
        margins = dict(self.array_margin)
        arrays: Dict[str, np.ndarray] = {}
        for name in self.input_arrays():
            length = iterations + margins.get(name, 0)
            arrays[name] = rng.uniform(0.5, 1.5, size=length)
        return arrays


def _kernel(*args: Any, **kwargs: Any) -> LivermoreKernel:
    k = LivermoreKernel(*args, **kwargs)
    # Fail fast on typos: parse and analyse at import time.
    loop = k.loop()
    if loop.parallel and k.has_lcd:
        raise LoopIRError(f"kernel {k.key}: doall loop marked has_lcd")
    return k


KERNELS: Dict[str, LivermoreKernel] = {}


def _register(kernel_obj: LivermoreKernel) -> None:
    KERNELS[kernel_obj.key] = kernel_obj


_register(
    _kernel(
        key="loop1",
        number=1,
        title="Hydro fragment",
        has_lcd=False,
        source=(
            "doall loop1:\n"
            "  X[i] = Q + Y[i] * (R * Z[i+10] + T * Z[i+11])\n"
        ),
        scalars=(("Q", 0.5), ("R", 0.25), ("T", 0.125)),
        array_margin=(("Z", 11),),
    )
)

_register(
    _kernel(
        key="loop3",
        number=3,
        title="Inner product",
        has_lcd=True,
        source="do loop3:\n  Q = Q + Z[i] * X[i]\n",
        boundary=(("Q", 0.0),),
    )
)

_register(
    _kernel(
        key="loop5",
        number=5,
        title="Tri-diagonal elimination, below the diagonal",
        has_lcd=True,
        source="do loop5:\n  X[i] = Z[i] * (Y[i] - X[i-1])\n",
        boundary=(("X", 1.0),),
    )
)

_register(
    _kernel(
        key="loop7",
        number=7,
        title="Equation of state fragment",
        has_lcd=False,
        source=(
            "doall loop7:\n"
            "  X[i] = U[i] + R * (Z[i] + R * Y[i])"
            " + T * (U[i+3] + R * (U[i+2] + R * U[i+1])"
            " + T * (U[i+6] + Q * (U[i+5] + Q * U[i+4])))\n"
        ),
        scalars=(("Q", 0.5), ("R", 0.25), ("T", 0.125)),
        array_margin=(("U", 6),),
    )
)

_register(
    _kernel(
        key="loop9",
        number=9,
        title="Integrate predictors (DOALL after subscript analysis)",
        has_lcd=False,
        source=(
            "doall loop9:\n"
            "  PX1[i] = DM28 * PX13[i] + DM27 * PX12[i] + DM26 * PX11[i]"
            " + DM25 * PX10[i] + DM24 * PX9[i] + DM23 * PX8[i]"
            " + DM22 * PX7[i] + C0 * (PX5[i] + PX6[i]) + PX3[i]\n"
        ),
        scalars=(
            ("DM22", 0.2), ("DM23", 0.3), ("DM24", 0.4), ("DM25", 0.5),
            ("DM26", 0.6), ("DM27", 0.7), ("DM28", 0.8), ("C0", 0.9),
        ),
    )
)

_register(
    _kernel(
        key="loop9lcd",
        number=9,
        title="Integrate predictors (conservative: no subscript analysis)",
        has_lcd=True,
        # Without subscript analysis the write to row 1 of PX and the
        # reads of other rows cannot be disambiguated, so a distance-1
        # carried dependence must be assumed.  The value-neutral
        # '0 * PX1[i-1]' term expresses that assumption without
        # changing the computed values.
        source=(
            "do loop9lcd:\n"
            "  PX1[i] = DM28 * PX13[i] + DM27 * PX12[i] + DM26 * PX11[i]"
            " + DM25 * PX10[i] + DM24 * PX9[i] + DM23 * PX8[i]"
            " + DM22 * PX7[i] + C0 * (PX5[i] + PX6[i]) + PX3[i]"
            " + 0 * PX1[i-1]\n"
        ),
        scalars=(
            ("DM22", 0.2), ("DM23", 0.3), ("DM24", 0.4), ("DM25", 0.5),
            ("DM26", 0.6), ("DM27", 0.7), ("DM28", 0.8), ("C0", 0.9),
        ),
        boundary=(("PX1", 0.0),),
    )
)

_register(
    _kernel(
        key="loop11",
        number=11,
        title="First sum (running total)",
        has_lcd=True,
        source="do loop11:\n  X[i] = X[i-1] + Y[i]\n",
        boundary=(("X", 0.0),),
    )
)

_register(
    _kernel(
        key="loop12",
        number=12,
        title="First difference",
        has_lcd=False,
        source="doall loop12:\n  X[i] = Y[i+1] - Y[i]\n",
        array_margin=(("Y", 1),),
    )
)


def kernel(key: str) -> LivermoreKernel:
    """Look up a kernel by key (``loop1`` .. ``loop12``)."""
    try:
        return KERNELS[key]
    except KeyError:
        raise LoopIRError(
            f"unknown Livermore kernel {key!r}; available: "
            + ", ".join(sorted(KERNELS))
        ) from None


def paper_kernel_set() -> List[LivermoreKernel]:
    """The kernels of Tables 1 and 2, in the paper's order: the three
    DOALL loops, then the LCD loops (with both Loop 9 variants)."""
    order = ["loop1", "loop7", "loop12", "loop3", "loop5", "loop9", "loop9lcd"]
    return [KERNELS[key] for key in order]
