"""Direct (sequential) reference semantics for loop IR.

The scheduling pipeline must not change what a loop computes; this
module evaluates a :class:`~repro.loops.ir.Loop` the obvious way —
statement by statement, iteration by iteration — and is the oracle the
dataflow interpreter and the scheduled executor are compared against.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import LoopIRError
from .ir import (
    ArrayRef,
    Assign,
    Binary,
    Const,
    Expr,
    Loop,
    ScalarRef,
    Ternary,
    Unary,
)

__all__ = ["reference_execute"]

_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "min": min,
    "max": max,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
}

_UNARY = {
    "neg": lambda a: -a,
    "abs": abs,
    "sqrt": lambda a: a ** 0.5,
}


def reference_execute(
    loop: Loop,
    arrays: Optional[Mapping[str, Sequence[Any]]] = None,
    scalars: Optional[Mapping[str, float]] = None,
    iterations: int = 8,
    boundary: Optional[Mapping[str, Any]] = None,
) -> Dict[str, List[Any]]:
    """Run the loop for ``iterations`` iterations.

    ``boundary`` supplies pre-loop values: ``boundary["X"]`` is both the
    initial value of accumulator ``X`` and the value returned for any
    negative-subscript read ``X[i−d]`` with ``i < d`` (default 0).

    Returns the written streams: for array targets the values written
    to ``A[0..iterations-1]``, for accumulators their value after each
    iteration.
    """
    arrays = dict(arrays or {})
    scalars = dict(scalars or {})
    boundary = dict(boundary or {})
    defined = loop.defined_names

    written: Dict[str, List[Any]] = {name: [] for name in defined}
    accumulators: Dict[str, Any] = {}
    for name in loop.accumulator_scalars:
        supplied = boundary.get(name, 0)
        if isinstance(supplied, (list, tuple)):
            supplied = supplied[0] if supplied else 0
        accumulators[name] = supplied

    def eval_expr(expr: Expr, iteration: int) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, ScalarRef):
            if expr.name in defined:
                return accumulators[expr.name]
            if expr.name not in scalars:
                raise LoopIRError(f"unbound scalar {expr.name!r}")
            return scalars[expr.name]
        if isinstance(expr, ArrayRef):
            index = iteration + expr.offset
            if expr.array in defined:
                if index < 0:
                    supplied = boundary.get(expr.array, 0)
                    if isinstance(supplied, (list, tuple)):
                        # element d-1 is the pre-loop value X[-d]
                        depth = -index
                        return (
                            supplied[depth - 1]
                            if depth - 1 < len(supplied)
                            else 0
                        )
                    return supplied
                values = written[expr.array]
                if index >= len(values):
                    raise LoopIRError(
                        f"read of {expr.array}[{index}] before it is written"
                    )
                return values[index]
            source = arrays.get(expr.array)
            if source is None:
                raise LoopIRError(f"no input array {expr.array!r} supplied")
            return source[index]
        if isinstance(expr, Unary):
            return _UNARY[expr.op](eval_expr(expr.operand, iteration))
        if isinstance(expr, Binary):
            return _BINARY[expr.op](
                eval_expr(expr.left, iteration),
                eval_expr(expr.right, iteration),
            )
        if isinstance(expr, Ternary):
            if eval_expr(expr.cond, iteration):
                return eval_expr(expr.then, iteration)
            return eval_expr(expr.els, iteration)
        raise LoopIRError(f"unknown expression {expr!r}")

    for iteration in range(iterations):
        for statement in loop.statements:
            value = eval_expr(statement.expr, iteration)
            name = statement.target_name
            written[name].append(value)
            if isinstance(statement.target, ScalarRef):
                accumulators[name] = value
    return written
