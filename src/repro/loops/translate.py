"""Lowering loop IR to static dataflow graphs (our substitute for the
SISAL → A-code path of the paper's testbed).

Each statement's expression tree becomes a tree of instruction actors;
the root actor carries the statement's target name (so loop L1 lowers
to nodes ``A``–``E`` exactly as in Figure 1).  Operand resolution:

* constants and loop-invariant scalars fold into instruction
  immediates (constant subtrees are folded away entirely);
* reads of input arrays become LOAD actors, shared per ``(array,
  offset)`` pair;
* reads of loop-defined values at distance 0 become forward data arcs
  from the defining statement's root;
* reads at distance 1 become feedback arcs (the SDSP's loop-carried
  dependences); larger distances are outside the paper's loop class
  and raise :class:`LoopIRError`;
* array targets gain STORE actors; accumulator (scalar) targets gain
  an observation STORE by default so their value stream is testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple, Union

from ..dataflow.builder import GraphBuilder, OutputRef
from ..dataflow.graph import DataflowGraph
from ..errors import LoopIRError
from .dependence import DependenceInfo, analyze
from .ir import (
    ArrayRef,
    Assign,
    Binary,
    Const,
    Expr,
    Loop,
    ScalarRef,
    Ternary,
    Unary,
)

__all__ = ["TranslationResult", "translate"]


@dataclass
class TranslationResult:
    """The lowered loop.

    ``root_of`` maps each statement's target to its root actor (always
    the target's own name); ``feedback_initial_keys`` maps each defined
    name with a loop-carried use to the arc identifiers that need
    initial values at interpretation time.
    """

    loop: Loop
    graph: DataflowGraph
    info: DependenceInfo
    root_of: Dict[str, str]
    scalar_bindings: Dict[str, float]
    feedback_initial_keys: Dict[str, List[str]] = field(default_factory=dict)
    feedback_depths: Dict[str, int] = field(default_factory=dict)

    def initial_values_for(
        self, boundary: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Expand per-name boundary values into the per-arc initial-value
        map the interpreter expects.

        ``boundary["X"]`` may be a scalar — used for every carried depth
        — or a sequence where element ``d − 1`` is the pre-loop value
        ``X[-d]`` (multi-distance recurrences need one value per
        distance crossed).
        """
        values: Dict[str, Any] = {}
        for name, keys in self.feedback_initial_keys.items():
            supplied = boundary.get(name, 0)
            for key in keys:
                depth = self.feedback_depths.get(key, 1)
                if isinstance(supplied, (list, tuple)):
                    values[key] = (
                        supplied[depth - 1]
                        if depth - 1 < len(supplied)
                        else 0
                    )
                else:
                    values[key] = supplied
        return values


class _Lowering:
    """One-shot lowering context."""

    def __init__(
        self,
        loop: Loop,
        scalars: Mapping[str, float],
        store_scalars: bool,
    ) -> None:
        self.loop = loop
        self.scalars = dict(scalars)
        self.store_scalars = store_scalars
        self.builder = GraphBuilder(loop.name)
        self.info = analyze(loop)
        self.defined = loop.defined_names
        self.order = {s.target_name: i for i, s in enumerate(loop.statements)}
        self.loads: Dict[Tuple[str, int], str] = {}
        self.root_of: Dict[str, str] = {}
        self.counter = 0
        # (source_root_name, target_actor, port, distance) for
        # loop-carried uses, wired after all roots exist.
        self.pending_feedback: List[Tuple[str, str, int, int]] = []
        self.feedback_keys: Dict[str, List[str]] = {}
        self.feedback_depths: Dict[str, int] = {}
        # Conditional lowering state: the active (control, branch-port)
        # gate, and the cache of switches already built per
        # (control, operand) pair.
        self._gate: Optional[Tuple[str, int]] = None
        self._switch_cache: Dict[Tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    def run(self) -> TranslationResult:
        missing = self.loop.invariant_scalars - set(self.scalars)
        if missing:
            raise LoopIRError(
                "no values bound for loop-invariant scalars: "
                + ", ".join(sorted(missing))
            )
        for statement in self.loop.statements:
            self._lower_statement(statement)
        self._wire_feedback_arcs()
        graph = self.builder.build()
        return TranslationResult(
            loop=self.loop,
            graph=graph,
            info=self.info,
            root_of=self.root_of,
            scalar_bindings=self.scalars,
            feedback_initial_keys=self.feedback_keys,
            feedback_depths=self.feedback_depths,
        )

    def _wire_feedback_arcs(self) -> None:
        """Attach the loop-carried operands, inserting delay nodes where
        a direct feedback arc would deadlock the SDSP.

        A feedback arc ``u -> v`` contributes a *token-free* edge
        ``v -> u`` (its acknowledgement) to the net; combined with
        token-free forward data arcs, any cycle made only of those
        edges deadlocks the one-token-per-arc discipline (the feedback
        buffer starts full, so the producer waits on a consumer that
        transitively waits on the producer).  We therefore wire each
        carried operand directly only when no ``u ⇝ v`` path exists in
        the graph of forward arcs plus previously-added direct-feedback
        acknowledgements; otherwise the value is routed through a delay
        (register move) node ``u -> dly_u --feedback--> v``, whose only
        output is the feedback arc — a sink in the token-free graph, so
        no new token-free cycle can form.  Direct feedback is kept for
        the paper's shapes (Figure 2's ``E -> C``); delays appear
        exactly where a real dataflow compiler would spill the carried
        value to a register.
        """
        import networkx as nx

        graph = self.builder._graph  # lowering is a friend of the builder
        token_free = nx.DiGraph()
        token_free.add_nodes_from(graph.actor_names)
        for arc in graph.arcs:
            if not arc.is_feedback:
                token_free.add_edge(arc.source, arc.target)

        for producer_name, target_actor, port, distance in self.pending_feedback:
            root = self.root_of[producer_name]
            if root == target_actor:
                # A multi-distance self-chain of back-to-back full
                # feedback buffers deadlocks (each hop waits for the
                # other hop's acknowledgement), so it must start with a
                # forward hop into the delay node.
                needs_delay = distance >= 2
            else:
                needs_delay = token_free.has_node(root) and nx.has_path(
                    token_free, root, target_actor
                )
            if distance == 1 and root == target_actor:
                # self-arc: no acknowledgement, never deadlocks
                self.builder.feedback(root, target_actor, port)
                arc_key = f"{root}.0->{target_actor}.{port}"
                self.feedback_keys.setdefault(producer_name, []).append(arc_key)
                self.feedback_depths[arc_key] = 1
                continue

            # Head of the chain: the root itself, or a forward delay
            # node when a direct feedback acknowledgement would close a
            # token-free cycle (see the docstring above).
            if needs_delay:
                head = f"dly_{root}"
                if not graph.has_actor(head):
                    self.builder.identity(head, root)
                    token_free.add_edge(root, head)
            else:
                head = root

            # distance-1: head --fb--> target.  distance d >= 2: insert
            # d-1 carry nodes, each hop a distance-1 feedback arc; the
            # j-th hop's initial token is the value X[i-j] (recorded via
            # feedback_depths for boundary-value assignment).
            previous = head
            for depth in range(1, distance):
                carry = f"carry_{root}_{depth + 1}_{target_actor}_{port}"
                self.builder.identity(carry)
                self.builder.feedback(previous, carry, 0)
                arc_key = f"{previous}.0->{carry}.0"
                self.feedback_keys.setdefault(producer_name, []).append(arc_key)
                self.feedback_depths[arc_key] = depth
                token_free.add_edge(carry, previous)
                previous = carry
            self.builder.feedback(previous, target_actor, port)
            arc_key = f"{previous}.0->{target_actor}.{port}"
            self.feedback_keys.setdefault(producer_name, []).append(arc_key)
            self.feedback_depths[arc_key] = distance
            token_free.add_edge(target_actor, previous)

    # ------------------------------------------------------------------
    def _lower_statement(self, statement: Assign) -> None:
        target = statement.target_name
        root = self._lower_expr(statement.expr, root_name=target)
        if isinstance(root, _Immediate):
            raise LoopIRError(
                f"statement {target!r} reduces to the constant {root.value}; "
                "constant statements have no dataflow node"
            )
        if isinstance(root, _Deferred):
            # pure copy of a carried value: X[i] = Y[i-d]
            self.builder.identity(target)
            self.pending_feedback.append(
                (root.producer, target, 0, root.distance)
            )
            root = target
        elif root != target:
            # copy statement (bare array/scalar reference): materialise
            # a move instruction so the statement owns a node named
            # after its target — keeps figures, storage chains and
            # feedback sources well-defined.
            root = self.builder.identity(target, root)
        self.root_of[target] = root
        if isinstance(statement.target, ArrayRef) or self.store_scalars:
            self.builder.store(f"st_{target}", target, root)

    # ------------------------------------------------------------------
    # Expression lowering
    # ------------------------------------------------------------------
    def _lower_expr(
        self, expr: Expr, root_name: Optional[str] = None
    ) -> "Union[str, _Immediate, _Deferred]":
        """Returns an actor name, an immediate constant, or a deferred
        feedback operand (wired after all statements lower)."""
        if isinstance(expr, Const):
            return _Immediate(expr.value)
        if isinstance(expr, ScalarRef):
            if expr.name in self.defined:
                return self._defined_use(expr.name, self._scalar_distance(expr))
            return _Immediate(self.scalars[expr.name])
        if isinstance(expr, ArrayRef):
            if expr.array in self.defined:
                return self._defined_use(expr.array, -expr.offset)
            key = (expr.array, expr.offset)
            if key not in self.loads:
                suffix = (
                    f"p{expr.offset}"
                    if expr.offset > 0
                    else (f"m{-expr.offset}" if expr.offset < 0 else "")
                )
                name = f"ld_{expr.array}{suffix}"
                self.builder.load(name, expr.array, expr.offset)
                self.loads[key] = name
            return self._gated(self.loads[key])
        if isinstance(expr, Unary):
            operand = self._lower_expr(expr.operand)
            if isinstance(operand, _Immediate):
                from ..dataflow.actors import UNARY_OPERATIONS

                return _Immediate(UNARY_OPERATIONS[expr.op](operand.value))
            name = root_name or self._fresh(root_hint="u")
            return self._attach_unary(name, expr.op, operand)
        if isinstance(expr, Binary):
            return self._lower_binary(expr, root_name)
        if isinstance(expr, Ternary):
            return self._lower_ternary(expr, root_name)
        raise LoopIRError(f"unknown expression node {expr!r}")

    def _lower_binary(
        self, expr: Binary, root_name: Optional[str]
    ) -> "Union[str, _Immediate]":
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        if isinstance(left, _Immediate) and isinstance(right, _Immediate):
            from ..dataflow.actors import BINARY_OPERATIONS

            return _Immediate(BINARY_OPERATIONS[expr.op](left.value, right.value))
        name = root_name or self._fresh()
        if isinstance(left, _Immediate):
            self.builder.binop(name, expr.op, right=_as_operand(right, self),
                               immediate=left.value, immediate_port=0)
            self._wire_deferred(right, name, 0)
            return name
        if isinstance(right, _Immediate):
            self.builder.binop(name, expr.op, left=_as_operand(left, self),
                               immediate=right.value, immediate_port=1)
            self._wire_deferred(left, name, 0)
            return name
        self.builder.binop(
            name, expr.op, _as_operand(left, self), _as_operand(right, self)
        )
        self._wire_deferred(left, name, 0)
        self._wire_deferred(right, name, 1)
        return name

    def _attach_unary(
        self, name: str, op: str, operand: "Union[str, _Deferred]"
    ) -> str:
        self.builder.unop(name, op, _as_operand(operand, self))
        self._wire_deferred(operand, name, 0)
        return name

    # ------------------------------------------------------------------
    # Uses of loop-defined names
    # ------------------------------------------------------------------
    def _scalar_distance(self, ref: ScalarRef) -> int:
        # Use-before-def in program order reads the previous iteration.
        # (The *current* statement's position is where the use occurs;
        # lowering runs statements in program order, so the defining
        # statement has been lowered already iff its position is lower.)
        return 0 if ref.name in self.root_of else 1

    def _defined_use(
        self, name: str, distance: int
    ) -> "Union[str, _Deferred]":
        if distance == 0:
            root = self.root_of.get(name)
            if root is None:
                raise LoopIRError(
                    f"use of {name}[i] before the statement computing it; "
                    "reorder the loop body or use a loop-carried reference"
                )
            return self._gated(root)
        if distance >= 1:
            if self._gate is not None:
                raise LoopIRError(
                    "loop-carried references inside conditional branches "
                    "are not supported; hoist the carried value into its "
                    "own statement before the conditional"
                )
            # Distances above one are normalised at wiring time into a
            # chain of carry (register-move) nodes connected by
            # distance-1 feedback arcs, keeping the graph inside the
            # paper's SDSP class (Section 3.2 assumes distance 1).
            return _Deferred(name, distance)
        raise LoopIRError(
            f"invalid dependence distance {distance} on {name!r}"
        )

    def _gated(self, operand: str) -> "Union[str, OutputRef]":
        """Route a leaf operand through the active conditional gate.

        Inside a ``where`` branch every value entering the branch passes
        through a SWITCH controlled by the condition (Section 3.2's
        well-formed conditional subgraph): the selected branch receives
        the real token, the other a dummy.  Switches are shared per
        (control, operand) pair, so an operand used by both branches
        gets a single switch with both output ports consumed.
        """
        if self._gate is None:
            return operand
        control, port = self._gate
        key = (control, operand)
        name = self._switch_cache.get(key)
        if name is None:
            name = f"sw_{operand}"
            if self.builder._graph.has_actor(name):
                name = self._fresh(f"sw_{operand}_")
            self.builder.switch(name, control, operand)
            self._switch_cache[key] = name
        return OutputRef(name, port)

    def _lower_ternary(
        self, expr: Ternary, root_name: Optional[str]
    ) -> "Union[str, _Immediate]":
        """Lower ``where(cond, then, els)`` to a switch/merge subgraph.

        A constant condition statically selects a branch; otherwise the
        condition gates every leaf operand of both branches through
        switches, the branch subexpressions are evaluated on the gated
        values (firing on dummies when unselected, exactly like regular
        nodes — the paper's altered firing rule), and a MERGE joins the
        branch results.  Switch output ports that only one branch uses
        are drained by SINK actors so every place stays bounded.
        """
        cond = self._lower_expr(expr.cond)
        if isinstance(cond, _Immediate):
            chosen = expr.then if cond.value else expr.els
            return self._lower_expr(chosen, root_name)
        if isinstance(cond, _Deferred):
            raise LoopIRError(
                "loop-carried conditional controls are not supported; "
                "compute the condition in its own statement first"
            )
        saved_gate = self._gate
        switches_before = set(self._switch_cache.values())

        self._gate = (cond, 0)
        then_value = self._lower_expr(expr.then)
        self._gate = (cond, 1)
        else_value = self._lower_expr(expr.els)
        self._gate = saved_gate

        for branch, value in (("then", then_value), ("else", else_value)):
            if isinstance(value, _Immediate):
                raise LoopIRError(
                    f"the {branch} branch of a where() reduces to the "
                    f"constant {value.value}; constant branches have no "
                    "token source — rewrite as an arithmetic expression of "
                    "a loop value (e.g. 0 * Y[i] + c)"
                )

        name = root_name or self._fresh("m")
        self.builder.merge(name, cond, then_value, else_value)

        # Drain switch ports only one branch consumed.
        graph = self.builder._graph
        new_switches = {
            sw
            for sw in self._switch_cache.values()
            if sw not in switches_before
        }
        for sw in sorted(new_switches):
            used = {arc.source_port for arc in graph.out_arcs(sw)}
            for port in (0, 1):
                if port not in used:
                    from ..dataflow import actors as actor_lib
                    from ..dataflow.graph import DataArc

                    sink_name = f"snk_{sw}_{port}"
                    graph.add_actor(actor_lib.sink(sink_name))
                    graph.add_arc(
                        DataArc(sw, sink_name, 0, source_port=port)
                    )
        return name

    def _wire_deferred(
        self, operand: "Union[str, _Immediate, _Deferred]", actor: str, port: int
    ) -> None:
        if isinstance(operand, _Deferred):
            self.pending_feedback.append(
                (operand.producer, actor, port, operand.distance)
            )

    def _fresh(self, root_hint: str = "t") -> str:
        self.counter += 1
        return f"{root_hint}{self.counter}"


@dataclass(frozen=True)
class _Immediate:
    value: float


@dataclass(frozen=True)
class _Deferred:
    """A loop-carried operand: wired as a feedback arc (or, for
    distances above one, a chain of carry nodes) once every statement's
    root actor exists."""

    producer: str
    distance: int = 1


def _as_operand(
    value: "Union[str, _Immediate, _Deferred]", lowering: _Lowering
) -> Optional[str]:
    """Deferred operands leave their port unwired for now (the builder
    allows it; validation would flag it if the feedback never lands)."""
    if isinstance(value, _Deferred):
        return None
    if isinstance(value, _Immediate):  # pragma: no cover - guarded earlier
        raise LoopIRError("immediate reached operand wiring")
    return value


def translate(
    loop: Loop,
    scalars: Optional[Mapping[str, float]] = None,
    store_scalars: bool = True,
) -> TranslationResult:
    """Lower ``loop`` to a dataflow graph.

    Parameters
    ----------
    scalars:
        Numeric bindings for the loop-invariant scalars (they become
        instruction immediates).  Required when the loop uses any.
    store_scalars:
        Emit an observation STORE for accumulator targets so their
        per-iteration streams can be checked; disable to match
        instruction counts where accumulators live in registers.

    Conservative-dependence variants (the paper's Loop 9 "with LCD")
    are expressed in the source itself with an explicitly carried,
    value-neutral term such as ``+ 0 * PX1[i-1]`` — see
    :mod:`repro.loops.livermore`.
    """
    lowering = _Lowering(loop, scalars or {}, store_scalars)
    return lowering.run()
