"""Loop intermediate representation.

The paper's experimental pipeline compiles SISAL loops to static
dataflow graphs through the McGill A-code testbed; this IR is our
substitute frontend (see DESIGN.md §4).  It captures exactly the loop
shape the SDSP model handles: a single non-nested loop over an index
``i`` whose body is a sequence of scalar/array assignments, with
loop-carried dependences of distance one.

Expression grammar::

    expr    := Const | ScalarRef | ArrayRef | Unary(op, expr)
             | Binary(op, expr, expr)
    ArrayRef subscripts are affine in the loop index: ``A[i + c]``.

Statements assign to ``A[i]`` (an array element) or to a scalar
(an accumulator).  :mod:`repro.loops.dependence` classifies the arcs
between statements and :mod:`repro.loops.translate` lowers the loop to
a dataflow graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import LoopIRError

__all__ = [
    "Const",
    "ScalarRef",
    "ArrayRef",
    "Unary",
    "Binary",
    "Expr",
    "Assign",
    "Loop",
    "walk_expr",
]


@dataclass(frozen=True)
class Const:
    """A numeric literal."""

    value: float

    def __str__(self) -> str:
        if isinstance(self.value, float) and self.value.is_integer():
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class ScalarRef:
    """A scalar variable: loop-invariant (never assigned in the loop)
    or an accumulator (assigned and carried across iterations)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef:
    """``array[i + offset]`` — the subscript is the loop index plus a
    compile-time constant."""

    array: str
    offset: int = 0

    def __str__(self) -> str:
        if self.offset > 0:
            return f"{self.array}[i+{self.offset}]"
        if self.offset < 0:
            return f"{self.array}[i{self.offset}]"
        return f"{self.array}[i]"


@dataclass(frozen=True)
class Unary:
    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Ternary:
    """A conditional expression ``where(cond, then, els)`` — the source
    form of the paper's well-formed conditional dataflow subgraphs
    (Section 3.2): lowering routes each branch operand through a SWITCH
    gated by ``cond`` and joins the branch values with a MERGE."""

    cond: "Expr"
    then: "Expr"
    els: "Expr"

    def __str__(self) -> str:
        return f"where({self.cond}, {self.then}, {self.els})"


Expr = Union[Const, ScalarRef, ArrayRef, Unary, Binary, Ternary]


@dataclass(frozen=True)
class Assign:
    """``target = expr``; the target is ``A[i]`` or a scalar."""

    target: Union[ArrayRef, ScalarRef]
    expr: Expr

    def __post_init__(self) -> None:
        if isinstance(self.target, ArrayRef) and self.target.offset != 0:
            raise LoopIRError(
                f"assignments must target {self.target.array}[i]; offset "
                f"{self.target.offset} writes are not in the SDSP loop class"
            )

    @property
    def target_name(self) -> str:
        if isinstance(self.target, ArrayRef):
            return self.target.array
        return self.target.name

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass
class Loop:
    """A single (innermost) loop.

    ``parallel`` records the source-level annotation: ``doall`` loops
    claim no loop-carried dependence, which the dependence analyser
    verifies rather than trusts.
    """

    name: str
    statements: List[Assign]
    parallel: bool = False

    def __post_init__(self) -> None:
        if not self.statements:
            raise LoopIRError(f"loop {self.name!r} has an empty body")
        seen: Set[str] = set()
        for statement in self.statements:
            target = statement.target_name
            if target in seen:
                raise LoopIRError(
                    f"loop {self.name!r} assigns {target!r} twice; the "
                    "single-assignment form required by dataflow translation "
                    "is violated"
                )
            seen.add(target)

    # ------------------------------------------------------------------
    # Name classification
    # ------------------------------------------------------------------
    @property
    def defined_names(self) -> Set[str]:
        """Arrays/scalars written by the loop body."""
        return {s.target_name for s in self.statements}

    @property
    def input_arrays(self) -> Set[str]:
        """Arrays read but never written (pure loop inputs)."""
        names: Set[str] = set()
        for statement in self.statements:
            for node in walk_expr(statement.expr):
                if isinstance(node, ArrayRef) and node.array not in self.defined_names:
                    names.add(node.array)
        return names

    @property
    def invariant_scalars(self) -> Set[str]:
        """Scalars read but never written (loop constants like Q, R, T
        in Livermore loop 1)."""
        names: Set[str] = set()
        for statement in self.statements:
            for node in walk_expr(statement.expr):
                if isinstance(node, ScalarRef) and node.name not in self.defined_names:
                    names.add(node.name)
        return names

    @property
    def output_arrays(self) -> Set[str]:
        return {
            s.target.array
            for s in self.statements
            if isinstance(s.target, ArrayRef)
        }

    @property
    def accumulator_scalars(self) -> Set[str]:
        return {
            s.target.name
            for s in self.statements
            if isinstance(s.target, ScalarRef)
        }

    def statement_for(self, name: str) -> Assign:
        for statement in self.statements:
            if statement.target_name == name:
                return statement
        raise LoopIRError(f"loop {self.name!r} does not define {name!r}")

    def __str__(self) -> str:
        keyword = "doall" if self.parallel else "do"
        body = "\n".join(f"  {s}" for s in self.statements)
        return f"{keyword} i:\n{body}"


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Ternary):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.els)
