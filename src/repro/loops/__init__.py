"""Loop frontend: IR, parser, dependence analysis, dataflow lowering,
reference semantics and the Livermore kernel suite."""

from .ir import ArrayRef, Assign, Binary, Const, Expr, Loop, ScalarRef, Ternary, Unary, walk_expr
from .parser import parse_expression, parse_loop
from .dependence import Dependence, DependenceInfo, analyze
from .translate import TranslationResult, translate
from .reference import reference_execute
from .livermore import KERNELS, LivermoreKernel, kernel, paper_kernel_set
from .unroll import (
    MAX_UNROLL,
    base_instruction,
    copy_name,
    unroll_graph,
    validate_unroll,
)

__all__ = [
    "ArrayRef", "Assign", "Binary", "Const", "Expr", "Loop", "ScalarRef",
    "Ternary", "Unary", "walk_expr", "parse_expression", "parse_loop",
    "Dependence", "DependenceInfo", "analyze",
    "TranslationResult", "translate", "reference_execute",
    "KERNELS", "LivermoreKernel", "kernel", "paper_kernel_set",
    "MAX_UNROLL", "base_instruction", "copy_name", "unroll_graph",
    "validate_unroll",
]
