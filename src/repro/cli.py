"""Command-line interface: ``python -m repro <command> <loop-file>``.

Commands
--------

``schedule``  compile a loop file and print the derived time-optimal
              schedule (optionally for an ``--stages N`` clean
              pipeline);
``analyze``   print the loop's dependence classification, critical
              cycles, rates and detection statistics;
``storage``   print the Section 6 storage optimisation and the
              buffer-balancing result;
``dot``       emit Graphviz DOT for the dataflow graph or the SDSP-PN;
``trace``     record the behavior-graph simulation as a structured
              trace (Chrome/Perfetto or JSONL).

Every command accepts ``--profile``, which prints a per-phase
wall-clock table after the normal output.  Logging is wired through
:func:`repro.obs.logging_setup`; set ``REPRO_LOG=debug`` for verbose
diagnostics.

Loop files use the frontend syntax of :mod:`repro.loops.parser`;
loop-invariant scalars are bound with repeated ``--scalar NAME=VALUE``
options.  Exit status is non-zero on any compilation or verification
failure.
"""

from __future__ import annotations

import argparse
import logging
import sys
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from .errors import ReproError

__all__ = ["main", "build_parser"]

log = logging.getLogger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Timed Petri-net fine-grain loop scheduling "
            "(Gao, Wong & Ning, PLDI 1991)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("loop_file", help="file containing one loop")
        sub.add_argument(
            "--scalar",
            action="append",
            default=[],
            metavar="NAME=VALUE",
            help="bind a loop-invariant scalar (repeatable)",
        )
        sub.add_argument(
            "--abstract",
            action="store_true",
            help="drop load/store nodes (the paper's figure mode)",
        )
        sub.add_argument(
            "--profile",
            action="store_true",
            help="print a per-phase wall-clock table after the output",
        )

    schedule = subparsers.add_parser(
        "schedule", help="derive and print the time-optimal schedule"
    )
    add_common(schedule)
    schedule.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="also schedule for an N-stage single clean pipeline",
    )

    analyze = subparsers.add_parser(
        "analyze", help="dependences, critical cycles, rates, detection"
    )
    add_common(analyze)

    storage = subparsers.add_parser(
        "storage", help="storage optimisation and buffer balancing"
    )
    add_common(storage)

    dot = subparsers.add_parser("dot", help="emit Graphviz DOT")
    add_common(dot)
    dot.add_argument(
        "--what",
        choices=["dataflow", "net"],
        default="dataflow",
        help="which graph to emit",
    )

    trace = subparsers.add_parser(
        "trace",
        help="record the behavior-graph simulation as a structured trace",
    )
    add_common(trace)
    trace.add_argument(
        "--format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help=(
            "chrome: trace-event JSON for chrome://tracing / "
            "ui.perfetto.dev (one track per transition, one slice per "
            "firing); jsonl: one structured event per line"
        ),
    )
    trace.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="output path (default: <loop-file>.trace.<json|jsonl>)",
    )
    trace.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="trace the SDSP-SCP-PN of an N-stage clean pipeline instead",
    )
    return parser


def _parse_scalars(pairs: Sequence[str]) -> Dict[str, float]:
    scalars: Dict[str, float] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ReproError(f"--scalar expects NAME=VALUE, got {pair!r}")
        scalars[name] = float(value)
    return scalars


def _instrumentation(args: argparse.Namespace):
    """The compile-time instrumentation implied by the global flags:
    profiling records phases into the process-wide registry, otherwise
    the shared no-op keeps every hook dormant."""
    from .obs import Instrumentation, NULL_INSTRUMENTATION, default_registry

    if getattr(args, "profile", False):
        return Instrumentation(metrics=default_registry())
    return NULL_INSTRUMENTATION


def _compile(args: argparse.Namespace, stages: Optional[int] = None):
    from .pipeline import compile_loop

    with open(args.loop_file) as handle:
        source = handle.read()
    return compile_loop(
        source,
        scalars=_parse_scalars(args.scalar),
        pipeline_stages=stages,
        include_io=not args.abstract,
        instrumentation=_instrumentation(args),
    )


def _cmd_schedule(args: argparse.Namespace, out) -> int:
    from .report import render_schedule

    result = _compile(args, stages=args.stages)
    print(render_schedule(result.schedule), file=out)
    print(
        f"\noptimal rate {result.optimal_rate}; frustum found at step "
        f"{result.frustum.repeat_time} (n = {result.pn.size})",
        file=out,
    )
    if result.scp_schedule is not None:
        print(
            f"\n--- {args.stages}-stage clean pipeline ---", file=out
        )
        print(render_schedule(result.scp_schedule), file=out)
        print(f"pipeline utilisation {result.scp_utilization}", file=out)
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    from .core import critical_cycles, theoretical_bounds

    result = _compile(args)
    info = result.translation.info
    print(f"loop {result.translation.loop.name!r}:", file=out)
    print(
        f"  classification : "
        f"{'DOALL (no loop-carried dependence)' if info.is_doall else 'loop-carried'}",
        file=out,
    )
    for dependence in info.dependences:
        kind = "carried" if dependence.loop_carried else "intra"
        print(
            f"    {dependence.producer} -> {dependence.consumer} "
            f"({kind}, distance {dependence.distance})",
            file=out,
        )
    report = critical_cycles(result.pn)
    print(
        f"  cycle time     : {report.cycle_time} "
        f"(rate {report.computation_rate})",
        file=out,
    )
    for cycle in report.critical_cycles:
        print("    critical: " + " -> ".join(cycle.transitions), file=out)
    bounds = result.bounds
    print(
        f"  frustum        : found at step {result.frustum.repeat_time}, "
        f"period {result.frustum.length} "
        f"(theory bound O(n^{4 if bounds.case == 'single' else 3}) = "
        f"{bounds.step_bound})",
        file=out,
    )
    return 0


def _cmd_storage(args: argparse.Namespace, out) -> int:
    from .core import balance_buffers, optimize_storage, verify_allocation

    result = _compile(args)
    allocation = optimize_storage(result.pn)
    print(
        f"storage locations: {allocation.baseline_locations} -> "
        f"{allocation.locations} (saved {allocation.savings})",
        file=out,
    )
    for chain in allocation.chains:
        if chain.length > 1:
            path = " -> ".join([chain.head] + [a.target for a in chain.arcs])
            print(f"  merged acknowledgement: {path}", file=out)
    rate = verify_allocation(result.pn, allocation)
    print(f"cycle time preserved at {rate}", file=out)

    balance = balance_buffers(result.pn)
    print(
        f"\nbuffer balancing for period {balance.target_period}: "
        f"{balance.total} total slots over {len(balance.capacities)} arcs",
        file=out,
    )
    for identifier, capacity in sorted(balance.capacities.items()):
        if capacity > 1:
            print(f"  {identifier}: {capacity} slots", file=out)
    return 0


def _cmd_dot(args: argparse.Namespace, out) -> int:
    from .report.dot import dataflow_to_dot, petri_net_to_dot

    result = _compile(args)
    if args.what == "dataflow":
        print(dataflow_to_dot(result.translation.graph), file=out)
    else:
        print(
            petri_net_to_dot(
                result.pn.net, result.pn.initial, result.pn.durations
            ),
            file=out,
        )
    return 0


def _cmd_trace(args: argparse.Namespace, out) -> int:
    """Record one behavior-graph simulation as a structured trace.

    The loop is compiled normally (so the traced net is exactly what
    ``schedule`` would use); the frustum detection is then re-run with
    the requested sink attached, so the file holds a single clean
    timeline: every firing, every instantaneous state, and the detected
    cyclic frustum.
    """
    from .machine import FifoRunPlacePolicy
    from .obs import ChromeTraceSink, Instrumentation, JsonlTraceSink
    from .petrinet import detect_frustum

    result = _compile(args, stages=args.stages)
    if args.stages is not None and result.scp is not None:
        scp = result.scp
        timed_net, initial = scp.timed, scp.initial
        policy = FifoRunPlacePolicy(scp.net, scp.run_place, scp.priority_order())
        traced = f"SDSP-SCP-PN (l={args.stages})"
    else:
        timed_net, initial = result.pn.timed, result.pn.initial
        policy = None
        traced = "SDSP-PN"

    output = args.output
    if output is None:
        suffix = "json" if args.format == "chrome" else "jsonl"
        output = f"{args.loop_file}.trace.{suffix}"
    sink = (
        ChromeTraceSink(output)
        if args.format == "chrome"
        else JsonlTraceSink(output)
    )
    obs = Instrumentation(sinks=[sink])
    try:
        frustum, behavior = detect_frustum(
            timed_net, initial, policy, instrumentation=obs
        )
    finally:
        obs.close()

    print(
        f"traced {traced} of {result.translation.loop.name!r}: "
        f"{len(behavior.steps)} steps, frustum [{frustum.start_time}, "
        f"{frustum.repeat_time}) period {frustum.length}",
        file=out,
    )
    print(f"wrote {args.format} trace to {output}", file=out)
    if args.format == "chrome":
        print(
            "open in chrome://tracing or https://ui.perfetto.dev "
            "(1 trace us = 1 simulator cycle)",
            file=out,
        )
    return 0


def _print_profile(out) -> None:
    """Render the per-phase wall-clock table from the process-wide
    metrics registry (populated by ``--profile``)."""
    from .obs import default_registry
    from .report import render_table

    timers = default_registry().dump()["timers"]
    if not timers:
        print("\n(no phases were timed)", file=out)
        return
    rows = [
        [name, stats["count"], f"{stats['total']:.6f}", f"{stats['mean']:.6f}"]
        for name, stats in sorted(
            timers.items(), key=lambda item: -item[1]["total"]
        )
    ]
    print(file=out)
    print(
        render_table(
            ["phase", "calls", "total s", "mean s"],
            rows,
            title="Wall-clock profile",
        ),
        file=out,
    )


_COMMANDS = {
    "schedule": _cmd_schedule,
    "analyze": _cmd_analyze,
    "storage": _cmd_storage,
    "dot": _cmd_dot,
    "trace": _cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit status."""
    from .obs import default_registry, logging_setup

    logging_setup()
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = getattr(args, "profile", False)
    if profiling:
        registry = default_registry()
        registry.reset()
        registry.enable()
    try:
        status = _COMMANDS[args.command](args, out)
        if profiling:
            _print_profile(out)
        return status
    except BrokenPipeError:
        # downstream consumer (e.g. `head`) closed the pipe; not an error
        try:
            sys.stdout.close()
        except Exception as error:
            log.debug("suppressed error while closing stdout: %s", error)
        return 0
    except FileNotFoundError as error:
        # raised for a missing input loop file or an unwritable/missing
        # output directory alike — the errno message names the path
        log.warning("file not found: %s", error)
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        log.warning("%s failed: %s", args.command, error)
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if profiling:
            default_registry().disable()
