"""Command-line interface: ``python -m repro <command> <loop-file>``.

Commands
--------

``schedule``  compile a loop file and print the derived time-optimal
              schedule (optionally for an ``--stages N`` clean
              pipeline);
``analyze``   print the loop's dependence classification, critical
              cycles, rates and detection statistics;
``storage``   print the Section 6 storage optimisation and the
              buffer-balancing result;
``dot``       emit Graphviz DOT for the dataflow graph or the SDSP-PN.

Loop files use the frontend syntax of :mod:`repro.loops.parser`;
loop-invariant scalars are bound with repeated ``--scalar NAME=VALUE``
options.  Exit status is non-zero on any compilation or verification
failure.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Timed Petri-net fine-grain loop scheduling "
            "(Gao, Wong & Ning, PLDI 1991)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("loop_file", help="file containing one loop")
        sub.add_argument(
            "--scalar",
            action="append",
            default=[],
            metavar="NAME=VALUE",
            help="bind a loop-invariant scalar (repeatable)",
        )
        sub.add_argument(
            "--abstract",
            action="store_true",
            help="drop load/store nodes (the paper's figure mode)",
        )

    schedule = subparsers.add_parser(
        "schedule", help="derive and print the time-optimal schedule"
    )
    add_common(schedule)
    schedule.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="also schedule for an N-stage single clean pipeline",
    )

    analyze = subparsers.add_parser(
        "analyze", help="dependences, critical cycles, rates, detection"
    )
    add_common(analyze)

    storage = subparsers.add_parser(
        "storage", help="storage optimisation and buffer balancing"
    )
    add_common(storage)

    dot = subparsers.add_parser("dot", help="emit Graphviz DOT")
    add_common(dot)
    dot.add_argument(
        "--what",
        choices=["dataflow", "net"],
        default="dataflow",
        help="which graph to emit",
    )
    return parser


def _parse_scalars(pairs: Sequence[str]) -> Dict[str, float]:
    scalars: Dict[str, float] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ReproError(f"--scalar expects NAME=VALUE, got {pair!r}")
        scalars[name] = float(value)
    return scalars


def _compile(args: argparse.Namespace, stages: Optional[int] = None):
    from .pipeline import compile_loop

    with open(args.loop_file) as handle:
        source = handle.read()
    return compile_loop(
        source,
        scalars=_parse_scalars(args.scalar),
        pipeline_stages=stages,
        include_io=not args.abstract,
    )


def _cmd_schedule(args: argparse.Namespace, out) -> int:
    from .report import render_schedule

    result = _compile(args, stages=args.stages)
    print(render_schedule(result.schedule), file=out)
    print(
        f"\noptimal rate {result.optimal_rate}; frustum found at step "
        f"{result.frustum.repeat_time} (n = {result.pn.size})",
        file=out,
    )
    if result.scp_schedule is not None:
        print(
            f"\n--- {args.stages}-stage clean pipeline ---", file=out
        )
        print(render_schedule(result.scp_schedule), file=out)
        print(f"pipeline utilisation {result.scp_utilization}", file=out)
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    from .core import critical_cycles, theoretical_bounds

    result = _compile(args)
    info = result.translation.info
    print(f"loop {result.translation.loop.name!r}:", file=out)
    print(
        f"  classification : "
        f"{'DOALL (no loop-carried dependence)' if info.is_doall else 'loop-carried'}",
        file=out,
    )
    for dependence in info.dependences:
        kind = "carried" if dependence.loop_carried else "intra"
        print(
            f"    {dependence.producer} -> {dependence.consumer} "
            f"({kind}, distance {dependence.distance})",
            file=out,
        )
    report = critical_cycles(result.pn)
    print(
        f"  cycle time     : {report.cycle_time} "
        f"(rate {report.computation_rate})",
        file=out,
    )
    for cycle in report.critical_cycles:
        print("    critical: " + " -> ".join(cycle.transitions), file=out)
    bounds = result.bounds
    print(
        f"  frustum        : found at step {result.frustum.repeat_time}, "
        f"period {result.frustum.length} "
        f"(theory bound O(n^{4 if bounds.case == 'single' else 3}) = "
        f"{bounds.step_bound})",
        file=out,
    )
    return 0


def _cmd_storage(args: argparse.Namespace, out) -> int:
    from .core import balance_buffers, optimize_storage, verify_allocation

    result = _compile(args)
    allocation = optimize_storage(result.pn)
    print(
        f"storage locations: {allocation.baseline_locations} -> "
        f"{allocation.locations} (saved {allocation.savings})",
        file=out,
    )
    for chain in allocation.chains:
        if chain.length > 1:
            path = " -> ".join([chain.head] + [a.target for a in chain.arcs])
            print(f"  merged acknowledgement: {path}", file=out)
    rate = verify_allocation(result.pn, allocation)
    print(f"cycle time preserved at {rate}", file=out)

    balance = balance_buffers(result.pn)
    print(
        f"\nbuffer balancing for period {balance.target_period}: "
        f"{balance.total} total slots over {len(balance.capacities)} arcs",
        file=out,
    )
    for identifier, capacity in sorted(balance.capacities.items()):
        if capacity > 1:
            print(f"  {identifier}: {capacity} slots", file=out)
    return 0


def _cmd_dot(args: argparse.Namespace, out) -> int:
    from .report.dot import dataflow_to_dot, petri_net_to_dot

    result = _compile(args)
    if args.what == "dataflow":
        print(dataflow_to_dot(result.translation.graph), file=out)
    else:
        print(
            petri_net_to_dot(
                result.pn.net, result.pn.initial, result.pn.durations
            ),
            file=out,
        )
    return 0


_COMMANDS = {
    "schedule": _cmd_schedule,
    "analyze": _cmd_analyze,
    "storage": _cmd_storage,
    "dot": _cmd_dot,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BrokenPipeError:
        # downstream consumer (e.g. `head`) closed the pipe; not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
