"""Command-line interface: ``python -m repro <command> <loop-file>``.

Commands
--------

``schedule``  compile a loop file and print the derived time-optimal
              schedule (optionally for an ``--stages N`` clean
              pipeline);
``analyze``   print the loop's dependence classification, critical
              cycles, rates and detection statistics;
``storage``   print the Section 6 storage optimisation and the
              buffer-balancing result;
``dot``       emit Graphviz DOT for the dataflow graph or the SDSP-PN;
``trace``     record the behavior-graph simulation as a structured
              trace (Chrome/Perfetto or JSONL);
``explain``   causal blame: rebuild the enabling DAG of a run, report
              the observed critical path (checked against the
              structural critical cycles), the per-transition
              wait-state decomposition and the blame chain
              (``--json`` for machine output, ``--trace`` for a
              Chrome trace with flow arrows);
``dash``      write the self-contained HTML bottleneck-attribution
              dashboard (kernel timeline, slack/utilization, token
              occupancy, ledger trends);
``sweep``     batch-compile a JSON manifest of loops through the
              content-addressed compile cache, optionally over a
              process pool (``--workers N``), and merge the
              deterministic payloads in manifest order; ``--trace``
              writes a merged cross-process span trace (one lane per
              worker), ``--metrics-out`` an OpenMetrics exposition,
              and a live progress line renders on TTYs
              (``--no-progress`` to suppress);
``compile``   compile one loop and print its deterministic JSON
              payload (optionally through the compile cache) — the
              exact bytes ``repro serve`` answers ``POST /v1/compile``
              with for the same input;
``serve``     run the async HTTP compilation service (bounded
              admission, process-pool workers, OpenMetrics, graceful
              drain; see ``docs/SERVICE.md`` and ``docs/API.md``);
``metrics``   render a ledger record's timing data as OpenMetrics
              text exposition;
``bench-check``  compare ``benchmarks/results/*.json`` against the
              committed baseline and exit non-zero on regressions.

Every command accepts ``--profile``, which prints a per-phase
wall-clock table after the normal output; loop commands also accept
``--ledger [DIR]`` to append a normalized run record to the append-only
JSONL ledger (default ``benchmarks/ledger/runs.jsonl``).  Logging is
wired through :func:`repro.obs.logging_setup`; set ``REPRO_LOG=debug``
for verbose diagnostics.

Loop files use the frontend syntax of :mod:`repro.loops.parser`;
loop-invariant scalars are bound with repeated ``--scalar NAME=VALUE``
options.  Exit status is non-zero on any compilation or verification
failure.
"""

from __future__ import annotations

import argparse
import logging
import sys
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from .errors import ReproError

__all__ = ["main", "build_parser"]

log = logging.getLogger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Timed Petri-net fine-grain loop scheduling "
            "(Gao, Wong & Ning, PLDI 1991)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("loop_file", help="file containing one loop")
        sub.add_argument(
            "--scalar",
            action="append",
            default=[],
            metavar="NAME=VALUE",
            help="bind a loop-invariant scalar (repeatable)",
        )
        sub.add_argument(
            "--abstract",
            action="store_true",
            help="drop load/store nodes (the paper's figure mode)",
        )
        sub.add_argument(
            "--engine",
            choices=["step", "event"],
            default="event",
            help=(
                "simulation engine for frustum detection: 'event' "
                "(default) jumps between completion instants, 'step' "
                "advances one time unit per tick; results are identical"
            ),
        )
        sub.add_argument(
            "--profile",
            action="store_true",
            help="print a per-phase wall-clock table after the output",
        )
        sub.add_argument(
            "--ledger",
            nargs="?",
            const="auto",
            default=None,
            metavar="DIR",
            help=(
                "append a normalized run record to the JSONL run ledger "
                "(default directory: benchmarks/ledger)"
            ),
        )

    def add_unroll(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--unroll",
            type=_unroll_value,
            default=1,
            metavar="U",
            help=(
                "replicate the loop body U times (an integer, or 'auto' "
                "for the smallest factor whose per-instruction rate "
                "meets the dependence bound exactly)"
            ),
        )

    schedule = subparsers.add_parser(
        "schedule", help="derive and print the time-optimal schedule"
    )
    add_common(schedule)
    schedule.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="also schedule for an N-stage single clean pipeline",
    )
    add_unroll(schedule)

    analyze = subparsers.add_parser(
        "analyze", help="dependences, critical cycles, rates, detection"
    )
    add_common(analyze)

    storage = subparsers.add_parser(
        "storage", help="storage optimisation and buffer balancing"
    )
    add_common(storage)

    dot = subparsers.add_parser("dot", help="emit Graphviz DOT")
    add_common(dot)
    dot.add_argument(
        "--what",
        choices=["dataflow", "net"],
        default="dataflow",
        help="which graph to emit",
    )

    trace = subparsers.add_parser(
        "trace",
        help="record the behavior-graph simulation as a structured trace",
    )
    add_common(trace)
    trace.add_argument(
        "--format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help=(
            "chrome: trace-event JSON for chrome://tracing / "
            "ui.perfetto.dev (one track per transition, one slice per "
            "firing); jsonl: one structured event per line"
        ),
    )
    trace.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="output path (default: <loop-file>.trace.<json|jsonl>)",
    )
    trace.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="trace the SDSP-SCP-PN of an N-stage clean pipeline instead",
    )

    explain = subparsers.add_parser(
        "explain",
        help="causal blame: observed critical path and wait states",
    )
    add_common(explain)
    explain.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="explain the SDSP-SCP-PN of an N-stage clean pipeline instead",
    )
    explain.add_argument(
        "--periods",
        type=int,
        default=3,
        metavar="K",
        help=(
            "steady-state periods to simulate past the detected frustum "
            "so blame walks stay clear of the transient (default 3)"
        ),
    )
    explain.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full report as JSON instead of text",
    )
    explain.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    explain.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "also write the enabling DAG as a Chrome trace with flow "
            "arrows (one lane per transition, one arrow per consumed "
            "token) to FILE"
        ),
    )
    explain.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the wait-state decomposition in OpenMetrics text "
            "exposition format to FILE ('-' for stdout)"
        ),
    )

    dash = subparsers.add_parser(
        "dash",
        help="write the self-contained HTML bottleneck dashboard",
    )
    add_common(dash)
    dash.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="output path (default: <loop-file>.dash.html)",
    )
    dash.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help=(
            "JSONL ledger to read trend history from "
            "(default: benchmarks/ledger/runs.jsonl when present)"
        ),
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="batch-compile a manifest via the compile cache",
    )
    sweep.add_argument(
        "manifest",
        help="JSON sweep manifest (a list of items, or {'items': [...]})",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool width (1 = serial, in-process)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "compile-cache directory (default: the REPRO_CACHE "
            "environment toggle; unset/falsy means no cache)"
        ),
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="compile everything from scratch, ignoring REPRO_CACHE",
    )
    sweep.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the merged deterministic payload as indented JSON",
    )
    sweep.add_argument(
        "--require-hits",
        action="store_true",
        help=(
            "exit non-zero unless every item was served from the cache "
            "(CI's warm-cache invariant)"
        ),
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-clock table after the output",
    )
    sweep.add_argument(
        "--ledger",
        nargs="?",
        const="auto",
        default=None,
        metavar="DIR",
        help=(
            "append a 'sweep' run record (merged payload + cache "
            "hit/miss counters) to the JSONL run ledger"
        ),
    )
    sweep.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "span-trace the sweep and write the merged Chrome/Perfetto "
            "trace (one lane per worker) to FILE"
        ),
    )
    sweep.add_argument(
        "--no-progress",
        action="store_true",
        help=(
            "suppress the live progress line (it is auto-disabled when "
            "stderr is not a terminal)"
        ),
    )
    sweep.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the sweep's metrics registry in OpenMetrics text "
            "exposition format to FILE ('-' for stdout)"
        ),
    )

    compile_cmd = subparsers.add_parser(
        "compile",
        help="print the deterministic compiled-loop payload as JSON",
    )
    add_common(compile_cmd)
    compile_cmd.add_argument(
        "--stages",
        type=int,
        default=None,
        metavar="N",
        help="compile for an N-stage single clean pipeline",
    )
    add_unroll(compile_cmd)
    compile_cmd.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "compile-cache directory (default: the REPRO_CACHE "
            "environment toggle; unset/falsy means no cache)"
        ),
    )
    compile_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="compile from scratch, ignoring REPRO_CACHE",
    )
    compile_cmd.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the payload to FILE instead of stdout",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the async HTTP compilation service",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="address to bind (default: loopback only)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        metavar="N",
        help=(
            "TCP port to listen on (0 lets the kernel pick; the "
            "'listening on' banner names the real port)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="compilation process-pool width",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="requests allowed to execute concurrently",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission-queue depth beyond the executing set; requests "
            "past it get 429 + Retry-After (default: --max-inflight)"
        ),
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "per-request deadline, queue wait included; expiry is a "
            "504 and the pool work is cancelled"
        ),
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "how long a SIGTERM/SIGINT drain waits for in-flight "
            "requests before closing anyway"
        ),
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "compile-cache directory (default: the REPRO_CACHE "
            "environment toggle; unset/falsy means no cache)"
        ),
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without a compile cache, ignoring REPRO_CACHE",
    )
    serve.add_argument(
        "--span-dir",
        default=None,
        metavar="DIR",
        help=(
            "write span shards (service + one per pool worker) to DIR "
            "for end-to-end request tracing"
        ),
    )

    metrics = subparsers.add_parser(
        "metrics",
        help="render a ledger record's timing data as OpenMetrics text",
    )
    metrics.add_argument(
        "--from-ledger",
        default=None,
        metavar="FILE",
        help=(
            "JSONL ledger to read from "
            "(default: benchmarks/ledger/runs.jsonl)"
        ),
    )
    metrics.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help=(
            "render the latest record with this name "
            "(default: the latest record in the ledger)"
        ),
    )
    metrics.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the exposition to FILE instead of stdout",
    )

    bench_check = subparsers.add_parser(
        "bench-check",
        help="gate benchmarks/results/*.json against the baseline ledger",
    )
    bench_check.add_argument(
        "--results",
        default="benchmarks/results",
        metavar="DIR",
        help="directory of freshly generated bench records",
    )
    bench_check.add_argument(
        "--baseline",
        default="benchmarks/ledger/baseline.jsonl",
        metavar="FILE",
        help="committed baseline records (JSONL)",
    )
    bench_check.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        metavar="X",
        help="relative wall-clock tolerance (default 5.0x baseline)",
    )
    bench_check.add_argument(
        "--wall-floor",
        type=float,
        default=None,
        metavar="SECONDS",
        help="ignore phases whose baseline total is below this (default 0.05)",
    )
    bench_check.add_argument(
        "--wall-hard",
        action="store_true",
        help="treat wall-clock drifts as failures, not just reports",
    )
    bench_check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current results and exit",
    )
    bench_check.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-clock table after the output",
    )
    return parser


def _unroll_value(text: str):
    """``--unroll`` values: an integer or the literal ``auto``.  Range
    and cap validation happens downstream (shared with manifests and
    the service wire layer), so every entry point rejects the same
    values with the same message."""
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _parse_scalars(pairs: Sequence[str]) -> Dict[str, float]:
    scalars: Dict[str, float] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ReproError(f"--scalar expects NAME=VALUE, got {pair!r}")
        scalars[name] = float(value)
    return scalars


def _instrumentation(args: argparse.Namespace):
    """The compile-time instrumentation implied by the global flags:
    profiling and ledger runs record phases into the process-wide
    registry, otherwise the shared no-op keeps every hook dormant."""
    from .obs import Instrumentation, NULL_INSTRUMENTATION, default_registry

    if getattr(args, "profile", False) or (
        getattr(args, "ledger", None) is not None
    ):
        return Instrumentation(metrics=default_registry())
    return NULL_INSTRUMENTATION


def _compile(args: argparse.Namespace, stages: Optional[int] = None):
    from .pipeline import compile_loop

    with open(args.loop_file) as handle:
        source = handle.read()
    result = compile_loop(
        source,
        scalars=_parse_scalars(args.scalar),
        pipeline_stages=stages,
        include_io=not args.abstract,
        instrumentation=_instrumentation(args),
        engine=getattr(args, "engine", "event"),
        unroll=getattr(args, "unroll", 1),
    )
    if getattr(args, "ledger", None) is not None:
        # stable facts for the run ledger; main() appends the record
        # (with timing/environment sections) after the command succeeds
        args.ledger_payload = {
            "loop": result.translation.loop.name,
            "cycle_time": Fraction(1, 1) / result.optimal_rate,
            "rate": result.optimal_rate,
            "unroll": result.unroll,
            "achieved_rate": result.achieved_rate,
            "dependence_bound": result.dependence_bound,
            "initiation_interval": result.schedule.initiation_interval,
            "frustum_length": result.frustum.length,
            "transient": result.frustum.start_time,
            "repeat_time": result.frustum.repeat_time,
            "n_transitions": len(result.pn.net.transition_names),
            "net_size": result.pn.size,
            "engine": result.engine,
        }
    return result


def _cmd_schedule(args: argparse.Namespace, out) -> int:
    from .report import render_schedule

    result = _compile(args, stages=args.stages)
    print(render_schedule(result.schedule), file=out)
    print(
        f"\noptimal rate {result.optimal_rate}; frustum found at step "
        f"{result.frustum.repeat_time} (n = {result.pn.size})",
        file=out,
    )
    if result.unroll > 1:
        print(
            f"unrolled x{result.unroll}: per-instruction rate "
            f"{result.achieved_rate} (dependence bound "
            f"{result.dependence_bound})",
            file=out,
        )
    if result.scp_schedule is not None:
        print(
            f"\n--- {args.stages}-stage clean pipeline ---", file=out
        )
        print(render_schedule(result.scp_schedule), file=out)
        print(f"pipeline utilisation {result.scp_utilization}", file=out)
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    from .core import critical_cycles, theoretical_bounds

    result = _compile(args)
    info = result.translation.info
    print(f"loop {result.translation.loop.name!r}:", file=out)
    print(
        f"  classification : "
        f"{'DOALL (no loop-carried dependence)' if info.is_doall else 'loop-carried'}",
        file=out,
    )
    for dependence in info.dependences:
        kind = "carried" if dependence.loop_carried else "intra"
        print(
            f"    {dependence.producer} -> {dependence.consumer} "
            f"({kind}, distance {dependence.distance})",
            file=out,
        )
    report = critical_cycles(result.pn)
    print(
        f"  cycle time     : {report.cycle_time} "
        f"(rate {report.computation_rate})",
        file=out,
    )
    for cycle in report.critical_cycles:
        print("    critical: " + " -> ".join(cycle.transitions), file=out)
    bounds = result.bounds
    print(
        f"  frustum        : found at step {result.frustum.repeat_time}, "
        f"period {result.frustum.length} "
        f"(theory bound O(n^{4 if bounds.case == 'single' else 3}) = "
        f"{bounds.step_bound})",
        file=out,
    )
    return 0


def _cmd_storage(args: argparse.Namespace, out) -> int:
    from .core import balance_buffers, optimize_storage, verify_allocation

    result = _compile(args)
    allocation = optimize_storage(result.pn)
    print(
        f"storage locations: {allocation.baseline_locations} -> "
        f"{allocation.locations} (saved {allocation.savings})",
        file=out,
    )
    for chain in allocation.chains:
        if chain.length > 1:
            path = " -> ".join([chain.head] + [a.target for a in chain.arcs])
            print(f"  merged acknowledgement: {path}", file=out)
    rate = verify_allocation(result.pn, allocation)
    print(f"cycle time preserved at {rate}", file=out)

    balance = balance_buffers(result.pn)
    print(
        f"\nbuffer balancing for period {balance.target_period}: "
        f"{balance.total} total slots over {len(balance.capacities)} arcs",
        file=out,
    )
    for identifier, capacity in sorted(balance.capacities.items()):
        if capacity > 1:
            print(f"  {identifier}: {capacity} slots", file=out)
    return 0


def _cmd_dot(args: argparse.Namespace, out) -> int:
    from .report.dot import dataflow_to_dot, petri_net_to_dot

    result = _compile(args)
    if args.what == "dataflow":
        print(dataflow_to_dot(result.translation.graph), file=out)
    else:
        print(
            petri_net_to_dot(
                result.pn.net, result.pn.initial, result.pn.durations
            ),
            file=out,
        )
    return 0


def _cmd_trace(args: argparse.Namespace, out) -> int:
    """Record one behavior-graph simulation as a structured trace.

    The loop is compiled normally (so the traced net is exactly what
    ``schedule`` would use); the frustum detection is then re-run with
    the requested sink attached, so the file holds a single clean
    timeline: every firing, every instantaneous state, and the detected
    cyclic frustum.
    """
    from .machine import FifoRunPlacePolicy
    from .obs import ChromeTraceSink, Instrumentation, JsonlTraceSink
    from .petrinet import detect_frustum

    result = _compile(args, stages=args.stages)
    if args.stages is not None and result.scp is not None:
        scp = result.scp
        timed_net, initial = scp.timed, scp.initial
        policy = FifoRunPlacePolicy(scp.net, scp.run_place, scp.priority_order())
        traced = f"SDSP-SCP-PN (l={args.stages})"
    else:
        timed_net, initial = result.pn.timed, result.pn.initial
        policy = None
        traced = "SDSP-PN"

    output = args.output
    if output is None:
        suffix = "json" if args.format == "chrome" else "jsonl"
        output = f"{args.loop_file}.trace.{suffix}"
    sink = (
        ChromeTraceSink(output)
        if args.format == "chrome"
        else JsonlTraceSink(output)
    )
    obs = Instrumentation(sinks=[sink])
    try:
        frustum, behavior = detect_frustum(
            timed_net,
            initial,
            policy,
            instrumentation=obs,
            engine=getattr(args, "engine", "event"),
        )
    finally:
        obs.close()

    print(
        f"traced {traced} of {result.translation.loop.name!r}: "
        f"{len(behavior.steps)} steps, frustum [{frustum.start_time}, "
        f"{frustum.repeat_time}) period {frustum.length}",
        file=out,
    )
    print(f"wrote {args.format} trace to {output}", file=out)
    if args.format == "chrome":
        print(
            "open in chrome://tracing or https://ui.perfetto.dev "
            "(1 trace us = 1 simulator cycle)",
            file=out,
        )
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    """Causal blame for one run: re-simulate with provenance tracing,
    rebuild the enabling DAG, and report the observed critical path,
    the wait-state decomposition and the blame chain."""
    import pathlib

    from .core.blame import (
        blame_summary,
        explain_compiled,
        wait_metrics_dump,
        write_flow_trace,
    )

    if args.periods < 1:
        raise ReproError(f"--periods must be >= 1, got {args.periods}")
    result = _compile(args, stages=args.stages)
    report = explain_compiled(result, periods=args.periods)

    if args.as_json:
        from .obs import stable_json

        text = stable_json(report.to_payload(), indent=2) + "\n"
    else:
        text = report.render_text() + "\n"
    if args.output is not None:
        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote explain report to {args.output}", file=out)
    else:
        out.write(text)

    if args.trace is not None:
        write_flow_trace(report, args.trace)
        print(
            f"wrote flow trace to {args.trace} (open in chrome://tracing "
            "or https://ui.perfetto.dev; 1 trace us = 1 simulator cycle)",
            file=out,
        )
    if args.metrics_out is not None:
        from .obs import render_openmetrics

        exposition = render_openmetrics(wait_metrics_dump(report))
        if args.metrics_out == "-":
            out.write(exposition)
        else:
            pathlib.Path(args.metrics_out).write_text(
                exposition, encoding="utf-8"
            )
            print(
                f"wrote OpenMetrics exposition to {args.metrics_out}",
                file=out,
            )
    if getattr(args, "ledger", None) is not None:
        args.ledger_blame = blame_summary(report)
    return 0


def _cmd_dash(args: argparse.Namespace, out) -> int:
    """Compile the loop and write the bottleneck-attribution dashboard
    as one self-contained HTML file."""
    import pathlib

    from .core.attribution import attribute_bottlenecks, place_occupancy
    from .errors import LedgerError
    from .obs.ledger import (
        RUNS_FILE,
        default_ledger_dir,
        git_sha,
        load_records,
    )
    from .report.dash import render_dash

    result = _compile(args)
    attribution = attribute_bottlenecks(result.pn, result.frustum)
    occupancy = place_occupancy(result.behavior, result.frustum)
    loop_name = result.translation.loop.name

    history_path = (
        pathlib.Path(args.history)
        if args.history
        else default_ledger_dir() / RUNS_FILE
    )
    # A missing, empty, or unreadable ledger must never block the
    # dashboard — trends degrade to the placeholder panel instead.
    history = []
    sweep_history = []
    if history_path.is_file():
        try:
            records = load_records(history_path)
            history = [
                record
                for record in records
                if record.get("payload", {}).get("loop") == loop_name
            ]
            sweep_history = [
                record for record in records if record.get("kind") == "sweep"
            ]
        except LedgerError as error:
            log.warning("ignoring unreadable ledger history: %s", error)
            print(
                f"warning: ignoring unreadable ledger history ({error})",
                file=out,
            )
            history = []
            sweep_history = []

    document = render_dash(
        loop_name=loop_name,
        attribution=attribution,
        schedule=result.schedule,
        durations=result.pn.durations,
        occupancy=occupancy,
        history=history,
        sweep_history=sweep_history,
        git_sha=git_sha(),
    )
    output = args.output or f"{args.loop_file}.dash.html"
    pathlib.Path(output).write_text(document, encoding="utf-8")

    bottlenecks = attribution.bottlenecks()
    print(
        f"dashboard for {loop_name!r}: cycle time "
        f"{attribution.cycle_time}, {len(bottlenecks)} bottleneck "
        f"transition(s) on C*: {', '.join(bottlenecks)}",
        file=out,
    )
    print(
        f"wrote self-contained HTML to {output} "
        f"({len(history)} ledger run(s) in trend history)",
        file=out,
    )
    return 0


def _cmd_sweep(args: argparse.Namespace, out) -> int:
    """Batch-compile a manifest; merge results in manifest order."""
    import pathlib
    import tempfile
    import time

    from .batch import SweepProgress, compile_many, load_manifest
    from .obs import stable_json
    from .report import render_table

    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    cache_dir = _resolve_cli_cache_dir(args)

    items = load_manifest(args.manifest)
    tracer = None
    shard_tmp = None
    if args.trace is not None:
        from .obs import Tracer

        tracer = Tracer(worker="parent")
        if args.workers > 1:
            shard_tmp = tempfile.TemporaryDirectory(prefix="repro-spans-")
    progress = SweepProgress(
        total=len(items),
        enabled=False if args.no_progress else None,
        workers=args.workers,
    )
    started = time.perf_counter()
    try:
        if tracer is not None:
            with tracer.span(
                "sweep", manifest=str(args.manifest), workers=args.workers
            ):
                result = compile_many(
                    items,
                    workers=args.workers,
                    cache_dir=cache_dir,
                    progress=progress,
                    tracer=tracer,
                    shard_dir=shard_tmp.name if shard_tmp else None,
                )
        else:
            result = compile_many(
                items,
                workers=args.workers,
                cache_dir=cache_dir,
                progress=progress,
            )
        wall = time.perf_counter() - started

        if tracer is not None:
            from .obs import merge_traces, write_trace

            document = merge_traces(
                result.span_shards, parent=tracer, parent_label="parent"
            )
            write_trace(document, args.trace)
    finally:
        if shard_tmp is not None:
            shard_tmp.cleanup()

    rows = []
    for item in result.items:
        if item.ok:
            payload = item.payload
            rows.append(
                [
                    item.name,
                    "hit" if item.cache_hit else "ok",
                    payload["rate"],
                    payload["initiation_interval"],
                    payload["frustum"]["length"],
                ]
            )
        else:
            rows.append(
                [
                    item.name,
                    "ERROR",
                    item.error["type"],
                    "-",
                    item.error["message"][:40],
                ]
            )
    print(
        render_table(
            ["item", "status", "rate", "II", "frustum len"],
            rows,
            title=f"Sweep of {args.manifest} ({args.workers} worker(s))",
        ),
        file=out,
    )
    stats = result.cache_stats()
    cache_note = (
        f"cache {cache_dir}: {stats['hit']} hit(s), {stats['miss']} "
        f"miss(es), {stats['corrupt']} corrupt"
        if cache_dir is not None
        else "cache off"
    )
    print(
        f"\n{result.n_items} item(s), {result.n_errors} error(s); "
        f"{cache_note}; {wall:.3f}s end to end",
        file=out,
    )

    timing = result.timing_summary()
    if tracer is not None:
        lanes = document["otherData"]["lanes"]
        print(
            f"wrote merged trace ({len(lanes)} lane(s)) to {args.trace}",
            file=out,
        )
        print(_render_timing_summary(timing), file=out)

    merged = result.merged_payload()
    if args.output is not None:
        pathlib.Path(args.output).write_text(
            stable_json(merged, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote merged payload to {args.output}", file=out)

    if args.metrics_out is not None:
        from .obs import default_registry, render_openmetrics

        exposition = render_openmetrics(default_registry())
        if args.metrics_out == "-":
            out.write(exposition)
        else:
            pathlib.Path(args.metrics_out).write_text(
                exposition, encoding="utf-8"
            )
            print(f"wrote OpenMetrics exposition to {args.metrics_out}", file=out)

    if args.ledger is not None:
        path = _append_sweep_record(args, merged, stats, wall, timing)
        print(f"appended sweep record to {path}", file=out)

    if args.require_hits and result.hit_rate < 1.0:
        # only ok items can be expected to hit: failures are never
        # cached, and hit_rate excludes them for the same reason
        misses = [i.name for i in result.items if i.ok and not i.cache_hit]
        print(
            f"error: --require-hits: {len(misses)} item(s) were not "
            f"served from the cache: {', '.join(misses)}",
            file=sys.stderr,
        )
        return 1
    return 1 if result.n_errors else 0


def _render_timing_summary(timing) -> str:
    """The post-sweep critical-path block: the lane that bounded the
    wall clock, its slowest items, and per-phase p50/p95 (``~`` marks
    percentiles from an overflowed sample window)."""
    lines = []
    critical = timing.get("critical_path")
    if critical:
        lines.append(
            f"critical path: {critical['worker']} "
            f"({critical['busy_seconds']:.3f}s busy over "
            f"{len(timing.get('lanes', {}))} lane(s))"
        )
        for entry in critical["items"]:
            lines.append(f"  {entry['seconds']:9.3f}s  {entry['name']}")
    phases = timing.get("phases") or {}
    if phases:
        lines.append("phase percentiles (s):")
        for name, stats in phases.items():
            approx = "" if stats.get("exact_percentiles", True) else "~"
            p50 = stats.get("p50")
            p95 = stats.get("p95")
            lines.append(
                f"  {name:<20} n={stats['count']:<5} "
                f"p50={approx}{p50:.6f} p95={approx}{p95:.6f}"
                if p50 is not None and p95 is not None
                else f"  {name:<20} n={stats['count']}"
            )
    return "\n".join(lines)


def _append_sweep_record(
    args: argparse.Namespace, merged, cache_stats, wall: float, timing=None
):
    """Append the ``sweep`` run record: the deterministic merged
    payload, with cache counters, wall clock and the span timing
    summary quarantined in the volatile ``timing`` section."""
    import pathlib

    from .obs import default_registry
    from .obs.ledger import (
        RUNS_FILE,
        append_record,
        default_ledger_dir,
        make_run_record,
    )

    directory = (
        default_ledger_dir()
        if args.ledger == "auto"
        else pathlib.Path(args.ledger)
    )
    snapshot = default_registry().dump()
    record = make_run_record(
        kind="sweep",
        name=f"sweep:{pathlib.Path(args.manifest).stem}",
        payload=merged,
        command=sys.argv[1:],
        phase_wall_clock={
            **snapshot["timers"],
            "sweep.total": {"count": 1, "total": wall, "mean": wall},
        },
        metrics={**snapshot["counters"], "cache": dict(cache_stats)},
        spans=timing,
    )
    return append_record(directory / RUNS_FILE, record)


def _resolve_cli_cache_dir(args: argparse.Namespace):
    """The cache-dir precedence shared by ``compile``, ``serve`` and
    ``sweep``: ``--no-cache`` wins, then ``--cache-dir``, then the
    ``REPRO_CACHE`` environment toggle (unset/falsy means no cache)."""
    import pathlib

    from .batch import resolve_cache_dir

    if args.no_cache:
        return None
    if args.cache_dir is not None:
        return pathlib.Path(args.cache_dir)
    return resolve_cache_dir()


def _cmd_compile(args: argparse.Namespace, out) -> int:
    """Compile one loop and print the deterministic payload — the
    exact bytes ``POST /v1/compile`` serves for the same input (the
    golden test diffs the two)."""
    import pathlib

    from .batch import SweepItem, compile_one
    from .obs import stable_json

    cache_dir = _resolve_cli_cache_dir(args)
    with open(args.loop_file) as handle:
        source = handle.read()
    item = SweepItem(
        name=pathlib.Path(args.loop_file).stem,
        source=source,
        scalars=_parse_scalars(args.scalar) or None,
        pipeline_stages=args.stages,
        include_io=not args.abstract,
        engine=args.engine,
        unroll=args.unroll,
    )
    result = compile_one(item, cache_dir=cache_dir)
    if not result.ok:
        raise ReproError(
            f"{result.error['type']}: {result.error['message']}"
        )
    payload = result.payload
    text = stable_json(payload, indent=2) + "\n"
    if args.output is not None:
        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote compiled payload to {args.output}", file=out)
    else:
        out.write(text)
    if args.ledger is not None:
        args.ledger_payload = {
            "loop": payload["loop"],
            "cycle_time": payload["cycle_time"],
            "rate": payload["rate"],
            "unroll": payload.get("unroll", 1),
            "achieved_rate": payload.get("achieved_rate"),
            "dependence_bound": payload.get("dependence_bound"),
            "initiation_interval": payload["initiation_interval"],
            "frustum_length": payload["frustum"]["length"],
            "transient": payload["frustum"]["start_time"],
            "repeat_time": payload["frustum"]["repeat_time"],
            "n_transitions": payload["n_transitions"],
            "net_size": payload["net_size"],
            "engine": payload["engine"],
            "cache_hit": result.cache_hit,
        }
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """Run the HTTP compilation service until a signal drains it."""
    from .service import ServiceConfig
    from .service.http import serve

    cache_dir = _resolve_cli_cache_dir(args)
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            request_timeout=args.request_timeout,
            drain_grace=args.drain_grace,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            span_dir=args.span_dir,
        )
    except ValueError as error:
        raise ReproError(str(error)) from error
    return serve(config)


def _cmd_metrics(args: argparse.Namespace, out) -> int:
    """Render one ledger record's timing section as OpenMetrics text —
    the bridge from the append-only ledger to scrape-based tooling."""
    import pathlib

    from .obs import dump_from_record, render_openmetrics
    from .obs.ledger import RUNS_FILE, default_ledger_dir, load_records

    source = (
        pathlib.Path(args.from_ledger)
        if args.from_ledger is not None
        else default_ledger_dir() / RUNS_FILE
    )
    records = load_records(source)
    if args.name is not None:
        records = [r for r in records if r.get("name") == args.name]
    if not records:
        wanted = f" named {args.name!r}" if args.name is not None else ""
        raise ReproError(f"no ledger record{wanted} in {source}")
    exposition = render_openmetrics(dump_from_record(records[-1]))
    if args.output is not None:
        pathlib.Path(args.output).write_text(exposition, encoding="utf-8")
        print(f"wrote OpenMetrics exposition to {args.output}", file=out)
    else:
        out.write(exposition)
    return 0


def _cmd_bench_check(args: argparse.Namespace, out) -> int:
    """The benchmark regression gate (CI's perf check)."""
    import pathlib

    from .obs.regression import (
        DEFAULT_WALL_FLOOR,
        DEFAULT_WALL_TOLERANCE,
        load_results_records,
        run_gate,
    )
    from .obs.schema import stable_json

    if args.update_baseline:
        records = load_results_records(args.results)
        baseline = pathlib.Path(args.baseline)
        baseline.parent.mkdir(parents=True, exist_ok=True)
        baseline.write_text(
            "".join(
                stable_json(records[name]) + "\n" for name in sorted(records)
            ),
            encoding="utf-8",
        )
        print(
            f"wrote {len(records)} baseline record(s) to {baseline}",
            file=out,
        )
        return 0

    report = run_gate(
        args.results,
        args.baseline,
        wall_tolerance=(
            args.wall_tolerance
            if args.wall_tolerance is not None
            else DEFAULT_WALL_TOLERANCE
        ),
        wall_floor=(
            args.wall_floor
            if args.wall_floor is not None
            else DEFAULT_WALL_FLOOR
        ),
    )
    print(report.render(), file=out)
    return 1 if report.failed(wall_hard=args.wall_hard) else 0


def _print_profile(out) -> None:
    """Render the per-phase wall-clock table from the process-wide
    metrics registry (populated by ``--profile``)."""
    from .obs import default_registry
    from .report import render_table

    timers = default_registry().dump()["timers"]
    if not timers:
        print(
            "\n--profile: no phases were recorded by this command "
            "(nothing was compiled or simulated)",
            file=out,
        )
        return
    rows = [
        [name, stats["count"], f"{stats['total']:.6f}", f"{stats['mean']:.6f}"]
        for name, stats in sorted(
            timers.items(), key=lambda item: -item[1]["total"]
        )
    ]
    print(file=out)
    print(
        render_table(
            ["phase", "calls", "total s", "mean s"],
            rows,
            title="Wall-clock profile",
        ),
        file=out,
    )


def _append_ledger_record(args: argparse.Namespace, argv, out) -> None:
    """Append the normalized run record requested with ``--ledger``."""
    import pathlib

    from .obs import default_registry
    from .obs.ledger import (
        RUNS_FILE,
        append_record,
        default_ledger_dir,
        make_run_record,
    )

    payload = getattr(args, "ledger_payload", None)
    if payload is None:
        return
    directory = (
        default_ledger_dir()
        if args.ledger == "auto"
        else pathlib.Path(args.ledger)
    )
    snapshot = default_registry().dump()
    record = make_run_record(
        kind="cli",
        name=f"{args.command}:{payload['loop']}",
        payload=payload,
        command=list(argv) if argv is not None else sys.argv[1:],
        phase_wall_clock=snapshot["timers"],
        metrics=snapshot["counters"],
        blame=getattr(args, "ledger_blame", None),
    )
    path = append_record(directory / RUNS_FILE, record)
    print(f"appended run record to {path}", file=out)


_COMMANDS = {
    "schedule": _cmd_schedule,
    "analyze": _cmd_analyze,
    "storage": _cmd_storage,
    "dot": _cmd_dot,
    "trace": _cmd_trace,
    "explain": _cmd_explain,
    "dash": _cmd_dash,
    "sweep": _cmd_sweep,
    "compile": _cmd_compile,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
    "bench-check": _cmd_bench_check,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit status."""
    from .obs import default_registry, logging_setup

    logging_setup()
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = getattr(args, "profile", False)
    # --ledger wants phase timings in its record and --metrics-out
    # wants counters/timers in its exposition, so both enable the
    # registry exactly like --profile (without printing the table)
    collecting = (
        profiling
        or getattr(args, "ledger", None) is not None
        or getattr(args, "metrics_out", None) is not None
    )
    if collecting:
        registry = default_registry()
        registry.reset()
        registry.enable()
    try:
        status = _COMMANDS[args.command](args, out)
        if status == 0 and getattr(args, "ledger", None) is not None:
            _append_ledger_record(args, argv, out)
        if profiling:
            _print_profile(out)
        return status
    except BrokenPipeError:
        # downstream consumer (e.g. `head`) closed the pipe; not an error
        try:
            sys.stdout.close()
        except Exception as error:
            log.debug("suppressed error while closing stdout: %s", error)
        return 0
    except FileNotFoundError as error:
        # raised for a missing input loop file or an unwritable/missing
        # output directory alike — the errno message names the path
        log.warning("file not found: %s", error)
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        log.warning("%s failed: %s", args.command, error)
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if collecting:
            default_registry().disable()
