"""Machine models: conflict-resolution policies and the cycle-accurate
single-clean-pipeline executor."""

from .policies import FifoRunPlacePolicy, StaticPriorityPolicy
from .scp import MachineRun, ScpMachine

__all__ = [
    "FifoRunPlacePolicy",
    "StaticPriorityPolicy",
    "MachineRun",
    "ScpMachine",
]
