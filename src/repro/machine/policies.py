"""Deterministic conflict-resolution policies (Assumption 5.2.1).

The SDSP-SCP-PN's run place is a structural conflict: when several
instructions are data-ready, the machine must choose which one issues.
Assumption 5.2.1 only requires that the firing mechanism (a) never
idles while something is enabled and (b) is a deterministic function of
the machine's instantaneous state, so that a repeated instantaneous
state implies repeated behaviour (Lemma 5.2.1).

The paper's simulator resolves choices "by a decision mechanism which
employs a FIFO queue and an adjacency list representation of the static
dataflow graph"; :class:`FifoRunPlacePolicy` reproduces that scheme.
:class:`StaticPriorityPolicy` is an alternative (fixed priority) used
to demonstrate that *any* deterministic policy yields a frustum, and
that different policies may yield different frustums with the same
steady-state rate.

Both policies work unchanged under either simulation engine.  The
step engine calls :meth:`~repro.petrinet.simulator
.ConflictResolutionPolicy.begin_step` every tick; the event engine
only at event instants — sound because on a quiet tick nothing has
completed or fired, so ``FifoRunPlacePolicy.begin_step`` would find no
new data-ready transition to enqueue (the idle set and marking only
change at events) and ``StaticPriorityPolicy`` keeps no state at all.
Both engines offer candidates to :meth:`order` under the same
greedy-with-recheck protocol, in the same adjacency-list order, so the
conflict decisions — and hence the frustum — are bit-identical.  See
the event-engine contract on
:meth:`repro.petrinet.simulator.ConflictResolutionPolicy.begin_step`
before writing a new policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..petrinet.marking import Marking
from ..petrinet.net import PetriNet
from ..petrinet.simulator import ConflictResolutionPolicy

__all__ = ["FifoRunPlacePolicy", "StaticPriorityPolicy"]


class FifoRunPlacePolicy(ConflictResolutionPolicy):
    """FIFO issue of data-ready instructions, with adjacency-list order
    breaking ties among instructions that become ready simultaneously.

    A transition is *data-ready* when it is idle and every input place
    **except the run place** is marked; data-ready instructions enter a
    FIFO queue (simultaneous arrivals in ``priority_order``) and the
    head of the queue issues whenever the run place token is free.
    Dummy (non-instruction) transitions bypass the queue entirely.

    The queue contents are part of the machine state
    (:meth:`state_key`), so frustum detection sees a state that truly
    determines the future.
    """

    def __init__(
        self,
        net: PetriNet,
        run_place: str,
        priority_order: Sequence[str],
    ) -> None:
        self._net = net
        self._run_place = run_place
        self._priority = list(priority_order)
        self._priority_set = set(priority_order)
        self._data_inputs: Dict[str, Tuple[str, ...]] = {
            t: tuple(p for p in net.input_places(t) if p != run_place)
            for t in priority_order
        }
        self._queue: List[str] = []

    def reset(self) -> None:
        self._queue = []

    def begin_step(self, time: int, marking: Marking, idle: Sequence[str]) -> None:
        idle_set = set(idle)
        queued = set(self._queue)
        for transition in self._priority:
            if transition in queued or transition not in idle_set:
                continue
            if all(marking[p] > 0 for p in self._data_inputs[transition]):
                self._queue.append(transition)

    def order(self, candidates: Sequence[str]) -> List[str]:
        candidate_set = set(candidates)
        queued = [t for t in self._queue if t in candidate_set]
        others = [t for t in candidates if t not in self._priority_set]
        return queued + others

    def notify_fired(self, transition: str) -> None:
        if transition in self._priority_set:
            try:
                self._queue.remove(transition)
            except ValueError:
                pass

    def state_key(self) -> Tuple:
        return tuple(self._queue)


class StaticPriorityPolicy(ConflictResolutionPolicy):
    """Always prefer the earliest transition in a fixed priority list
    (stateless, so its :meth:`state_key` is empty).

    With a shared resource this can starve low-priority instructions
    *within* a period but not across periods — the data dependences
    eventually block high-priority instructions — so a frustum still
    appears; the test suite demonstrates both facts.
    """

    def __init__(self, priority_order: Sequence[str]) -> None:
        self._rank: Dict[str, int] = {
            t: i for i, t in enumerate(priority_order)
        }

    def order(self, candidates: Sequence[str]) -> List[str]:
        return sorted(
            candidates, key=lambda t: (self._rank.get(t, len(self._rank)), t)
        )
