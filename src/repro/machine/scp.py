"""A cycle-accurate single-clean-pipeline (SCP) machine model.

The SDSP-SCP-PN *is* the paper's machine model, but a model proven
against itself proves little; this module implements the machine
directly — an issue stage feeding an ``l``-stage hazard-free pipeline,
operands held in one-deep acknowledged buffers — without any Petri-net
machinery.  The test suite checks that its dynamic (FIFO-issue)
execution reaches exactly the steady-state period of the SDSP-SCP-PN
frustum, and the benchmark harness uses it to replay derived schedules
and measure utilisation.

Machine semantics:

* at most one instruction issues per cycle; an issued instruction's
  result (and the acknowledgements freeing its input buffers) appear
  ``l`` cycles later;
* an instruction is *data-ready* when every input buffer holds a value
  and every output buffer is free (the one-token-per-arc discipline);
* ready instructions wait in a FIFO queue; ties on the same cycle are
  broken by program order (Assumption 5.2.1's adjacency-list scheme).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..core.schedule import PipelinedSchedule
from ..core.sdsp_pn import SdspPetriNet
from ..errors import SimulationError

__all__ = ["MachineRun", "ScpMachine"]


@dataclass
class MachineRun:
    """Outcome of one machine execution.

    ``issue_times[(instruction, iteration)]`` records when each
    instance issued; ``steady_period``/``steady_iterations`` describe
    the detected periodic regime of a dynamic run (None for schedule
    replays, which are periodic by construction).
    """

    cycles: int
    issues: int
    issue_times: Dict[Tuple[str, int], int]
    steady_period: Optional[int] = None
    steady_iterations: Optional[int] = None

    @property
    def utilization(self) -> Fraction:
        if self.cycles == 0:
            raise SimulationError("empty run has no utilisation")
        return Fraction(self.issues, self.cycles)

    @property
    def steady_rate(self) -> Optional[Fraction]:
        if self.steady_period is None or self.steady_iterations is None:
            return None
        return Fraction(self.steady_iterations, self.steady_period)


class ScpMachine:
    """The machine: built from an SDSP-PN (instructions + data arcs +
    the derived acknowledgement structure)."""

    def __init__(self, pn: SdspPetriNet, stages: int) -> None:
        if stages < 1:
            raise SimulationError("pipeline needs at least one stage")
        self.pn = pn
        self.stages = stages
        self.instructions: Tuple[str, ...] = tuple(pn.net.transition_names)
        kept = set(self.instructions)
        # (source, target, distance) data buffers, all capacity 1.
        self.buffers: List[Tuple[str, str, int]] = [
            (arc.source, arc.target, arc.initial_tokens)
            for arc in pn.sdsp.all_data_arcs
            if arc.source in kept and arc.target in kept
        ]

    # ------------------------------------------------------------------
    # Dynamic (FIFO) execution — the hardware the paper models
    # ------------------------------------------------------------------
    def run_dynamic(
        self,
        iterations: int,
        max_cycles: Optional[int] = None,
    ) -> MachineRun:
        """Execute ``iterations`` iterations with dynamic FIFO issue and
        detect the steady period from the issue-time series."""
        if max_cycles is None:
            max_cycles = 4 * self.stages * (
                iterations + len(self.instructions) + 4
            ) * max(1, len(self.instructions))

        # Each capacity-1 buffer tracks: values available to the
        # consumer, and free slots available to the producer.  A
        # consumer takes the value at issue and its acknowledgement
        # frees the slot l cycles later; a producer claims the slot at
        # issue and the value lands l cycles later — exactly the
        # series-expanded data/ack place semantics of the SDSP-SCP-PN.
        values: List[int] = []
        free: List[int] = []
        has_ack: List[bool] = []
        for source, target, distance in self.buffers:
            values.append(distance)  # feedback buffers start full
            free.append(1 - distance)
            # Self-arcs (accumulators) carry no acknowledgement in the
            # SDSP-PN — the producer's non-reentrance already bounds the
            # buffer — so the machine must not demand a free slot.
            has_ack.append(source != target)
        in_of: Dict[str, List[int]] = {i: [] for i in self.instructions}
        out_of: Dict[str, List[int]] = {i: [] for i in self.instructions}
        for index, (source, target, _d) in enumerate(self.buffers):
            out_of[source].append(index)
            in_of[target].append(index)

        issued_count: Dict[str, int] = {i: 0 for i in self.instructions}
        in_flight: Dict[str, int] = {}
        queue: Deque[str] = deque()
        queued: Set[str] = set()
        completions: Dict[int, List[str]] = {}
        issue_times: Dict[Tuple[str, int], int] = {}
        issues = 0
        cycle = 0

        def is_ready(name: str) -> bool:
            if name in in_flight or issued_count[name] >= iterations:
                return False
            if any(values[b] < 1 for b in in_of[name]):
                return False
            return all(
                free[b] >= 1 for b in out_of[name] if has_ack[b]
            )

        while cycle <= max_cycles:
            # pipeline drain: results and acknowledgements land.
            for name in completions.pop(cycle, []):
                del in_flight[name]
                for b in out_of[name]:
                    values[b] += 1
                for b in in_of[name]:
                    if has_ack[b]:
                        free[b] += 1
            # enqueue newly ready instructions in program order.
            for name in self.instructions:
                if name not in queued and is_ready(name):
                    queue.append(name)
                    queued.add(name)
            # issue at most one.
            if queue:
                name = queue.popleft()
                queued.discard(name)
                for b in in_of[name]:
                    values[b] -= 1
                for b in out_of[name]:
                    if has_ack[b]:
                        free[b] -= 1
                iteration = issued_count[name]
                issued_count[name] = iteration + 1
                issue_times[(name, iteration)] = cycle
                in_flight[name] = cycle + self.stages
                completions.setdefault(cycle + self.stages, []).append(name)
                issues += 1
            if all(c >= iterations for c in issued_count.values()) and not in_flight:
                break
            cycle += 1
        else:
            raise SimulationError(
                f"dynamic run did not finish within {max_cycles} cycles"
            )

        period, span = self._detect_period(issue_times, iterations)
        return MachineRun(
            cycles=cycle + 1,
            issues=issues,
            issue_times=issue_times,
            steady_period=period,
            steady_iterations=span,
        )

    def _detect_period(
        self,
        issue_times: Dict[Tuple[str, int], int],
        iterations: int,
    ) -> Tuple[Optional[int], Optional[int]]:
        """Steady period from the middle of the issue-time series (the
        head is the pipeline-fill transient and the tail is perturbed
        by the end-of-run drain): the common difference
        ``issue(v, i+k) − issue(v, i)``, scanning k upward."""
        anchor = iterations // 3
        limit = (2 * iterations) // 3
        for k in range(1, max(1, iterations // 3)):
            if anchor + 2 * k > limit:
                break
            deltas = set()
            for name in self.instructions:
                for i in range(anchor, anchor + k):
                    deltas.add(
                        issue_times[(name, i + k)] - issue_times[(name, i)]
                    )
            if len(deltas) == 1:
                return deltas.pop(), k
        return None, None

    # ------------------------------------------------------------------
    # Schedule replay
    # ------------------------------------------------------------------
    def run_schedule(
        self,
        schedule: PipelinedSchedule,
        iterations: int,
    ) -> MachineRun:
        """Replay a static schedule, enforcing the machine's rules:
        one issue per cycle and operands ready (producer issued at
        least ``l`` cycles earlier at the right iteration distance).
        Raises :class:`SimulationError` on any violation — this is the
        hardware-level check of a compiler-derived schedule."""
        ops = [
            op
            for op in schedule.expand(iterations)
            if op.instruction in set(self.instructions)
        ]
        issue_times: Dict[Tuple[str, int], int] = {}
        per_cycle: Dict[int, int] = {}
        for op in ops:
            per_cycle[op.time] = per_cycle.get(op.time, 0) + 1
            if per_cycle[op.time] > 1:
                raise SimulationError(
                    f"cycle {op.time}: two instructions issued on a single "
                    "clean pipeline"
                )
            issue_times[(op.instruction, op.iteration)] = op.time
        for source, target, distance in self.buffers:
            for (name, iteration), time in issue_times.items():
                if name != target:
                    continue
                producer_iteration = iteration - distance
                if producer_iteration < 0:
                    continue
                key = (source, producer_iteration)
                if key not in issue_times:
                    continue
                if time < issue_times[key] + self.stages:
                    raise SimulationError(
                        f"operand of {name!r} iteration {iteration} not ready: "
                        f"issued at {time}, producer {source!r} completes at "
                        f"{issue_times[key] + self.stages}"
                    )
        if not ops:
            raise SimulationError("schedule contains no machine instructions")
        first = min(op.time for op in ops)
        last = max(op.time for op in ops)
        return MachineRun(
            cycles=last - first + 1 + self.stages,
            issues=len(ops),
            issue_times=issue_times,
        )
