"""Small shared helpers used across the :mod:`repro` subpackages."""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Tuple


def fresh_name(base: str, taken: Iterable[str]) -> str:
    """Return ``base`` if unused, else ``base_2``, ``base_3``, ... .

    ``taken`` is any iterable of existing names; it is materialised into a
    set, so generators are fine.
    """
    taken_set = set(taken)
    if base not in taken_set:
        return base
    index = 2
    while f"{base}_{index}" in taken_set:
        index += 1
    return f"{base}_{index}"


def snap_to_fraction(value: float, max_denominator: int) -> Fraction:
    """Snap a floating-point ratio to the nearest fraction with a bounded
    denominator.

    Cycle times of timed marked graphs are rationals ``omega / tokens``
    whose denominator never exceeds the total token count of the net, so
    numerical results (from binary search or LP solvers) can be recovered
    exactly by rounding to the nearest such fraction.
    """
    if max_denominator < 1:
        raise ValueError("max_denominator must be >= 1")
    return Fraction(value).limit_denominator(max_denominator)


def stable_topological_order(
    nodes: Sequence[str], edges: Iterable[Tuple[str, str]]
) -> List[str]:
    """Topologically sort ``nodes`` respecting ``edges`` (u before v).

    Ties are broken by the original order of ``nodes``, which makes the
    result deterministic — important for reproducible simulation traces
    and schedule listings.  Raises :class:`ValueError` on a cycle.
    """
    position = {name: index for index, name in enumerate(nodes)}
    successors: Dict[str, List[str]] = {name: [] for name in nodes}
    in_degree: Dict[str, int] = {name: 0 for name in nodes}
    for source, target in edges:
        successors[source].append(target)
        in_degree[target] += 1

    import heapq

    ready = [(position[name], name) for name in nodes if in_degree[name] == 0]
    heapq.heapify(ready)
    order: List[str] = []
    while ready:
        _, name = heapq.heappop(ready)
        order.append(name)
        for succ in successors[name]:
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                heapq.heappush(ready, (position[succ], succ))
    if len(order) != len(nodes):
        raise ValueError("graph contains a cycle; no topological order exists")
    return order


def format_fraction(value: Fraction) -> str:
    """Render a fraction compactly: integers without a denominator."""
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"
