"""End-to-end convenience pipeline: loop text in, verified schedule out.

This wraps the full flow of the paper:

1. parse the loop (``repro.loops.parser``);
2. dependence analysis + lowering to a static dataflow graph
   (``repro.loops``);
3. SDSP-PN construction (``repro.core.sdsp_pn``), optionally the
   SDSP-SCP-PN resource model (``repro.core.scp``);
4. behavior-graph simulation under the earliest firing rule and
   cyclic-frustum detection (``repro.petrinet.behavior``);
5. schedule derivation (``repro.core.schedule``) and — unless disabled
   — verification of dependences, resources and optimality
   (``repro.core.verify``).

Each stage's artifact is exposed on the result object so callers can
drop down to any layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .core.bounds import theoretical_bounds, TheoreticalBounds
from .core.rate import (
    dependence_bound_rate,
    optimal_rate,
    pipeline_utilization,
    scp_rate_upper_bound,
)
from .core.schedule import PipelinedSchedule, ScheduledOp, derive_schedule
from .core.scp import SdspScpNet, build_sdsp_scp_pn
from .core.sdsp_pn import SdspPetriNet, build_sdsp_pn
from .core.verify import verify_schedule
from .errors import AnalysisError, ReproError
from .loops.parser import parse_loop
from .loops.translate import TranslationResult, translate
from .loops.unroll import (
    MAX_UNROLL,
    base_firing_totals,
    unroll_graph,
    validate_unroll,
)
from .machine.policies import FifoRunPlacePolicy
from .obs.events import Instrumentation, NULL_INSTRUMENTATION
from .petrinet.behavior import BehaviorGraph, CyclicFrustum, detect_frustum

__all__ = [
    "PAYLOAD_SCHEMA_VERSION",
    "CompiledLoop",
    "CompiledLoopSummary",
    "FrustumSummary",
    "compile_loop",
]

#: Version of the :meth:`CompiledLoopSummary.payload` layout.  Version
#: 2 added ``unroll`` / ``achieved_rate`` / ``dependence_bound`` (and
#: this field itself); version-1 payloads — which carry none of them —
#: still load with ``unroll = 1`` defaults, while payloads *newer* than
#: the reader are rejected outright (a reader must never silently
#: reinterpret fields it does not know about).
PAYLOAD_SCHEMA_VERSION = 2


def _fraction_from(value: Any) -> Fraction:
    """Parse a payload rational: an int, an ``int``-valued string, or
    the exact ``"p/q"`` form the ledger schema emits."""
    return Fraction(str(value))


@dataclass(frozen=True)
class FrustumSummary:
    """The deterministic facts of a detected cyclic frustum.

    This is the serialisable projection of
    :class:`~repro.petrinet.behavior.CyclicFrustum` — everything the
    Tables 1/2 measurement columns need, without the instantaneous
    state or the behavior graph, so it survives a JSON round trip
    byte-identically (the compile cache stores exactly this).
    """

    start_time: int
    repeat_time: int
    firing_counts: Dict[str, int]
    schedule_steps: Tuple[Tuple[int, Tuple[str, ...]], ...]

    @property
    def length(self) -> int:
        return self.repeat_time - self.start_time

    @classmethod
    def from_frustum(cls, frustum: CyclicFrustum) -> "FrustumSummary":
        return cls(
            start_time=frustum.start_time,
            repeat_time=frustum.repeat_time,
            firing_counts=dict(frustum.firing_counts),
            schedule_steps=tuple(
                (time, tuple(fired)) for time, fired in frustum.schedule_steps
            ),
        )

    def payload(self) -> Dict[str, Any]:
        return {
            "start_time": self.start_time,
            "repeat_time": self.repeat_time,
            "length": self.length,
            "firing_counts": dict(self.firing_counts),
            "schedule_steps": [
                [time, list(fired)] for time, fired in self.schedule_steps
            ],
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "FrustumSummary":
        return cls(
            start_time=int(data["start_time"]),
            repeat_time=int(data["repeat_time"]),
            firing_counts={
                str(name): int(count)
                for name, count in data["firing_counts"].items()
            },
            schedule_steps=tuple(
                (int(time), tuple(str(name) for name in fired))
                for time, fired in data["schedule_steps"]
            ),
        )


def _schedule_payload(schedule: PipelinedSchedule) -> Dict[str, Any]:
    return {
        "start_time": schedule.start_time,
        "initiation_interval": schedule.initiation_interval,
        "iterations_per_kernel": schedule.iterations_per_kernel,
        "instructions": list(schedule.instructions),
        "prologue": [
            [op.time, op.instruction, op.iteration]
            for op in schedule.prologue
        ],
        "kernel": [
            [rel, name, base] for rel, name, base in schedule.kernel
        ],
    }


def _schedule_from_payload(data: Mapping[str, Any]) -> PipelinedSchedule:
    return PipelinedSchedule(
        prologue=[
            ScheduledOp(int(time), str(name), int(iteration))
            for time, name, iteration in data["prologue"]
        ],
        kernel=[
            (int(rel), str(name), int(base))
            for rel, name, base in data["kernel"]
        ],
        start_time=int(data["start_time"]),
        initiation_interval=int(data["initiation_interval"]),
        iterations_per_kernel=int(data["iterations_per_kernel"]),
        instructions=tuple(str(name) for name in data["instructions"]),
    )


@dataclass
class CompiledLoopSummary:
    """The deterministic payload of one compilation.

    Everything here is a pure function of ``(source, scalars,
    pipeline_stages, include_io, engine)`` — no nets, no behavior
    graphs, no wall clock — which makes it the value type of the
    content-addressed compile cache (:mod:`repro.batch.cache`) and the
    per-item record of ``repro sweep``.  ``payload()`` and
    ``from_payload()`` round-trip byte-identically under
    :func:`repro.obs.stable_json`.
    """

    loop: str
    engine: str
    include_io: bool
    pipeline_stages: Optional[int]
    rate: Fraction
    bounds: TheoreticalBounds
    net_size: int
    n_transitions: int
    frustum: FrustumSummary
    schedule: PipelinedSchedule
    scp_utilization: Optional[Fraction] = None
    scp_frustum: Optional[FrustumSummary] = None
    scp_schedule: Optional[PipelinedSchedule] = None
    unroll: int = 1
    achieved_rate: Optional[Fraction] = None
    dependence_bound: Optional[Fraction] = None

    @property
    def optimal_rate(self) -> Fraction:
        """Alias matching :attr:`CompiledLoop.optimal_rate`."""
        return self.rate

    @property
    def cycle_time(self) -> Fraction:
        return Fraction(1, 1) / self.rate

    def payload(self) -> Dict[str, Any]:
        """The stable JSON-ready dict (ledger-schema normalised)."""
        from .obs.schema import normalize_payload

        raw: Dict[str, Any] = {
            "payload_schema": PAYLOAD_SCHEMA_VERSION,
            "loop": self.loop,
            "engine": self.engine,
            "include_io": self.include_io,
            "pipeline_stages": self.pipeline_stages,
            "unroll": self.unroll,
            "achieved_rate": self.achieved_rate,
            "dependence_bound": self.dependence_bound,
            "rate": self.rate,
            "cycle_time": self.cycle_time,
            "initiation_interval": self.schedule.initiation_interval,
            "iterations_per_kernel": self.schedule.iterations_per_kernel,
            "net_size": self.net_size,
            "n_transitions": self.n_transitions,
            "bounds": {
                "n": self.bounds.n,
                "critical_cycle_count": self.bounds.critical_cycle_count,
                "iteration_bound": self.bounds.iteration_bound,
                "step_bound": self.bounds.step_bound,
                "covers_all_transitions": self.bounds.covers_all_transitions,
            },
            "frustum": self.frustum.payload(),
            "schedule": _schedule_payload(self.schedule),
        }
        if self.pipeline_stages is not None:
            raw["scp"] = {
                "utilization": self.scp_utilization,
                "frustum": (
                    self.scp_frustum.payload()
                    if self.scp_frustum is not None
                    else None
                ),
                "schedule": (
                    _schedule_payload(self.scp_schedule)
                    if self.scp_schedule is not None
                    else None
                ),
            }
        return normalize_payload(raw)

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "CompiledLoopSummary":
        """Rehydrate a summary from a :meth:`payload` dict (e.g. a
        compile-cache entry) without re-simulating anything.

        Payloads from schema version 1 (pre-unrolling builds carry no
        ``payload_schema`` field at all) load with ``unroll = 1``
        defaults; payloads newer than this reader are refused — their
        unknown fields could change the meaning of the known ones.
        """
        schema = int(data.get("payload_schema", 1))
        if schema > PAYLOAD_SCHEMA_VERSION:
            raise ReproError(
                f"compiled-loop payload has schema version {schema}, "
                f"newer than this reader ({PAYLOAD_SCHEMA_VERSION}); "
                "upgrade before loading it"
            )
        bounds = data["bounds"]
        scp = data.get("scp")
        stages = data.get("pipeline_stages")
        achieved = data.get("achieved_rate")
        dependence = data.get("dependence_bound")
        return cls(
            unroll=int(data.get("unroll", 1)),
            achieved_rate=(
                _fraction_from(achieved) if achieved is not None else None
            ),
            dependence_bound=(
                _fraction_from(dependence) if dependence is not None else None
            ),
            loop=str(data["loop"]),
            engine=str(data["engine"]),
            include_io=bool(data["include_io"]),
            pipeline_stages=int(stages) if stages is not None else None,
            rate=_fraction_from(data["rate"]),
            bounds=TheoreticalBounds(
                n=int(bounds["n"]),
                critical_cycle_count=int(bounds["critical_cycle_count"]),
                iteration_bound=int(bounds["iteration_bound"]),
                step_bound=int(bounds["step_bound"]),
                covers_all_transitions=bool(bounds["covers_all_transitions"]),
            ),
            net_size=int(data["net_size"]),
            n_transitions=int(data["n_transitions"]),
            frustum=FrustumSummary.from_payload(data["frustum"]),
            schedule=_schedule_from_payload(data["schedule"]),
            scp_utilization=(
                _fraction_from(scp["utilization"])
                if scp is not None and scp.get("utilization") is not None
                else None
            ),
            scp_frustum=(
                FrustumSummary.from_payload(scp["frustum"])
                if scp is not None and scp.get("frustum") is not None
                else None
            ),
            scp_schedule=(
                _schedule_from_payload(scp["schedule"])
                if scp is not None and scp.get("schedule") is not None
                else None
            ),
        )


@dataclass
class CompiledLoop:
    """Every artifact of one compilation.

    ``scp``/``scp_frustum``/``scp_schedule`` are None unless a pipeline
    depth was requested.
    """

    translation: TranslationResult
    pn: SdspPetriNet
    frustum: CyclicFrustum
    behavior: BehaviorGraph
    schedule: PipelinedSchedule
    bounds: TheoreticalBounds
    engine: str = "event"
    include_io: bool = True
    rate: Optional[Fraction] = None
    scp: Optional[SdspScpNet] = None
    scp_frustum: Optional[CyclicFrustum] = None
    scp_behavior: Optional[BehaviorGraph] = None
    scp_schedule: Optional[PipelinedSchedule] = None
    unroll: int = 1
    achieved_rate: Optional[Fraction] = None
    dependence_bound: Optional[Fraction] = None

    @property
    def optimal_rate(self) -> Fraction:
        """The time-optimal computation rate the ideal model achieves.

        :func:`compile_loop` computes this exactly once (Howard plus
        the enumeration/Lawler cross-checks) and stores it in
        :attr:`rate`; the property only falls back to recomputing for
        hand-assembled instances that never set the field.
        """
        if self.rate is None:
            self.rate = optimal_rate(self.pn)
        return self.rate

    @property
    def scp_utilization(self) -> Optional[Fraction]:
        if self.scp is None or self.scp_frustum is None:
            return None
        return pipeline_utilization(self.scp, self.scp_frustum)

    def summary(self) -> CompiledLoopSummary:
        """The deterministic, serialisable projection of this result —
        what the compile cache stores and ``repro sweep`` merges."""
        return CompiledLoopSummary(
            loop=self.translation.loop.name,
            engine=self.engine,
            include_io=self.include_io,
            pipeline_stages=self.scp.stages if self.scp is not None else None,
            unroll=self.unroll,
            achieved_rate=self.achieved_rate,
            dependence_bound=self.dependence_bound,
            rate=self.optimal_rate,
            bounds=self.bounds,
            net_size=self.pn.size,
            n_transitions=len(self.pn.net.transition_names),
            frustum=FrustumSummary.from_frustum(self.frustum),
            schedule=self.schedule,
            scp_utilization=self.scp_utilization,
            scp_frustum=(
                FrustumSummary.from_frustum(self.scp_frustum)
                if self.scp_frustum is not None
                else None
            ),
            scp_schedule=self.scp_schedule,
        )


def _select_unroll(graph, bound: Fraction, include_io: bool) -> int:
    """The smallest unroll factor whose unrolled net is rate-optimal
    per *base* instruction: ``U * optimal_rate(unroll(g, U)) ==
    dependence_bound_rate(g)`` (Howard-only analysis per candidate; no
    simulation happens until the factor is chosen)."""
    for factor in range(1, MAX_UNROLL + 1):
        candidate = build_sdsp_pn(
            unroll_graph(graph, factor), include_io=include_io
        )
        if factor * optimal_rate(candidate) == bound:
            return factor
    raise AnalysisError(
        f"no unroll factor up to {MAX_UNROLL} closes the rate gap to "
        f"the dependence bound {bound}; pass an explicit unroll factor"
    )


def _verify_unrolled_rate(
    pn: SdspPetriNet,
    frustum: CyclicFrustum,
    factor: int,
    rate: Fraction,
    target: Optional[Fraction],
) -> Fraction:
    """The hard acceptance check of the unrolling path: every *base*
    instruction's steady-state rate (its copies' frustum firings summed
    over the frustum length) must equal ``factor * rate`` exactly — and
    when ``target`` is set (``unroll="auto"``), that value must equal
    the dependence bound ``γ*`` exactly too.  Any miss is an
    :class:`~repro.errors.AnalysisError`, never a silent under-achieve.
    """
    if frustum.length == 0:
        raise AnalysisError("detected frustum is empty; no rate to verify")
    expected = factor * rate
    totals = base_firing_totals(
        frustum.firing_counts, pn.net.transition_names
    )
    for base, count in sorted(totals.items()):
        achieved = Fraction(count, frustum.length)
        if achieved != expected:
            raise AnalysisError(
                f"unrolled (x{factor}) frustum under-achieves: base "
                f"instruction {base!r} runs at {achieved} per cycle, "
                f"expected exactly {expected}"
            )
    if target is not None and expected != target:
        raise AnalysisError(
            f"unroll='auto' selected factor {factor} but the achieved "
            f"per-instruction rate {expected} does not equal the "
            f"dependence bound {target}"
        )
    return expected


def compile_loop(
    source: str,
    scalars: Optional[Mapping[str, float]] = None,
    pipeline_stages: Optional[int] = None,
    include_io: bool = True,
    verify: bool = True,
    verify_iterations: int = 12,
    instrumentation: Optional[Instrumentation] = None,
    engine: str = "event",
    unroll: Union[int, str] = 1,
) -> CompiledLoop:
    """Compile loop source text through the whole pipeline.

    Parameters
    ----------
    source:
        Loop text in the frontend syntax (see
        :mod:`repro.loops.parser`).
    scalars:
        Values for loop-invariant scalars (become immediates).
    pipeline_stages:
        If given, also build the SDSP-SCP-PN for a clean pipeline of
        that depth and derive its resource-constrained schedule.
    include_io:
        A-code mode (loads/stores are instructions) when True; the
        paper-figure abstract mode when False.
    verify:
        Replay the derived schedules against dependences, resources and
        the optimal rate; raises :class:`repro.errors.ScheduleError` on
        any violation.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation`.  When given, each
        compilation phase is timed (``phase.parse`` ... ``phase.verify``
        timers plus :class:`~repro.obs.events.PhaseTimer` events) and
        the behavior-graph simulations stream firing/snapshot/frustum
        events to the attached sinks.  Defaults to a no-op.
    engine:
        Simulation engine for frustum detection: ``"event"`` (default)
        jumps between completion instants and does work proportional to
        firings; ``"step"`` advances one time unit at a time.  Both
        produce bit-identical frusta and schedules (cross-validated by
        the test suite); the choice only affects detection cost.
    unroll:
        Loop unrolling factor (:mod:`repro.loops.unroll`).  ``1``
        (default) compiles the base body exactly as before.  An integer
        ``U`` (up to :data:`~repro.loops.unroll.MAX_UNROLL`) replicates
        the body ``U`` times with the mod-U distance rewiring rule;
        ``"auto"`` picks the smallest ``U`` whose per-base-instruction
        rate equals the dependence bound ``γ*`` exactly.  Either way
        the detected steady state is verified to achieve ``U *
        optimal_rate`` per base instruction (exact
        :class:`~fractions.Fraction` equality) — a miss raises
        :class:`~repro.errors.AnalysisError`.
    """
    obs = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    requested = validate_unroll(unroll)
    with obs.phase("parse"):
        loop = parse_loop(source)
    with obs.phase("translate"):
        translation = translate(loop, scalars)
    with obs.phase("unroll"):
        dependence_bound = dependence_bound_rate(
            translation.graph, include_io=include_io
        )
        if requested == "auto":
            factor = _select_unroll(
                translation.graph, dependence_bound, include_io=include_io
            )
        else:
            factor = requested
        graph = (
            unroll_graph(translation.graph, factor)
            if factor > 1
            else translation.graph
        )
    with obs.phase("build-sdsp-pn"):
        pn = build_sdsp_pn(graph, include_io=include_io)

    with obs.phase("detect-frustum"):
        frustum, behavior = detect_frustum(
            pn.timed, pn.initial, instrumentation=obs, engine=engine
        )
    with obs.phase("derive-schedule"):
        schedule = derive_schedule(frustum, behavior)
    # The optimal rate is computed exactly once per compilation (the
    # Howard/enumeration/Lawler analysis is not free) and stored on the
    # result; `CompiledLoop.optimal_rate` returns this cached Fraction.
    with obs.phase("rate"):
        rate = optimal_rate(pn)
        achieved = _verify_unrolled_rate(
            pn,
            frustum,
            factor,
            rate,
            dependence_bound if requested == "auto" else None,
        )
    if verify:
        with obs.phase("verify"):
            verify_schedule(
                pn,
                schedule,
                iterations=verify_iterations,
                expected_rate=rate,
            ).require()

    result = CompiledLoop(
        translation=translation,
        pn=pn,
        frustum=frustum,
        behavior=behavior,
        schedule=schedule,
        bounds=theoretical_bounds(pn),
        engine=engine,
        include_io=include_io,
        rate=rate,
        unroll=factor,
        achieved_rate=achieved,
        dependence_bound=dependence_bound,
    )

    if pipeline_stages is not None:
        with obs.phase("scp-build"):
            scp = build_sdsp_scp_pn(pn, pipeline_stages)
            policy = FifoRunPlacePolicy(
                scp.net, scp.run_place, scp.priority_order()
            )
        with obs.phase("scp-detect-frustum"):
            scp_frustum, scp_behavior = detect_frustum(
                scp.timed, scp.initial, policy, instrumentation=obs,
                engine=engine,
            )
        with obs.phase("scp-derive-schedule"):
            scp_schedule = derive_schedule(
                scp_frustum, scp_behavior, instructions=scp.sdsp_transitions
            )
        if verify:
            with obs.phase("scp-verify"):
                verify_schedule(
                    pn,
                    scp_schedule,
                    iterations=verify_iterations,
                    capacity=1,
                    latency_of=lambda t: pipeline_stages,
                ).require()
        result.scp = scp
        result.scp_frustum = scp_frustum
        result.scp_behavior = scp_behavior
        result.scp_schedule = scp_schedule

    return result
