"""End-to-end convenience pipeline: loop text in, verified schedule out.

This is the public façade over the staged compiler core
(:mod:`repro.compiler`), which decomposes the flow of the paper into
declared, pure passes:

1. parse the loop (``repro.loops.parser``);
2. dependence analysis + lowering to a static dataflow graph
   (``repro.loops``);
3. SDSP-PN construction (``repro.core.sdsp_pn``), optionally the
   SDSP-SCP-PN resource model (``repro.core.scp``);
4. behavior-graph simulation under the earliest firing rule and
   cyclic-frustum detection (``repro.petrinet.behavior``);
5. schedule derivation (``repro.core.schedule``) and — unless disabled
   — verification of dependences, resources and optimality
   (``repro.core.verify``).

:func:`compile_loop` keeps its historical signature and semantics
(every stage computes, all live artifacts present on the result);
batch and service callers that want per-stage artifact caching use
:func:`repro.compiler.compile_staged` directly.  The result types
live in :mod:`repro.compiler.result` and are re-exported here
unchanged, so ``from repro.pipeline import CompiledLoopSummary``
keeps working and every payload stays byte-identical.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from .compiler.manager import compile_live, make_request
from .compiler.result import (
    PAYLOAD_SCHEMA_VERSION,
    CompiledLoop,
    CompiledLoopSummary,
    FrustumSummary,
)
from .obs.events import Instrumentation

__all__ = [
    "PAYLOAD_SCHEMA_VERSION",
    "CompiledLoop",
    "CompiledLoopSummary",
    "FrustumSummary",
    "compile_loop",
]


def compile_loop(
    source: str,
    scalars: Optional[Mapping[str, float]] = None,
    pipeline_stages: Optional[int] = None,
    include_io: bool = True,
    verify: bool = True,
    verify_iterations: int = 12,
    instrumentation: Optional[Instrumentation] = None,
    engine: str = "event",
    unroll: Union[int, str] = 1,
) -> CompiledLoop:
    """Compile loop source text through the whole pipeline.

    Parameters
    ----------
    source:
        Loop text in the frontend syntax (see
        :mod:`repro.loops.parser`).
    scalars:
        Values for loop-invariant scalars (become immediates).
    pipeline_stages:
        If given, also build the SDSP-SCP-PN for a clean pipeline of
        that depth and derive its resource-constrained schedule.
    include_io:
        A-code mode (loads/stores are instructions) when True; the
        paper-figure abstract mode when False.
    verify:
        Replay the derived schedules against dependences, resources and
        the optimal rate; raises :class:`repro.errors.ScheduleError` on
        any violation.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation`.  When given, each
        compilation stage is timed (``phase.parse`` ... ``phase.verify``
        timers plus :class:`~repro.obs.events.PhaseTimer` events) and
        the behavior-graph simulations stream firing/snapshot/frustum
        events to the attached sinks.  Defaults to a no-op.
    engine:
        Simulation engine for frustum detection: ``"event"`` (default)
        jumps between completion instants and does work proportional to
        firings; ``"step"`` advances one time unit at a time.  Both
        produce bit-identical frusta and schedules (cross-validated by
        the test suite); the choice only affects detection cost.
    unroll:
        Loop unrolling factor (:mod:`repro.loops.unroll`).  ``1``
        (default) compiles the base body exactly as before.  An integer
        ``U`` (up to :data:`~repro.loops.unroll.MAX_UNROLL`) replicates
        the body ``U`` times with the mod-U distance rewiring rule;
        ``"auto"`` picks the smallest ``U`` whose per-base-instruction
        rate equals the dependence bound ``γ*`` exactly.  Either way
        the detected steady state is verified to achieve ``U *
        optimal_rate`` per base instruction (exact
        :class:`~fractions.Fraction` equality) — a miss raises
        :class:`~repro.errors.AnalysisError`.
    """
    request = make_request(
        source,
        scalars=scalars,
        pipeline_stages=pipeline_stages,
        include_io=include_io,
        verify=verify,
        verify_iterations=verify_iterations,
        engine=engine,
        unroll=unroll,
    )
    return compile_live(request, instrumentation=instrumentation)
