"""End-to-end convenience pipeline: loop text in, verified schedule out.

This wraps the full flow of the paper:

1. parse the loop (``repro.loops.parser``);
2. dependence analysis + lowering to a static dataflow graph
   (``repro.loops``);
3. SDSP-PN construction (``repro.core.sdsp_pn``), optionally the
   SDSP-SCP-PN resource model (``repro.core.scp``);
4. behavior-graph simulation under the earliest firing rule and
   cyclic-frustum detection (``repro.petrinet.behavior``);
5. schedule derivation (``repro.core.schedule``) and — unless disabled
   — verification of dependences, resources and optimality
   (``repro.core.verify``).

Each stage's artifact is exposed on the result object so callers can
drop down to any layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional

from .core.bounds import theoretical_bounds, TheoreticalBounds
from .core.rate import optimal_rate, pipeline_utilization, scp_rate_upper_bound
from .core.schedule import PipelinedSchedule, derive_schedule
from .core.scp import SdspScpNet, build_sdsp_scp_pn
from .core.sdsp_pn import SdspPetriNet, build_sdsp_pn
from .core.verify import verify_schedule
from .loops.parser import parse_loop
from .loops.translate import TranslationResult, translate
from .machine.policies import FifoRunPlacePolicy
from .obs.events import Instrumentation, NULL_INSTRUMENTATION
from .petrinet.behavior import BehaviorGraph, CyclicFrustum, detect_frustum

__all__ = ["CompiledLoop", "compile_loop"]


@dataclass
class CompiledLoop:
    """Every artifact of one compilation.

    ``scp``/``scp_frustum``/``scp_schedule`` are None unless a pipeline
    depth was requested.
    """

    translation: TranslationResult
    pn: SdspPetriNet
    frustum: CyclicFrustum
    behavior: BehaviorGraph
    schedule: PipelinedSchedule
    bounds: TheoreticalBounds
    engine: str = "event"
    scp: Optional[SdspScpNet] = None
    scp_frustum: Optional[CyclicFrustum] = None
    scp_behavior: Optional[BehaviorGraph] = None
    scp_schedule: Optional[PipelinedSchedule] = None

    @property
    def optimal_rate(self) -> Fraction:
        """The time-optimal computation rate the ideal model achieves."""
        return optimal_rate(self.pn)

    @property
    def scp_utilization(self) -> Optional[Fraction]:
        if self.scp is None or self.scp_frustum is None:
            return None
        return pipeline_utilization(self.scp, self.scp_frustum)


def compile_loop(
    source: str,
    scalars: Optional[Mapping[str, float]] = None,
    pipeline_stages: Optional[int] = None,
    include_io: bool = True,
    verify: bool = True,
    verify_iterations: int = 12,
    instrumentation: Optional[Instrumentation] = None,
    engine: str = "event",
) -> CompiledLoop:
    """Compile loop source text through the whole pipeline.

    Parameters
    ----------
    source:
        Loop text in the frontend syntax (see
        :mod:`repro.loops.parser`).
    scalars:
        Values for loop-invariant scalars (become immediates).
    pipeline_stages:
        If given, also build the SDSP-SCP-PN for a clean pipeline of
        that depth and derive its resource-constrained schedule.
    include_io:
        A-code mode (loads/stores are instructions) when True; the
        paper-figure abstract mode when False.
    verify:
        Replay the derived schedules against dependences, resources and
        the optimal rate; raises :class:`repro.errors.ScheduleError` on
        any violation.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation`.  When given, each
        compilation phase is timed (``phase.parse`` ... ``phase.verify``
        timers plus :class:`~repro.obs.events.PhaseTimer` events) and
        the behavior-graph simulations stream firing/snapshot/frustum
        events to the attached sinks.  Defaults to a no-op.
    engine:
        Simulation engine for frustum detection: ``"event"`` (default)
        jumps between completion instants and does work proportional to
        firings; ``"step"`` advances one time unit at a time.  Both
        produce bit-identical frusta and schedules (cross-validated by
        the test suite); the choice only affects detection cost.
    """
    obs = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    with obs.phase("parse"):
        loop = parse_loop(source)
    with obs.phase("translate"):
        translation = translate(loop, scalars)
    with obs.phase("build-sdsp-pn"):
        pn = build_sdsp_pn(translation.graph, include_io=include_io)

    with obs.phase("detect-frustum"):
        frustum, behavior = detect_frustum(
            pn.timed, pn.initial, instrumentation=obs, engine=engine
        )
    with obs.phase("derive-schedule"):
        schedule = derive_schedule(frustum, behavior)
    if verify:
        with obs.phase("verify"):
            verify_schedule(
                pn,
                schedule,
                iterations=verify_iterations,
                expected_rate=optimal_rate(pn),
            ).require()

    result = CompiledLoop(
        translation=translation,
        pn=pn,
        frustum=frustum,
        behavior=behavior,
        schedule=schedule,
        bounds=theoretical_bounds(pn),
        engine=engine,
    )

    if pipeline_stages is not None:
        with obs.phase("scp-build"):
            scp = build_sdsp_scp_pn(pn, pipeline_stages)
            policy = FifoRunPlacePolicy(
                scp.net, scp.run_place, scp.priority_order()
            )
        with obs.phase("scp-detect-frustum"):
            scp_frustum, scp_behavior = detect_frustum(
                scp.timed, scp.initial, policy, instrumentation=obs,
                engine=engine,
            )
        with obs.phase("scp-derive-schedule"):
            scp_schedule = derive_schedule(
                scp_frustum, scp_behavior, instructions=scp.sdsp_transitions
            )
        if verify:
            with obs.phase("scp-verify"):
                verify_schedule(
                    pn,
                    scp_schedule,
                    iterations=verify_iterations,
                    capacity=1,
                    latency_of=lambda t: pipeline_stages,
                ).require()
        result.scp = scp
        result.scp_frustum = scp_frustum
        result.scp_behavior = scp_behavior
        result.scp_schedule = scp_schedule

    return result
