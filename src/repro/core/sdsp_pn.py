"""SDSP → SDSP-PN translation (Section 3.2, Figures 1(d) and 2(d)).

The translation is literal: one transition per instruction node and one
place per arc — data arcs *and* acknowledgement arcs — with the initial
marking taken from the arcs' initial tokens.  Two properties follow by
construction and are re-checked (not assumed) by the test suite:

1. the initial marking is **live and safe** — every data/ack pair forms
   a cycle carrying exactly one token, covering every place (Theorems
   A.5.1/A.5.2);
2. the net is a **marked graph** — every place is an arc of the
   dataflow graph and therefore has exactly one producer and one
   consumer.

>>> from repro.loops import parse_loop, translate
>>> pn = build_sdsp_pn(translate(parse_loop(
...     "do tiny:\\n  A[i] = A[i-1] + IN[i]")).graph, include_io=False)
>>> pn.size                      # one compute transition
1
>>> sorted(pn.durations.values())
[1]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from ..dataflow.graph import DataArc, DataflowGraph
from ..errors import NetConstructionError
from ..petrinet.marked_graph import MarkedGraphView
from ..petrinet.marking import Marking
from ..petrinet.net import PetriNet
from ..petrinet.timed import TimedPetriNet
from .sdsp import AckArc, Sdsp

__all__ = ["SdspPetriNet", "build_sdsp_pn"]

DATA_PREFIX = "d"
ACK_PREFIX = "a"


@dataclass
class SdspPetriNet:
    """An SDSP-PN: the timed Petri net, its initial marking, and the
    bookkeeping linking net elements back to the dataflow graph.

    * ``data_place_of`` / ``ack_place_of`` map each data arc identifier
      to its data (resp. acknowledgement) place;
    * every transition name equals its instruction node name;
    * ``durations`` is the ``Ω`` function (unit by default, matching the
      paper's experiments).
    """

    sdsp: Sdsp
    net: PetriNet
    initial: Marking
    durations: Dict[str, int]
    data_place_of: Dict[str, str]
    ack_place_of: Dict[str, str]

    @property
    def timed(self) -> TimedPetriNet:
        return TimedPetriNet(self.net, self.durations)

    def view(self) -> MarkedGraphView:
        """Marked-graph analysis view (cycle enumeration etc.)."""
        return MarkedGraphView(self.net, self.initial)

    @property
    def size(self) -> int:
        """``n`` — instructions in the loop body, i.e. transitions in
        the net (load/store nodes are excluded in abstract mode)."""
        return len(self.net.transition_names)

    def arc_of_place(self, place: str) -> Optional[DataArc]:
        """Inverse lookup: the dataflow arc a data/ack place encodes."""
        for identifier, data_place in self.data_place_of.items():
            if data_place == place:
                return self._arc_by_identifier(identifier)
        for identifier, ack_place in self.ack_place_of.items():
            if ack_place == place:
                return self._arc_by_identifier(identifier)
        return None

    def _arc_by_identifier(self, identifier: str) -> Optional[DataArc]:
        for arc in self.sdsp.all_data_arcs:
            if arc.identifier == identifier:
                return arc
        return None


def build_sdsp_pn(
    source: "Sdsp | DataflowGraph",
    durations: Optional[Mapping[str, int]] = None,
    include_acks: bool = True,
    include_io: bool = True,
    buffer_capacity: int = 1,
) -> SdspPetriNet:
    """Translate an SDSP (or a raw dataflow graph, validated on the way
    in) into its SDSP-PN.

    Parameters
    ----------
    durations:
        Execution time per instruction; defaults to one cycle each, the
        setting of all the paper's examples and measurements.
    include_acks:
        When False the acknowledgement places are omitted.  The
        resulting net is *not* safe (forward places are unbounded) and
        models an idealised machine with infinite buffering; it exists
        for the ablation benchmark that isolates the cost of the
        one-token-per-arc discipline.
    include_io:
        When True (default, "A-code mode") array LOAD/STORE actors are
        instruction transitions like any other — as in the paper's
        Livermore measurements, where fetches are real dataflow
        instructions.  When False ("abstract mode") loads and stores
        are treated as free external input/output streams and dropped
        from the net, reproducing the paper's Figure 1(d) exactly: loop
        L1 yields 5 transitions (A–E) and 10 places (5 data + 5 ack).
    buffer_capacity:
        Tokens per data/acknowledgement pair.  1 (default) is the
        static dataflow one-token-per-arc discipline of the paper;
        larger values model the **FIFO-queued dataflow extension** of
        Section 7, where each arc is a queue holding up to ``k``
        tokens: every acknowledgement place simply starts with
        ``k − initial data tokens``.  The net stays a live marked graph
        bounded by ``k`` (safe only for ``k = 1``); the ablation bench
        measures how the extra buffering lifts the DOALL rate from 1/2
        towards 1.
    """
    from ..dataflow.actors import ActorKind

    if buffer_capacity < 1:
        raise NetConstructionError(
            f"buffer capacity must be >= 1, got {buffer_capacity}"
        )

    sdsp = source if isinstance(source, Sdsp) else Sdsp(source)
    graph = sdsp.graph

    def is_io(node: str) -> bool:
        return graph.actor(node).kind in (ActorKind.LOAD, ActorKind.STORE)

    kept_nodes = [
        node for node in sdsp.nodes if include_io or not is_io(node)
    ]
    if not kept_nodes:
        raise NetConstructionError(
            "abstract mode dropped every node; the loop body has no "
            "compute instructions"
        )
    kept_set = set(kept_nodes)

    net = PetriNet(f"{sdsp.name}-pn")
    tokens: Dict[str, int] = {}
    data_place_of: Dict[str, str] = {}
    ack_place_of: Dict[str, str] = {}

    for node in kept_nodes:
        net.add_transition(node, annotation="sdsp")

    kept_arcs = [
        arc
        for arc in sdsp.all_data_arcs
        if arc.source in kept_set and arc.target in kept_set
    ]

    for arc in kept_arcs:
        data_place = f"{DATA_PREFIX}[{arc.identifier}]"
        net.add_place(data_place, annotation="data")
        net.add_arc(arc.source, data_place)
        net.add_arc(data_place, arc.target)
        data_place_of[arc.identifier] = data_place
        if arc.initial_tokens:
            tokens[data_place] = arc.initial_tokens

    if include_acks:
        for arc in kept_arcs:
            if arc.source == arc.target:
                # Self-arcs (scalar accumulators) need no ack: the
                # transition's non-reentrance bounds the buffer, and a
                # reversed ack would be a token-free (dead) cycle.
                continue
            ack = AckArc(arc.target, arc.source, arc)
            ack_place = f"{ACK_PREFIX}[{ack.data_arc.identifier}]"
            net.add_place(ack_place, annotation="ack")
            net.add_arc(ack.source, ack_place)
            net.add_arc(ack_place, ack.target)
            ack_place_of[ack.data_arc.identifier] = ack_place
            ack_tokens = buffer_capacity - arc.initial_tokens
            if ack_tokens:
                tokens[ack_place] = ack_tokens

    if durations is None:
        duration_map = {node: 1 for node in kept_nodes}
    else:
        duration_map = {}
        for node in kept_nodes:
            if node not in durations:
                raise NetConstructionError(
                    f"no execution time supplied for instruction {node!r}"
                )
            duration_map[node] = int(durations[node])

    return SdspPetriNet(
        sdsp=sdsp,
        net=net,
        initial=Marking(tokens, net),
        durations=duration_map,
        data_place_of=data_place_of,
        ack_place_of=ack_place_of,
    )
