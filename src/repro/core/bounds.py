"""Polynomial bounds on frustum appearance (Section 4) and the
empirical O(n) observation (Section 5).

Theory (unit execution times, ``n`` transitions):

* **Single critical cycle** (Theorems 4.1.1/4.1.2): every transition
  enters its periodic pattern within ``O(n³)`` iterations, i.e. the
  frustum appears within ``O(n⁴)`` time steps.
* **Multiple critical cycles** (Theorems 4.2.1/4.2.2): transitions *on*
  critical cycles enter the pattern within ``O(n²)`` iterations /
  ``O(n³)`` steps; for off-cycle transitions no polynomial bound is
  known (the paper leaves the problem open).

Practice (Section 5): on the Livermore loops the repeated instantaneous
state is found within ``2n`` time steps; the ``BD`` column of
Tables 1/2 is "a tight bound derived by observation ... intended only
for comparison purposes".  We adopt ``BD = 2n`` for the SDSP-PN and
``BD = 2·l·depth + 4n`` for the SDSP-SCP-PN, where ``depth`` is the
loop body's critical-path length (the pipeline fill transient) — see
EXPERIMENTS.md for the calibration against the measured detections.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple

from ..petrinet.analysis import critical_cycle_report
from ..petrinet.behavior import CyclicFrustum, detect_frustum
from ..petrinet.simulator import ConflictResolutionPolicy
from .scp import SdspScpNet
from .sdsp_pn import SdspPetriNet

__all__ = [
    "TheoreticalBounds",
    "theoretical_bounds",
    "observed_bound_sdsp",
    "observed_bound_scp",
    "DetectionMeasurement",
    "measure_detection",
]


@dataclass(frozen=True)
class TheoreticalBounds:
    """The paper's worst-case guarantees for one net.

    ``covers_all_transitions`` is False in the multiple-critical-cycle
    case, where the bound only covers transitions on critical cycles.
    """

    n: int
    critical_cycle_count: int
    iteration_bound: int
    step_bound: int
    covers_all_transitions: bool

    @property
    def case(self) -> str:
        return "single" if self.critical_cycle_count <= 1 else "multiple"


def theoretical_bounds(pn: SdspPetriNet) -> TheoreticalBounds:
    """Classify the net (single vs multiple critical cycles, counting
    critical self-loops) and instantiate the matching bound."""
    report = critical_cycle_report(pn.view(), pn.durations)
    n = pn.size
    count = len(report.critical_cycles) + len(report.critical_self_loops)
    if count <= 1:
        return TheoreticalBounds(
            n=n,
            critical_cycle_count=count,
            iteration_bound=n**3,
            step_bound=n**4,
            covers_all_transitions=True,
        )
    return TheoreticalBounds(
        n=n,
        critical_cycle_count=count,
        iteration_bound=n**2,
        step_bound=n**3,
        covers_all_transitions=False,
    )


def observed_bound_sdsp(n: int) -> int:
    """``BD`` for Table 1: in every paper example "the repeated
    instantaneous state is found within 2n time steps"."""
    return 2 * n


def observed_bound_scp(n: int, stages: int, depth: int) -> int:
    """``BD`` for Table 2 (our calibration, see module docstring).

    The transient before the steady state includes filling the pipeline
    along the loop body's critical path — each of the ``depth`` levels
    waits a full ``2·stages`` data + acknowledgement round trip — plus
    the issue serialisation of the ``n`` instructions; the repeat adds
    one more period.  ``2·stages·depth + 4·n`` upper-bounds every
    Livermore measurement (checked by the test suite and EXPERIMENTS.md).
    """
    return 2 * stages * depth + 4 * n


@dataclass(frozen=True)
class DetectionMeasurement:
    """One empirical detection run, ready for the scaling study.

    ``steps_per_n`` near a small constant across a loop family is the
    paper's O(n) observation.
    """

    n: int
    start_time: int
    repeat_time: int
    frustum_length: int
    step_bound_theory: int
    observed_bound: int

    @property
    def steps_per_n(self) -> Fraction:
        return Fraction(self.repeat_time, max(1, self.n))

    @property
    def within_observed_bound(self) -> bool:
        return self.repeat_time <= self.observed_bound


def measure_detection(
    pn: SdspPetriNet,
    policy: Optional[ConflictResolutionPolicy] = None,
    scp: Optional[SdspScpNet] = None,
) -> Tuple[DetectionMeasurement, CyclicFrustum]:
    """Detect the frustum and package the detection-time statistics.

    Pass ``scp`` (with its policy) to measure the resource-constrained
    model instead of the ideal one; ``pn`` is still used for ``n`` and
    the theory bound.
    """
    if scp is not None:
        frustum, _behavior = detect_frustum(scp.timed, scp.initial, policy)
        depth = scp.base.sdsp.max_concurrent_iterations
        observed = observed_bound_scp(scp.size, scp.stages, depth)
        n = scp.size
    else:
        frustum, _behavior = detect_frustum(pn.timed, pn.initial, policy)
        observed = observed_bound_sdsp(pn.size)
        n = pn.size
    theory = theoretical_bounds(pn)
    measurement = DetectionMeasurement(
        n=n,
        start_time=frustum.start_time,
        repeat_time=frustum.repeat_time,
        frustum_length=frustum.length,
        step_bound_theory=theory.step_bound,
        observed_bound=observed,
    )
    return measurement, frustum
