"""Minimum storage allocation under time-optimal scheduling
(Section 6, Figure 4).

Every pair of data/acknowledgement arcs costs one storage location, so
the default allocation of an SDSP with ``m`` data arcs is ``m``
locations.  The *balancing ratio* of a cycle ``C`` is ``M(C)/|C|``
(initial tokens over node count, unit execution times); the optimal
computation rate of the loop is the minimum balancing ratio, achieved
on the critical cycles.  Cycles made entirely of data arcs are fixed —
their ratio cannot change without changing the program — but
acknowledgement arcs are the compiler's to place: a *slacker*
acknowledgement that returns from the end of a chain of forward arcs
to its start covers the whole chain with **one** location, creating a
cycle whose balancing ratio is ``1/(L+1)`` for a chain of ``L`` arcs.
As long as that ratio stays at or above the critical ratio, the
optimal rate is untouched while storage shrinks — exactly the
Figure 4 rewrite, where loop L2's cycles ``ABA`` and ``BDB`` (ratio
1/2, two locations) merge into ``ABDA`` (ratio 1/3 = critical, one
location), saving 1/6 of the loop's storage.

The optimiser below is a greedy maximum-length path cover over the
forward data arcs with the chain length capped by the critical ratio;
:func:`apply_allocation` rebuilds the Petri net with the merged
acknowledgements, and :func:`verify_allocation` re-runs the cycle-time
analysis to *prove* the rate is preserved (and the net still live and
safe) rather than trusting the construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..dataflow.graph import ArcKind, DataArc
from ..errors import AnalysisError
from ..petrinet.analysis import critical_cycle_report, cycle_time_by_enumeration
from ..petrinet.marked_graph import MarkedGraphView
from ..petrinet.marking import Marking
from ..petrinet.net import PetriNet
from .sdsp_pn import ACK_PREFIX, DATA_PREFIX, SdspPetriNet

__all__ = [
    "AckChain",
    "StorageAllocation",
    "balancing_ratios",
    "optimize_storage",
    "apply_allocation",
    "verify_allocation",
    "BufferBalance",
    "balance_buffers",
]


@dataclass(frozen=True)
class AckChain:
    """One storage location covering a chain of consecutive forward
    data arcs; the acknowledgement arc runs from the chain's last
    consumer back to its first producer."""

    arcs: Tuple[DataArc, ...]

    @property
    def head(self) -> str:
        return self.arcs[0].source

    @property
    def tail(self) -> str:
        return self.arcs[-1].target

    @property
    def length(self) -> int:
        return len(self.arcs)

    @property
    def cycle_nodes(self) -> int:
        """Transitions on the induced cycle (chain nodes + none extra:
        the ack arc closes the path)."""
        return self.length + 1


@dataclass
class StorageAllocation:
    """A complete acknowledgement structure for an SDSP-PN.

    ``chains`` cover the forward data arcs; ``feedback_arcs`` keep one
    location each (their data place holds the loop-carried value, so
    the location is not shareable without changing semantics).
    """

    chains: List[AckChain]
    feedback_arcs: List[DataArc]
    baseline_locations: int

    @property
    def locations(self) -> int:
        return len(self.chains) + len(self.feedback_arcs)

    @property
    def saved_locations(self) -> int:
        return self.baseline_locations - self.locations

    @property
    def savings(self) -> Fraction:
        if self.baseline_locations == 0:
            return Fraction(0)
        return Fraction(self.saved_locations, self.baseline_locations)


def balancing_ratios(pn: SdspPetriNet) -> List[Tuple[Tuple[str, ...], Fraction]]:
    """Balancing ratio ``M(C)/|C|`` of every simple cycle of the
    SDSP-PN, keyed by the cycle's transition sequence.  The minimum is
    the loop's optimal computation rate (for unit execution times)."""
    view = pn.view()
    return [
        (cycle.transitions, cycle.balancing_ratio(view.initial))
        for cycle in view.simple_cycles()
    ]


def optimize_storage(
    pn: SdspPetriNet,
    max_chain_length: Optional[int] = None,
) -> StorageAllocation:
    """Greedy chain merge: cover the forward data arcs with directed
    chains no longer than the critical ratio allows.

    The cap comes from the induced cycle's ratio: a chain of ``L`` unit
    instructions' arcs plus its acknowledgement is a cycle of ``L + 1``
    transitions carrying one token, so it must satisfy
    ``(L + 1)/1 <= alpha`` where ``alpha`` is the cycle time — i.e.
    ``L <= alpha − 1``.  For a DOALL loop (``alpha = 2``) no merging is
    possible; L2's ``alpha = 3`` permits chains of two arcs.

    The greedy walks the forward arcs in topological order of their
    producers, extending the longest-growable chain first.  (Minimum
    path cover with a length cap is solvable greedily on the chains a
    DAG induces per node because each arc has a unique producer port;
    ties are broken deterministically.)
    """
    alpha = cycle_time_by_enumeration(pn.view(), pn.durations)
    if max_chain_length is None:
        # L <= alpha - 1, integral.
        cap = int(alpha) - 1 if alpha.denominator == 1 else int(alpha - 1)
        max_chain_length = max(1, cap)
    if max_chain_length < 1:
        raise AnalysisError("chain length cap must be at least 1")

    graph = pn.sdsp.graph
    kept = set(pn.net.transition_names)
    forward = [
        arc
        for arc in graph.forward_arcs()
        if arc.source in kept and arc.target in kept
    ]
    feedback = [
        arc
        for arc in graph.feedback_arcs()
        if arc.source in kept and arc.target in kept
    ]

    order = {name: i for i, name in enumerate(graph.forward_topological_order())}
    remaining = sorted(
        forward, key=lambda a: (order[a.source], order[a.target], a.identifier)
    )
    # chains keyed by their current tail node; each arc used once.
    open_chains: Dict[str, List[List[DataArc]]] = {}
    chains: List[List[DataArc]] = []
    for arc in remaining:
        extendable = open_chains.get(arc.source, [])
        chosen: Optional[List[DataArc]] = None
        for chain in extendable:
            if len(chain) < max_chain_length:
                chosen = chain
                break
        if chosen is not None:
            extendable.remove(chosen)
            chosen.append(arc)
        else:
            chosen = [arc]
            chains.append(chosen)
        open_chains.setdefault(arc.target, []).append(chosen)

    allocation = StorageAllocation(
        chains=[AckChain(tuple(chain)) for chain in chains],
        feedback_arcs=feedback,
        baseline_locations=len(forward) + len(feedback),
    )
    return _repair_allocation(pn, allocation, alpha)


def _repair_allocation(
    pn: SdspPetriNet,
    allocation: StorageAllocation,
    alpha: Fraction,
) -> StorageAllocation:
    """Verify-and-repair: the per-chain cap bounds each merged cycle's
    own ratio, but a merged acknowledgement can also *compose* with
    other cycles (notably feedback acknowledgements, which carry no
    token) into a cycle slower than the critical one.  Re-check the
    cycle time of the rebuilt net and conservatively split the longest
    merged chains back into singles until the optimal rate is restored.
    The loop terminates because the all-singles allocation is the
    baseline net itself.
    """
    chains = list(allocation.chains)
    while True:
        candidate = StorageAllocation(
            chains=chains,
            feedback_arcs=allocation.feedback_arcs,
            baseline_locations=allocation.baseline_locations,
        )
        net, marking = apply_allocation(pn, candidate)
        view = MarkedGraphView(net, marking)
        if (
            view.is_live()
            and cycle_time_by_enumeration(view, pn.durations) == alpha
        ):
            return candidate
        longest = max(chains, key=lambda c: c.length)
        if longest.length == 1:  # pragma: no cover - baseline always passes
            raise AnalysisError(
                "storage repair reached the baseline allocation without "
                "restoring the cycle time; the baseline net is inconsistent"
            )
        chains.remove(longest)
        chains.extend(AckChain((arc,)) for arc in longest.arcs)


def apply_allocation(
    pn: SdspPetriNet, allocation: StorageAllocation
) -> Tuple[PetriNet, Marking]:
    """Rebuild the SDSP-PN with the allocation's acknowledgement
    structure: data places unchanged, one ack place per chain (token 1:
    the merged buffer starts free) and one per feedback arc (token 0:
    the buffer holds the initial value)."""
    net = PetriNet(f"{pn.net.name}-minstorage")
    tokens: Dict[str, int] = {}
    for transition in pn.net.transitions:
        net.add_transition(transition.name, transition.annotation)

    graph = pn.sdsp.graph
    kept = set(pn.net.transition_names)
    for arc in graph.arcs:
        if arc.source not in kept or arc.target not in kept:
            continue
        place = f"{DATA_PREFIX}[{arc.identifier}]"
        net.add_place(place, annotation="data")
        net.add_arc(arc.source, place)
        net.add_arc(place, arc.target)
        if arc.initial_tokens:
            tokens[place] = arc.initial_tokens

    for chain in allocation.chains:
        place = f"{ACK_PREFIX}[{chain.arcs[0].identifier}..{chain.length}]"
        net.add_place(place, annotation="ack")
        net.add_arc(chain.tail, place)
        net.add_arc(place, chain.head)
        tokens[place] = 1

    for arc in allocation.feedback_arcs:
        if arc.source == arc.target:
            continue  # self-arcs carry no ack (see repro.core.sdsp)
        place = f"{ACK_PREFIX}[{arc.identifier}]"
        net.add_place(place, annotation="ack")
        net.add_arc(arc.target, place)
        net.add_arc(place, arc.source)
        # token 0: the feedback buffer starts full.

    return net, Marking(tokens, net)


def verify_allocation(
    pn: SdspPetriNet, allocation: StorageAllocation
) -> Fraction:
    """Prove the allocation preserves the optimal computation rate:
    rebuild the net, check liveness and safety (Theorems A.5.1/A.5.2)
    and re-compute the cycle time, which must equal the original.
    Returns the (unchanged) cycle time."""
    original = cycle_time_by_enumeration(pn.view(), pn.durations)
    net, marking = apply_allocation(pn, allocation)
    view = MarkedGraphView(net, marking)
    if not view.is_live():
        raise AnalysisError(
            "optimised allocation deadlocks: token-free cycle through "
            + ", ".join(
                " -> ".join(c.transitions) for c in view.token_free_cycles()
            )
        )
    if not view.is_safe():
        raise AnalysisError(
            "optimised allocation is unsafe on places: "
            + ", ".join(view.unsafe_places())
        )
    optimised = cycle_time_by_enumeration(view, pn.durations)
    if optimised != original:
        raise AnalysisError(
            f"optimised allocation changed the cycle time: {original} -> "
            f"{optimised}"
        )
    return optimised


# ---------------------------------------------------------------------------
# Buffer balancing (the complementary storage question)
# ---------------------------------------------------------------------------


@dataclass
class BufferBalance:
    """Per-arc buffer capacities sustaining ``target_period``.

    ``capacities`` maps each data-arc identifier to its pair's total
    token count (data + acknowledgement); ``total`` is the storage sum.
    Compare against the uniform allocation ``capacity × arcs`` of
    :func:`repro.core.sdsp_pn.build_sdsp_pn`.
    """

    target_period: Fraction
    capacities: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.capacities.values())


def balance_buffers(
    pn: SdspPetriNet,
    target_rate: Optional[Fraction] = None,
) -> BufferBalance:
    """Minimal per-arc buffering for a target computation rate.

    Section 6 fixes the acknowledgement *topology* and asks how many
    physical locations it needs; this solves the complementary question
    the FIFO-queued extension (Section 7) raises: with per-arc queues,
    how deep must each queue be to sustain a given rate?  This is the
    classical buffer-balancing LP (Gao's dataflow software pipelining
    work): a period ``P`` is sustainable with pair capacities ``b_e``
    iff offsets ``s`` exist with, for each data arc ``e : u → v``
    carrying ``d_e`` initial (loop-carried) tokens::

        s(v) − s(u)  >=  τ(u) − P·d_e             (data place)
        s(u) − s(v)  >=  τ(v) − P·(b_e − d_e)     (ack place)

    Minimising ``Σ b_e`` subject to these (with HiGHS) and rounding up
    gives an integral allocation — rounding only *adds* tokens, which
    can only shorten cycle times, so feasibility is preserved; the
    result is re-verified by cycle-time analysis anyway.

    ``target_rate`` defaults to the net's self-loop floor rate
    ``1/max τ`` for acyclic (DOALL) loops and the recurrence-limited
    rate otherwise — i.e. "as fast as this loop can possibly go".
    Self-arcs (accumulators) are capacity-1 by non-reentrance and
    excluded from the optimisation.
    """
    from scipy.optimize import linprog
    import numpy as np

    kept = set(pn.net.transition_names)
    arcs = [
        arc
        for arc in pn.sdsp.all_data_arcs
        if arc.source in kept and arc.target in kept and arc.source != arc.target
    ]
    self_arcs = [
        arc
        for arc in pn.sdsp.all_data_arcs
        if arc.source in kept and arc.target == arc.source
    ]
    transitions = list(pn.net.transition_names)
    index = {t: i for i, t in enumerate(transitions)}
    n = len(transitions)
    m = len(arcs)

    if target_rate is None:
        # Fastest sustainable rate: the recurrence cycles carry the
        # loop's own values (fixed tokens), and non-reentrance floors
        # the period at the slowest operation; buffering can fix
        # everything else.  The recurrence bound comes from the
        # data-arcs-only dependence graph (unbounded acknowledgements).
        from ..baselines.depgraph import DependenceGraph

        floor_period = Fraction(max(pn.durations.values()))
        rec_mii = DependenceGraph.from_sdsp_pn(pn).recurrence_mii()
        period = max(floor_period, rec_mii)
        target_rate = 1 / period
    target_period = 1 / target_rate

    alpha = float(target_period)
    # Variables: s_0..s_{n-1}, b_0..b_{m-1}
    rows = []
    rhs = []
    for arc in arcs:
        # -s_v + s_u <= -tau_u + alpha * d_e   (data place)
        row = np.zeros(n + m)
        row[index[arc.source]] = 1.0
        row[index[arc.target]] = -1.0
        rows.append(row)
        rhs.append(-pn.durations[arc.source] + alpha * arc.initial_tokens)
    for j, arc in enumerate(arcs):
        # s_v - s_u - alpha*(b_e - d_e) <= -tau_v   (ack place)
        row = np.zeros(n + m)
        row[index[arc.target]] = 1.0
        row[index[arc.source]] = -1.0
        row[n + j] = -alpha
        rows.append(row)
        rhs.append(-pn.durations[arc.target] - alpha * arc.initial_tokens)

    cost = np.concatenate([np.zeros(n), np.ones(m)])
    bounds = [(None, None)] * n + [
        (max(1, arc.initial_tokens), None) for arc in arcs
    ]
    bounds[0] = (0, 0)  # pin one offset

    result = linprog(
        c=cost,
        A_ub=np.array(rows) if rows else None,
        b_ub=np.array(rhs) if rows else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise AnalysisError(
            f"buffer-balancing LP infeasible for period {target_period}: "
            f"{result.message}"
        )

    import math

    capacities = {
        arc.identifier: max(
            max(1, arc.initial_tokens),
            math.ceil(round(result.x[n + j], 9)),
        )
        for j, arc in enumerate(arcs)
    }
    for arc in self_arcs:
        capacities[arc.identifier] = max(1, arc.initial_tokens)

    balance = BufferBalance(target_period=target_period, capacities=capacities)
    _verify_balance(pn, balance)
    return balance


def _verify_balance(pn: SdspPetriNet, balance: BufferBalance) -> None:
    """Rebuild the net with the balanced capacities and prove the cycle
    time meets the target."""
    net = PetriNet(f"{pn.net.name}-balanced")
    tokens: Dict[str, int] = {}
    for transition in pn.net.transitions:
        net.add_transition(transition.name, transition.annotation)
    kept = set(pn.net.transition_names)
    for arc in pn.sdsp.all_data_arcs:
        if arc.source not in kept or arc.target not in kept:
            continue
        data_place = f"{DATA_PREFIX}[{arc.identifier}]"
        net.add_place(data_place, annotation="data")
        net.add_arc(arc.source, data_place)
        net.add_arc(data_place, arc.target)
        if arc.initial_tokens:
            tokens[data_place] = arc.initial_tokens
        if arc.source == arc.target:
            continue  # self-arcs carry no ack
        ack_place = f"{ACK_PREFIX}[{arc.identifier}]"
        net.add_place(ack_place, annotation="ack")
        net.add_arc(arc.target, ack_place)
        net.add_arc(ack_place, arc.source)
        spare = balance.capacities[arc.identifier] - arc.initial_tokens
        if spare:
            tokens[ack_place] = spare
    view = MarkedGraphView(net, Marking(tokens, net))
    if not view.is_live():
        raise AnalysisError("balanced allocation deadlocks")
    achieved = cycle_time_by_enumeration(view, pn.durations)
    if achieved > balance.target_period:
        raise AnalysisError(
            f"balanced allocation reaches cycle time {achieved}, above the "
            f"target {balance.target_period}"
        )
