"""The paper's core contribution: SDSP formalism, SDSP-PN and
SDSP-SCP-PN construction, cyclic-frustum post-processing, schedule
derivation, rate/bound analysis, schedule verification, storage
optimisation, bottleneck attribution and causal blame
(:mod:`repro.core.blame` — the engine behind ``repro explain``)."""

from .attribution import (
    AttributionReport,
    TransitionAttribution,
    attribute_bottlenecks,
    place_occupancy,
)
from .blame import (
    BLAME_SCHEMA_VERSION,
    ExplainReport,
    ObservedCycle,
    blame_summary,
    classifier_for,
    explain_compiled,
    observed_critical_path,
    windowed_cycle_times,
    write_flow_trace,
)
from .sdsp import AckArc, Sdsp
from .sdsp_pn import SdspPetriNet, build_sdsp_pn
from .scp import RUN_PLACE, SdspScpNet, build_sdsp_scp_pn
from .frustum import SteadyStateNet, steady_state_equivalent_net
from .schedule import PipelinedSchedule, ScheduledOp, derive_schedule
from .rate import (
    dependence_bound_rate,
    dependence_cycle_time,
    critical_cycles,
    frustum_rate,
    optimal_rate,
    pipeline_utilization,
    scp_rate_upper_bound,
)
from .bounds import (
    DetectionMeasurement,
    TheoreticalBounds,
    measure_detection,
    observed_bound_scp,
    observed_bound_sdsp,
    theoretical_bounds,
)
from .verify import (
    VerificationReport,
    execute_schedule,
    verify_dependences,
    verify_rate,
    verify_resource,
    verify_schedule,
)
from .storage import (
    AckChain,
    BufferBalance,
    StorageAllocation,
    apply_allocation,
    balance_buffers,
    balancing_ratios,
    optimize_storage,
    verify_allocation,
)

__all__ = [
    "AttributionReport",
    "TransitionAttribution",
    "attribute_bottlenecks",
    "place_occupancy",
    "AckArc",
    "Sdsp",
    "SdspPetriNet",
    "build_sdsp_pn",
    "RUN_PLACE",
    "SdspScpNet",
    "build_sdsp_scp_pn",
    "SteadyStateNet",
    "steady_state_equivalent_net",
    "PipelinedSchedule",
    "ScheduledOp",
    "derive_schedule",
    "critical_cycles",
    "dependence_bound_rate",
    "dependence_cycle_time",
    "frustum_rate",
    "optimal_rate",
    "pipeline_utilization",
    "scp_rate_upper_bound",
    "DetectionMeasurement",
    "TheoreticalBounds",
    "measure_detection",
    "observed_bound_scp",
    "observed_bound_sdsp",
    "theoretical_bounds",
    "VerificationReport",
    "execute_schedule",
    "verify_dependences",
    "verify_rate",
    "verify_resource",
    "verify_schedule",
    "AckChain",
    "BufferBalance",
    "StorageAllocation",
    "apply_allocation",
    "balance_buffers",
    "balancing_ratios",
    "optimize_storage",
    "verify_allocation",
    "BLAME_SCHEMA_VERSION",
    "ExplainReport",
    "ObservedCycle",
    "blame_summary",
    "classifier_for",
    "explain_compiled",
    "observed_critical_path",
    "windowed_cycle_times",
    "write_flow_trace",
]
