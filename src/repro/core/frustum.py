"""Cyclic-frustum post-processing: the steady-state equivalent net
(Section 3.3, Figure 1(f)).

Once the behavior graph reaches its frustum it repeats forever, so
instead of extending the graph indefinitely the paper extracts the
frustum and coalesces its initial and terminal instantaneous states
into a strongly-connected Petri net — the **steady-state equivalent
net** — whose repeated execution *is* the steady state.

Construction (for marked graphs, i.e. the SDSP-PN): each transition
``t`` that fires ``c`` times per frustum becomes ``c`` instance
transitions ``t#0 .. t#c−1`` (in firing order).  Every place ``p`` of
the original net (producer ``u``, consumer ``v``, ``r`` tokens in the
repeated instantaneous state's marking) becomes ``c`` instance places:
consumption ``j`` of ``v`` is fed, FIFO, by production ``j − r`` of
``u`` — wrapping around the frustum boundary with one initial token per
boundary crossed.  Summed over a cycle this reproduces the original
token counts, and the net is live, safe and strongly connected; the
test suite checks all three, plus the defining property that executing
the equivalent net under the earliest firing rule reproduces the
frustum's firing pattern with the same period.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import AnalysisError, NotAMarkedGraphError
from ..obs.metrics import timed
from ..petrinet.behavior import CyclicFrustum
from ..petrinet.marked_graph import require_marked_graph
from ..petrinet.marking import Marking
from ..petrinet.net import PetriNet
from ..petrinet.timed import TimedPetriNet

__all__ = ["SteadyStateNet", "steady_state_equivalent_net"]


@dataclass
class SteadyStateNet:
    """The coalesced repetitive pattern.

    ``instance_of`` maps ``(transition, j)`` to the instance transition
    name; ``base_of`` inverts it.  ``relative_times`` records when each
    instance fires within the frustum — the steady-state schedule that
    :mod:`repro.core.schedule` turns into Figure 1(g).
    """

    net: PetriNet
    initial: Marking
    durations: Dict[str, int]
    period: int
    instance_of: Dict[Tuple[str, int], str]
    base_of: Dict[str, Tuple[str, int]]
    relative_times: Dict[str, int]

    @property
    def timed(self) -> TimedPetriNet:
        return TimedPetriNet(self.net, self.durations)

    def firings_per_period(self, base_transition: str) -> int:
        return sum(
            1 for (name, _j) in self.base_of.values() if name == base_transition
        )


@timed("core.steady_state_equivalent_net")
def steady_state_equivalent_net(
    net: PetriNet,
    durations: Mapping[str, int],
    frustum: CyclicFrustum,
) -> SteadyStateNet:
    """Build the steady-state equivalent net of a marked graph's
    frustum.

    Raises :class:`NotAMarkedGraphError` for nets with structural
    conflict (the SDSP-SCP-PN) — there the steady state is captured by
    the schedule alone, as in the paper's Figure 3(c) discussion — and
    :class:`AnalysisError` if the frustum does not fire every
    transition (impossible for a live marked graph's frustum).
    """
    require_marked_graph(net)
    if not frustum.state.is_quiescent:
        # In-flight firings hold tokens that are on no place, which the
        # marking-based wrap-around counting below cannot see.  With the
        # paper's unit execution times every snapshot is quiescent, so
        # this only triggers for multi-cycle operations.
        raise AnalysisError(
            "the repeated instantaneous state has in-flight firings; the "
            "steady-state equivalent net construction requires a quiescent "
            "repeated state"
        )
    counts = frustum.firing_counts
    for transition in net.transition_names:
        if counts.get(transition, 0) == 0:
            raise AnalysisError(
                f"transition {transition!r} does not fire inside the frustum; "
                "the net cannot be live"
            )

    # Firing order (and relative times) of each transition's instances.
    firing_times: Dict[str, List[int]] = {t: [] for t in net.transition_names}
    for time, fired in frustum.schedule_steps:
        for transition in fired:
            firing_times[transition].append(time - frustum.start_time)

    result = PetriNet(f"{net.name}-steady")
    instance_of: Dict[Tuple[str, int], str] = {}
    base_of: Dict[str, Tuple[str, int]] = {}
    relative_times: Dict[str, int] = {}
    new_durations: Dict[str, int] = {}

    for transition in net.transition_names:
        for j, when in enumerate(firing_times[transition]):
            name = f"{transition}#{j}"
            result.add_transition(
                name, annotation=net.transition(transition).annotation
            )
            instance_of[(transition, j)] = name
            base_of[name] = (transition, j)
            relative_times[name] = when
            new_durations[name] = int(durations[transition])

    tokens: Dict[str, int] = {}
    state_marking = frustum.state.marking
    for place_obj in net.places:
        place = place_obj.name
        (producer,) = net.input_transitions(place)
        (consumer,) = net.output_transitions(place)
        produced = counts[producer]
        consumed = counts[consumer]
        if produced != consumed:
            raise AnalysisError(
                f"place {place!r}: producer fires {produced} times per "
                f"frustum but consumer fires {consumed}; the frustum is not "
                "a cyclic firing sequence"
            )
        boundary_tokens = state_marking[place]
        for j in range(consumed):
            # FIFO matching: consumption j eats production j - r, with
            # one initial token per frustum boundary wrapped across.
            g = j - boundary_tokens
            wraps = 0
            while g < 0:
                g += produced
                wraps += 1
            instance_place = f"{place}#{j}"
            result.add_place(instance_place, annotation=place_obj.annotation)
            result.add_arc(instance_of[(producer, g)], instance_place)
            result.add_arc(instance_place, instance_of[(consumer, j)])
            if wraps:
                tokens[instance_place] = wraps

    return SteadyStateNet(
        net=result,
        initial=Marking(tokens, result),
        durations=new_durations,
        period=frustum.length,
        instance_of=instance_of,
        base_of=base_of,
        relative_times=relative_times,
    )
