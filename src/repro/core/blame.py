"""Causal blame: observed critical paths and wait-state attribution.

The structural side of the paper pins the achieved rate to a critical
cycle ``C*`` with cycle time ``α = max Ω(C)/M(C)``; the behavioral
side (the cyclic frustum) achieves exactly ``1/α``.  This module closes
the loop *empirically*: it rebuilds the enabling DAG of a real
simulation run (:mod:`repro.obs.causality`), walks last-arriving-token
edges backward to extract the **observed critical cycle**, and checks
it against the structural critical cycles from
:mod:`repro.petrinet.analysis` and the Howard witness from
:mod:`repro.petrinet.howard` — a powerful cross-check of both engines,
the provenance plumbing and the analysis layer at once.

Entry point: :func:`explain_compiled` takes a
:class:`~repro.pipeline.CompiledLoop` (optionally its SCP variant),
re-runs frustum detection with provenance instrumentation attached,
continues the simulation a few extra steady-state periods, and returns
an :class:`ExplainReport` with

* the observed critical cycle and its per-iteration length (which must
  converge to ``α`` — Theorem 4.x: past the transient every firing on
  the critical chain is separated by exactly one traversal of ``C*``);
* the per-transition wait-state decomposition (data / feedback / ack /
  resource / executing / idle, summing exactly to the simulated
  horizon);
* the blame chain answering "why is this loop running at ``1/α``?" as
  a human-readable causal walk.

``repro explain`` renders the report as text, JSON, an OpenMetrics
exposition of the wait-state cycles, or a Chrome trace with flow
events (:func:`write_flow_trace`); :func:`blame_summary` is the
schema-versioned dict the run ledger stores under ``timing.blame``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..obs.causality import (
    EDGE_ACK,
    EDGE_DATA,
    EDGE_FEEDBACK,
    EDGE_RESOURCE,
    EDGE_SELF,
    WAIT_KINDS,
    EnablingDag,
    EnablingEdge,
    Firing,
    WaitProfile,
    build_enabling_dag,
    wait_profiles,
)
from ..petrinet.marking import Marking
from ..petrinet.net import PetriNet

__all__ = [
    "BLAME_SCHEMA_VERSION",
    "ObservedCycle",
    "ExplainReport",
    "classifier_for",
    "observed_critical_path",
    "windowed_cycle_times",
    "explain_compiled",
    "blame_summary",
    "write_flow_trace",
    "wait_metrics_dump",
]

#: Version of the ``timing.blame`` ledger summary and the ``--json``
#: report shape.  Bump on any structural change; the dashboard renders
#: a placeholder card for records carrying any other version.
BLAME_SCHEMA_VERSION = 1


def classifier_for(net: PetriNet, initial: Marking):
    """Edge-kind classifier built from the net itself (preferred over
    the name heuristic): ``run``-annotated places are resource tokens,
    ``ack``-annotated places acknowledgements, and data places are
    *feedback* when the initial marking seeds them (loop-carried
    pre-state travels on initially marked data places) and forward
    data otherwise."""
    kinds: Dict[str, str] = {}
    for place in net.places:
        if place.annotation == "run":
            kinds[place.name] = EDGE_RESOURCE
        elif place.annotation == "ack":
            kinds[place.name] = EDGE_ACK
        elif initial[place.name] > 0:
            kinds[place.name] = EDGE_FEEDBACK
        else:
            kinds[place.name] = EDGE_DATA
    return lambda place: kinds.get(place, EDGE_DATA)


@dataclass(frozen=True)
class ObservedCycle:
    """The repeating segment of a backward blame walk, in forward time
    order and canonically rotated (lexicographically smallest
    transition first, like
    :meth:`~repro.petrinet.marked_graph.MarkedGraphView.simple_cycles`).

    ``span`` is the time one traversal takes; ``iterations`` how many
    firings of the anchor transition it advances; ``cycle_time`` their
    ratio — the observed per-iteration critical-path length, which in
    steady state equals the structural ``α`` exactly.
    """

    transitions: Tuple[str, ...]
    places: Tuple[Optional[str], ...]
    kinds: Tuple[str, ...]
    span: int
    iterations: int

    @property
    def cycle_time(self) -> Fraction:
        return Fraction(self.span, self.iterations)

    @property
    def is_self_loop(self) -> bool:
        return len(self.transitions) == 1 and self.places[0] is None

    def describe(self) -> str:
        if self.is_self_loop:
            return (
                f"{self.transitions[0]} (self-loop, tau = {self.span})"
            )
        return " -> ".join(self.transitions)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "transitions": list(self.transitions),
            "places": list(self.places),
            "kinds": list(self.kinds),
            "span": self.span,
            "iterations": self.iterations,
            "cycle_time": str(self.cycle_time),
        }


def _rotate(
    transitions: Sequence[str], places: Sequence, kinds: Sequence
) -> Tuple[Tuple[str, ...], Tuple, Tuple]:
    start = min(range(len(transitions)), key=transitions.__getitem__)
    rot = lambda seq: tuple(seq[start:]) + tuple(seq[:start])
    return rot(transitions), rot(places), rot(kinds)


def observed_critical_path(
    dag: EnablingDag,
    start: Optional[Firing] = None,
    limit: int = 4096,
) -> Tuple[Optional[ObservedCycle], List[EnablingEdge]]:
    """Walk binding edges backward from ``start`` (default: the run's
    last firing) until a transition repeats; the segment between its
    two occurrences is the observed critical cycle.

    Returns ``(cycle, chain)`` where ``chain`` is the full backward
    walk.  ``cycle`` is ``None`` when the walk drains into the
    transient (an initial-marking token or time 0) before any
    transition repeats — run a few extra steady-state periods to avoid
    that.
    """
    if start is None:
        start = dag.last_firing()
    if start is None:
        return None, []
    chain_nodes: List[Firing] = [start]
    chain_edges: List[EnablingEdge] = []
    position = {start.transition: 0}
    node = start
    while len(chain_nodes) <= limit:
        edge = dag.binding_edge(node)
        if edge is None or edge.source is None:
            return None, chain_edges  # reached the transient
        chain_edges.append(edge)
        node = edge.source
        first = position.get(node.transition)
        if first is not None:
            anchor = chain_nodes[first]
            cycle_edges = chain_edges[first:]
            # Forward time order: node fired first, anchor last.
            forward_nodes = [node] + list(reversed(chain_nodes[first + 1 :]))
            forward_edges = list(reversed(cycle_edges))
            transitions = tuple(f.transition for f in forward_nodes)
            places = tuple(e.place for e in forward_edges)
            kinds = tuple(e.kind for e in forward_edges)
            transitions, places, kinds = _rotate(transitions, places, kinds)
            iterations = anchor.index - node.index
            return (
                ObservedCycle(
                    transitions=transitions,
                    places=places,
                    kinds=kinds,
                    span=anchor.start - node.start,
                    iterations=max(iterations, 1),
                ),
                chain_edges,
            )
        position[node.transition] = len(chain_nodes)
        chain_nodes.append(node)
    return None, chain_edges


def windowed_cycle_times(
    dag: EnablingDag, transition: str, window: int
) -> List[Fraction]:
    """Per-iteration path lengths over sliding windows of ``window``
    firings of ``transition``: entry ``i`` is the mean start-to-start
    spacing over firings ``i .. i+window``.  Early (transient) entries
    may differ; past the transient every entry equals ``α``."""
    nodes = dag.by_transition.get(transition, [])
    if window < 1 or len(nodes) <= window:
        return []
    return [
        Fraction(nodes[i + window].start - nodes[i].start, window)
        for i in range(len(nodes) - window)
    ]


@dataclass
class ExplainReport:
    """Everything ``repro explain`` reports for one run."""

    loop: str
    engine: str
    model: str
    alpha: Fraction
    rate: Fraction
    frustum_start: int
    frustum_repeat: int
    period: int
    horizon: int
    critical_cycles: Tuple[Tuple[str, ...], ...]
    critical_self_loops: Tuple[str, ...]
    howard_cycle: Optional[Tuple[str, ...]]
    howard_self_loop: Optional[str]
    observed: Optional[ObservedCycle]
    observed_match: bool
    matches_howard: bool
    wait: Dict[str, WaitProfile]
    chain: List[EnablingEdge]
    dag: EnablingDag = field(repr=False)
    scp_bound: Optional[Fraction] = None

    @property
    def observed_rate(self) -> Optional[Fraction]:
        if self.observed is None:
            return None
        return 1 / self.observed.cycle_time

    def convergence(self, window: Optional[int] = None) -> List[Fraction]:
        """Windowed per-iteration path lengths of the observed cycle's
        anchor transition (window defaults to its firings per period)."""
        if self.observed is None:
            return []
        anchor = self.observed.transitions[0]
        if window is None:
            window = max(self.observed.iterations, 1)
        return windowed_cycle_times(self.dag, anchor, window)

    # -- serialisation -------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready report (``repro explain --json``).  Everything
        here is a deterministic function of the compiled loop."""
        return {
            "schema_version": BLAME_SCHEMA_VERSION,
            "loop": self.loop,
            "engine": self.engine,
            "model": self.model,
            "alpha": str(self.alpha),
            "rate": str(self.rate),
            "scp_rate_upper_bound": (
                str(self.scp_bound) if self.scp_bound is not None else None
            ),
            "frustum": {
                "start_time": self.frustum_start,
                "repeat_time": self.frustum_repeat,
                "period": self.period,
            },
            "horizon": self.horizon,
            "structural": {
                "critical_cycles": [list(c) for c in self.critical_cycles],
                "critical_self_loops": list(self.critical_self_loops),
                "howard_cycle": (
                    list(self.howard_cycle)
                    if self.howard_cycle is not None
                    else None
                ),
                "howard_self_loop": self.howard_self_loop,
            },
            "observed": (
                self.observed.to_payload()
                if self.observed is not None
                else None
            ),
            "observed_match": self.observed_match,
            "matches_howard": self.matches_howard,
            "wait_states": {
                name: profile.to_payload()
                for name, profile in sorted(self.wait.items())
            },
            "blame_chain": [edge.describe() for edge in self.chain],
        }

    def render_text(self) -> str:
        """The human-readable report."""
        lines = [
            f"explain {self.loop!r} ({self.model}, {self.engine} engine)",
            f"  structural cycle time alpha = {self.alpha} "
            f"(optimal rate {self.rate})",
        ]
        if self.scp_bound is not None:
            lines.append(
                f"  SCP resource bound (Theorem 5.2.2): rate <= "
                f"{self.scp_bound}"
            )
        if self.howard_cycle is not None:
            lines.append(
                "  Howard witness C*      : " + " -> ".join(self.howard_cycle)
            )
        elif self.howard_self_loop is not None:
            lines.append(
                f"  Howard witness C*      : self-loop of "
                f"{self.howard_self_loop}"
            )
        if self.observed is not None:
            lines.append(
                "  observed critical path : "
                + self.observed.describe()
                + f" (per-iteration length {self.observed.cycle_time})"
            )
            if self.observed_match:
                verdict = "matches a structural critical cycle"
                if self.matches_howard:
                    verdict = "matches the Howard witness C*"
                lines.append(f"  verdict                : {verdict} ✓")
            else:
                lines.append(
                    "  verdict                : no structural match "
                    "(resource-shaped or transient path)"
                )
        else:
            lines.append(
                "  observed critical path : walk drained into the "
                "transient (simulate more periods)"
            )
        lines.append(
            f"  frustum [{self.frustum_start}, {self.frustum_repeat}) "
            f"period {self.period}; horizon {self.horizon} cycles"
        )
        lines.append("")
        lines.append(
            "  wait states per transition (cycles over the horizon; "
            "exec+waits+idle = horizon):"
        )
        header = (
            f"  {'transition':<12} {'fired':>5} {'exec':>6} "
            + "".join(f"{kind:>9}" for kind in WAIT_KINDS)
            + f" {'idle':>6}"
        )
        lines.append(header)
        for name in sorted(self.wait):
            profile = self.wait[name]
            lines.append(
                f"  {name:<12} {profile.firings:>5} {profile.executing:>6} "
                + "".join(
                    f"{profile.waits.get(kind, 0):>9}" for kind in WAIT_KINDS
                )
                + f" {profile.idle:>6}"
            )
        percentile_rows = []
        for name in sorted(self.wait):
            for kind, stats in sorted(self.wait[name].percentiles.items()):
                if kind == EDGE_SELF or not stats:
                    continue
                p50, p95 = stats.get("p50"), stats.get("p95")
                if p50 is None or (p50 == 0 and p95 == 0):
                    continue
                percentile_rows.append(
                    f"  {name:<12} {kind:<9} p50={p50:g} p95={p95:g}"
                )
        if percentile_rows:
            lines.append("")
            lines.append("  per-firing wait percentiles (cycles):")
            lines.extend(percentile_rows)
        if self.chain:
            lines.append("")
            last = self.chain[0].target
            lines.append(
                f"  blame chain (last-arriving tokens, backward from "
                f"{last.label}):"
            )
            for edge in self.chain[:12]:
                lines.append("    " + edge.describe())
            if len(self.chain) > 12:
                lines.append(f"    ... {len(self.chain) - 12} more hop(s)")
        return "\n".join(lines)


def _detection_budget(timed_net) -> int:
    """Same generous budget as :func:`repro.petrinet.behavior.detect_frustum`."""
    n = max(1, len(timed_net.net.transition_names))
    total_duration = sum(timed_net.durations.values())
    return max(10_000, 4 * n**4, 16 * total_duration)


def _traced_run(timed_net, initial, policy, engine: str, periods: int):
    """Run frustum detection with provenance instrumentation attached,
    then continue the same simulator ``periods`` extra steady-state
    periods (so blame walks from the end of the run stay clear of the
    transient).  Returns ``(frustum, events)``."""
    from ..obs.events import Instrumentation, ListSink
    from ..petrinet.behavior import FrustumDetector
    from ..petrinet.event_sim import EventFrustumDetector

    sink = ListSink()
    obs = Instrumentation(sinks=[sink])
    if engine == "step":
        detector = FrustumDetector(
            timed_net, initial, policy, instrumentation=obs
        )
    elif engine == "event":
        detector = EventFrustumDetector(
            timed_net, initial, policy, instrumentation=obs
        )
    else:
        raise SimulationError(f"unknown engine {engine!r}")
    frustum = detector.detect(_detection_budget(timed_net))
    simulator = detector.simulator
    target = frustum.repeat_time + max(periods, 0) * max(frustum.length, 1)
    if engine == "step":
        while simulator.time <= target and not simulator.is_deadlocked():
            simulator.step()
    else:
        while True:
            next_time = simulator.next_event_time()
            if next_time is None or next_time > target:
                break
            simulator.advance()
    return frustum, sink.events


def explain_compiled(result, periods: int = 3) -> ExplainReport:
    """Build the full causal report for a compiled loop.

    When the compilation carries an SCP model (``pipeline_stages``),
    the SCP net is the one explained — its run-place tokens surface as
    resource waits — while the structural ``α`` still comes from the
    underlying SDSP-PN (the resource bound is reported separately).
    """
    from ..petrinet.howard import howard_analysis
    from .rate import critical_cycles, scp_rate_upper_bound

    if result.scp is not None:
        from ..machine.policies import FifoRunPlacePolicy

        scp = result.scp
        timed_net, initial = scp.timed, scp.initial
        policy = FifoRunPlacePolicy(
            scp.net, scp.run_place, scp.priority_order()
        )
        model = f"SDSP-SCP-PN (l={scp.stages})"
        scp_bound: Optional[Fraction] = scp_rate_upper_bound(scp)
        classify = classifier_for(scp.net, scp.initial)
    else:
        timed_net, initial = result.pn.timed, result.pn.initial
        policy = None
        model = "SDSP-PN"
        scp_bound = None
        classify = classifier_for(result.pn.net, result.pn.initial)

    run_frustum, events = _traced_run(
        timed_net, initial, policy, result.engine, periods
    )
    dag = build_enabling_dag(events, classify)
    observed, chain = observed_critical_path(dag)
    wait = wait_profiles(dag, transitions=timed_net.net.transition_names)

    report = critical_cycles(result.pn)
    howard = howard_analysis(result.pn.view(), result.pn.durations)
    structural = tuple(c.transitions for c in report.critical_cycles)
    self_loops = tuple(report.critical_self_loops)
    observed_match = False
    matches_howard = False
    if observed is not None:
        if observed.is_self_loop:
            observed_match = observed.transitions[0] in self_loops
            matches_howard = (
                howard.critical_self_loop == observed.transitions[0]
            )
        else:
            observed_match = observed.transitions in structural
            matches_howard = (
                howard.critical_cycle is not None
                and howard.critical_cycle.transitions == observed.transitions
            )
    return ExplainReport(
        loop=result.translation.loop.name,
        engine=result.engine,
        model=model,
        alpha=1 / result.optimal_rate,
        rate=result.optimal_rate,
        frustum_start=run_frustum.start_time,
        frustum_repeat=run_frustum.repeat_time,
        period=run_frustum.length,
        horizon=dag.horizon,
        critical_cycles=structural,
        critical_self_loops=self_loops,
        howard_cycle=(
            howard.critical_cycle.transitions
            if howard.critical_cycle is not None
            else None
        ),
        howard_self_loop=howard.critical_self_loop,
        observed=observed,
        observed_match=observed_match,
        matches_howard=matches_howard,
        wait=wait,
        chain=chain,
        dag=dag,
        scp_bound=scp_bound,
    )


def blame_summary(report: ExplainReport) -> Dict[str, Any]:
    """The schema-versioned summary the ledger stores under the
    volatile ``timing.blame`` section and the dashboard's causality
    lane renders."""
    return {
        "schema_version": BLAME_SCHEMA_VERSION,
        "model": report.model,
        "alpha": str(report.alpha),
        "horizon": report.horizon,
        "observed_cycle": (
            report.observed.to_payload()
            if report.observed is not None
            else None
        ),
        "observed_match": report.observed_match,
        "matches_howard": report.matches_howard,
        "wait_states": {
            name: profile.to_payload()
            for name, profile in sorted(report.wait.items())
        },
    }


def wait_metrics_dump(report: ExplainReport) -> Dict[str, Any]:
    """A metrics-registry-shaped dump whose labeled counters carry the
    wait-state decomposition — rendered by
    :func:`repro.obs.openmetrics.render_openmetrics` (``repro explain
    --metrics-out``), exercising real label values end to end."""
    samples = []
    for name in sorted(report.wait):
        profile = report.wait[name]
        samples.append(
            {
                "labels": {"transition": name, "kind": "executing"},
                "value": profile.executing,
            }
        )
        samples.append(
            {
                "labels": {"transition": name, "kind": "idle"},
                "value": profile.idle,
            }
        )
        for kind in WAIT_KINDS:
            samples.append(
                {
                    "labels": {"transition": name, "kind": f"wait.{kind}"},
                    "value": profile.waits.get(kind, 0),
                }
            )
    return {
        "counters": {"repro.explain.horizon": report.horizon},
        "labeled_counters": {"repro.explain.wait.cycles": samples},
    }


def write_flow_trace(report: ExplainReport, path):
    """Write the enabling DAG as a Chrome trace: one lane (thread) per
    transition, one complete slice per firing, and one flow arrow per
    token-consumption edge (named by kind, slack in ``args``) — open in
    chrome://tracing or ui.perfetto.dev with flow events enabled.
    Written through :func:`repro.obs.trace_merge.write_trace`, so the
    document is deterministic and ``tools/trace_lint.py``-clean."""
    from ..obs.trace_merge import write_trace

    dag = report.dag
    lanes = sorted(dag.by_transition)
    tids = {name: index + 1 for index, name in enumerate(lanes)}
    meta: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": f"simulation:{report.loop}"},
        }
    ]
    for name in lanes:
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tids[name],
                "args": {"name": name},
            }
        )
    body: List[Dict[str, Any]] = []
    for firing in dag.firings:
        body.append(
            {
                "name": firing.transition,
                "cat": "firing",
                "ph": "X",
                "ts": firing.start,
                "dur": firing.duration,
                "pid": 0,
                "tid": tids[firing.transition],
                "args": {"index": firing.index},
            }
        )
    flow_id = 0
    for firing in dag.firings:
        for edge in dag.in_edges(firing):
            if edge.kind == EDGE_SELF or edge.source is None:
                continue
            flow_id += 1
            args = {
                "place": edge.place,
                "kind": edge.kind,
                "slack": edge.slack,
            }
            body.append(
                {
                    "name": edge.kind,
                    "cat": "flow",
                    "ph": "s",
                    "id": flow_id,
                    "ts": edge.arrival,
                    "pid": 0,
                    "tid": tids[edge.source.transition],
                    "args": args,
                }
            )
            body.append(
                {
                    "name": edge.kind,
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": firing.start,
                    "pid": 0,
                    "tid": tids[firing.transition],
                    "args": args,
                }
            )
    body.sort(key=lambda event: (event["ts"], event["pid"]))
    document = {
        "traceEvents": meta + body,
        "displayTimeUnit": "ms",
        "otherData": {
            "loop": report.loop,
            "model": report.model,
            "alpha": str(report.alpha),
            "flows": flow_id,
        },
    }
    return write_trace(document, path)
