"""The SDSP formalism: ``G = (V, E, E', F, F')`` (Section 3.2).

A *static dataflow software pipeline* packages a validated dataflow
graph together with the derived acknowledgement structure:

* ``V`` — instruction nodes,
* ``E`` — forward data arcs,
* ``E'`` — feedback data arcs (loop-carried dependences of distance 1),
* ``F`` — acknowledgement arcs for ``E`` (reversed, initially holding
  the token that says "the buffer is free"),
* ``F'`` — acknowledgement arcs for ``E'`` (reversed, initially empty —
  the buffer holds the loop's initial value).

The class is a thin, immutable view over a :class:`DataflowGraph`; the
Petri-net translation consumes it (:mod:`repro.core.sdsp_pn`), and the
storage optimiser (:mod:`repro.core.storage`) rewrites its
acknowledgement structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dataflow.graph import ArcKind, DataArc, DataflowGraph
from ..dataflow.validate import require_valid

__all__ = ["AckArc", "Sdsp"]


@dataclass(frozen=True)
class AckArc:
    """An acknowledgement arc paired with a data arc.

    ``initial_tokens`` is complementary to the data arc's: forward data
    arcs start empty so their acknowledgement starts full (1), feedback
    data arcs start full so their acknowledgement starts empty (0).
    Together each data/ack pair forms a two-transition cycle carrying
    exactly one token — one storage location (Section 6).
    """

    source: str
    target: str
    data_arc: DataArc

    @property
    def initial_tokens(self) -> int:
        return 1 - self.data_arc.initial_tokens

    @property
    def identifier(self) -> str:
        return f"ack({self.data_arc.identifier})"


class Sdsp:
    """A validated static dataflow software pipeline."""

    def __init__(self, graph: DataflowGraph) -> None:
        require_valid(graph)
        self._graph = graph

    @property
    def graph(self) -> DataflowGraph:
        return self._graph

    @property
    def name(self) -> str:
        return self._graph.name

    # The five components of the formal tuple ---------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """``V`` — the instruction nodes."""
        return self._graph.actor_names

    @property
    def forward_arcs(self) -> List[DataArc]:
        """``E`` — forward data arcs."""
        return self._graph.forward_arcs()

    @property
    def feedback_arcs(self) -> List[DataArc]:
        """``E'`` — feedback data arcs."""
        return self._graph.feedback_arcs()

    @property
    def forward_acks(self) -> List[AckArc]:
        """``F`` — acknowledgement arcs for ``E``."""
        return [
            AckArc(a.target, a.source, a)
            for a in self._graph.forward_arcs()
            if a.source != a.target
        ]

    @property
    def feedback_acks(self) -> List[AckArc]:
        """``F'`` — acknowledgement arcs for ``E'``.

        Self-arcs (a scalar accumulator feeding itself, e.g. the inner
        product's ``Q``) carry no acknowledgement: the transition's own
        non-reentrance (Assumption A.6.1) already bounds the buffer at
        one token, and a literal reversed ack would form a token-free
        cycle — a deadlock.
        """
        return [
            AckArc(a.target, a.source, a)
            for a in self._graph.feedback_arcs()
            if a.source != a.target
        ]

    @property
    def all_data_arcs(self) -> List[DataArc]:
        return list(self._graph.arcs)

    @property
    def all_acks(self) -> List[AckArc]:
        return self.forward_acks + self.feedback_acks

    # Convenience --------------------------------------------------------
    @property
    def size(self) -> int:
        """``n`` — the number of instructions in the loop body, the
        parameter of every bound in the paper."""
        return len(self._graph)

    @property
    def has_loop_carried_dependence(self) -> bool:
        return self._graph.has_loop_carried_dependence()

    @property
    def storage_locations(self) -> int:
        """Total storage allocated to the loop under the default
        one-location-per-pair policy (Section 6): the number of
        data/acknowledgement arc pairs."""
        return len(self._graph.arcs)

    @property
    def max_concurrent_iterations(self) -> int:
        """The implicit bound ``k`` on concurrently active iterations —
        the number of nodes along the longest dependence path in the
        loop body (Section 7)."""
        return self._graph.critical_path_length()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Sdsp({self.name!r}, n={self.size}, "
            f"lcd={self.has_loop_carried_dependence})"
        )
