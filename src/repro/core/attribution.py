"""Bottleneck attribution: per-transition utilization and slack
relative to the critical cycle (the ``repro dash`` analysis layer).

The paper's headline is that steady-state throughput is governed by the
critical cycle: the initiation period is ``p = Ω(C*)`` and no machine
can beat the rate ``min M(C)/Ω(C)``.  This module turns that theorem
into a per-transition diagnosis, the lens related work (Millo & de
Simone; Gaujal, Haar & Mairesse) uses for throughput analysis:

* **utilization** — the fraction of the steady-state period a
  transition spends firing: ``firings_per_frustum · τ(t) / p``;
* **slack** — how much ``τ(t)`` could grow before the cycle time (and
  hence ``Ω(C*)`` / the optimal rate) changes.  Growing ``τ(t)`` by
  ``δ`` moves every simple cycle ``C ∋ t`` to ratio
  ``(Ω(C)+δ)/M(C)``, and the implicit self-loop of Assumption A.6.1 to
  ``τ(t)+δ``; the cycle time is unchanged exactly while::

      δ  <=  min over C ∋ t  of  α·M(C) − Ω(C)

  (self-loop included with ``M = 1``).  Transitions on a critical
  cycle have slack **zero** — they *are* the bottleneck; every other
  transition's slack says how far it sits from mattering.

Everything is exact rational arithmetic on the same cycle enumeration
:mod:`repro.petrinet.analysis` uses, so the dashboard's numbers are
unit-testable without rendering any HTML.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..obs.metrics import timed
from ..petrinet.analysis import CriticalCycleReport, critical_cycle_report
from ..petrinet.behavior import BehaviorGraph, CyclicFrustum
from .sdsp_pn import SdspPetriNet

__all__ = [
    "TransitionAttribution",
    "AttributionReport",
    "attribute_bottlenecks",
    "place_occupancy",
]


@dataclass(frozen=True)
class TransitionAttribution:
    """One transition's share of, and distance from, the bottleneck."""

    transition: str
    duration: int
    firings: int
    utilization: Fraction
    slack: Fraction
    on_critical_cycle: bool
    binding_cycle: Tuple[str, ...]

    @property
    def is_bottleneck(self) -> bool:
        return self.slack == 0


@dataclass
class AttributionReport:
    """The full per-transition breakdown for one SDSP-PN frustum."""

    cycle_time: Fraction
    period: int
    critical_transitions: frozenset
    transitions: List[TransitionAttribution]

    def bottlenecks(self) -> List[str]:
        """Zero-slack transitions — exactly the ones on ``C*``."""
        return [t.transition for t in self.transitions if t.is_bottleneck]

    def by_name(self, transition: str) -> TransitionAttribution:
        for entry in self.transitions:
            if entry.transition == transition:
                return entry
        raise AnalysisError(f"unknown transition {transition!r}")


@timed("core.attribute_bottlenecks")
def attribute_bottlenecks(
    pn: SdspPetriNet,
    frustum: CyclicFrustum,
    report: Optional[CriticalCycleReport] = None,
) -> AttributionReport:
    """Utilization and slack for every transition of an SDSP-PN.

    ``report`` may be passed to reuse an existing critical-cycle
    analysis; otherwise one is computed on ``pn``'s marked-graph view.
    Rows come back sorted bottlenecks-first (ascending slack, then
    descending utilization, then name) — the order a dashboard wants.
    """
    if report is None:
        report = critical_cycle_report(pn.view(), pn.durations)
    alpha = report.cycle_time
    critical = report.transitions_on_critical_cycles

    # Tightest constraint per transition, starting from the implicit
    # self-loop (M = 1, Ω = τ): slack = α·M(C) − Ω(C) minimised over
    # every cycle through the transition.
    slack: Dict[str, Fraction] = {}
    binding: Dict[str, Tuple[str, ...]] = {}
    for transition in pn.net.transition_names:
        slack[transition] = alpha - Fraction(pn.durations[transition])
        binding[transition] = (transition,)
    for metrics in report.metrics:
        margin = alpha * metrics.tokens - Fraction(metrics.value)
        for transition in metrics.cycle.transitions:
            if margin < slack[transition]:
                slack[transition] = margin
                binding[transition] = metrics.cycle.transitions

    if frustum.length <= 0:
        raise AnalysisError("empty frustum has no utilization")

    rows: List[TransitionAttribution] = []
    for transition in pn.net.transition_names:
        firings = frustum.firing_counts.get(transition, 0)
        rows.append(
            TransitionAttribution(
                transition=transition,
                duration=pn.durations[transition],
                firings=firings,
                utilization=Fraction(
                    firings * pn.durations[transition], frustum.length
                ),
                slack=slack[transition],
                on_critical_cycle=transition in critical,
                binding_cycle=binding[transition],
            )
        )
    rows.sort(key=lambda r: (r.slack, -r.utilization, r.transition))
    return AttributionReport(
        cycle_time=alpha,
        period=frustum.length,
        critical_transitions=critical,
        transitions=rows,
    )


def _post_firing_marking(behavior: BehaviorGraph, step) -> Dict[str, int]:
    """The marking *after* the step's firings consumed their inputs —
    what every quiet tick until the next event observes."""
    from ..petrinet.behavior import TransitionInstance

    marking = {place: step.state.marking[place] for place in step.state.marking}
    for transition in step.fired:
        instance = TransitionInstance(transition, step.time)
        consumed = behavior.consumptions.get(instance)
        if consumed is None:
            raise AnalysisError(
                "occupancy over a sparse (event-driven) behavior graph "
                "needs consumption arcs; re-run detection with "
                "record_arcs=True"
            )
        for place_instance in consumed:
            marking[place_instance.place] -= 1
            if marking[place_instance.place] == 0:
                del marking[place_instance.place]
    return marking


def place_occupancy(
    behavior: BehaviorGraph,
    frustum: CyclicFrustum,
    places: Optional[Sequence[str]] = None,
) -> Dict[str, List[int]]:
    """Token count per place at every time step of the frustum window.

    Returns one series per place, one entry per tick of
    ``[start_time, repeat_time)`` — the data behind the dashboard's
    occupancy sparklines.  ``places`` restricts (and orders) the
    output; by default every place occupied anywhere in the window is
    included, sorted by name.

    Works for both engines: the step engine records every tick, so each
    entry reads straight off a snapshot; the event engine records only
    event ticks, so quiet ticks are forward-filled with the post-firing
    marking of the most recent event (between events nothing fires and
    nothing completes, so the marking is constant — the gap theorem of
    :mod:`repro.petrinet.event_sim`).
    """
    start, stop = frustum.start_time, frustum.repeat_time
    relevant = [step for step in behavior.steps if step.time < stop]
    if not relevant or stop <= start:
        raise AnalysisError(
            "behavior graph has no steps inside the frustum window"
        )
    by_time = {step.time: step for step in relevant}
    last_before = None
    for step in relevant:
        if step.time >= start:
            break
        last_before = step
    fill: Optional[Dict[str, int]] = None  # computed lazily on first gap
    fill_source = last_before
    columns: List[Dict[str, int]] = []
    for tick in range(start, stop):
        step = by_time.get(tick)
        if step is not None:
            columns.append(
                {place: step.state.marking[place] for place in step.state.marking}
            )
            fill, fill_source = None, step
        else:
            if fill is None:
                if fill_source is None:
                    raise AnalysisError(
                        "behavior graph has no steps inside the frustum "
                        "window"
                    )
                fill = _post_firing_marking(behavior, fill_source)
            columns.append(dict(fill))
    if places is None:
        seen = set()
        for column in columns:
            seen.update(column)
        names: Sequence[str] = sorted(seen)
    else:
        names = places
    return {
        place: [column.get(place, 0) for column in columns]
        for place in names
    }
