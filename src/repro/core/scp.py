"""SDSP-SCP-PN: folding a single clean pipeline into the net
(Section 5.2, Figure 3).

The machine model is a *single clean execution pipeline* (SCP) of ``l``
stages: one instruction may be issued per cycle, and once issued it
traverses the pipeline without structural hazards, its result emerging
``l`` cycles later.  The paper integrates this resource constraint into
the SDSP-PN in two steps:

* **Series expansion** — every place of the SDSP-PN is split in two
  with a *dummy transition* of execution time ``l − 1`` between the
  halves, while every SDSP transition's execution time becomes 1 (the
  issue slot).  A value thus becomes available to its consumer ``l``
  cycles after issue, exactly the pipeline latency.  With ``l = 1`` no
  dummy transitions are created.
* **Run-place introduction** — a place ``p_run`` holding one token is
  made an input *and* output of every SDSP transition.  Enabled
  instructions compete for it, so at most one issues per cycle; dummy
  transitions bypass it (they are wiring, not instructions).

The run place is a structural conflict, so the net is no longer a
marked graph and the earliest firing rule needs a deterministic choice
mechanism — Assumption 5.2.1; see
:class:`repro.machine.policies.FifoRunPlacePolicy` for the FIFO +
adjacency-list scheme the paper simulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import NetConstructionError
from ..petrinet.marking import Marking
from ..petrinet.net import PetriNet
from ..petrinet.timed import TimedPetriNet
from .sdsp_pn import SdspPetriNet

__all__ = ["SdspScpNet", "build_sdsp_scp_pn", "RUN_PLACE"]

RUN_PLACE = "p_run"


@dataclass
class SdspScpNet:
    """The unified precedence + resource model.

    ``sdsp_transitions`` are the instruction transitions (execution
    time 1); ``dummy_transitions`` the series-expansion delays
    (execution time ``stages − 1``).  ``base`` links back to the
    unconstrained SDSP-PN the net was derived from.
    """

    base: SdspPetriNet
    net: PetriNet
    initial: Marking
    durations: Dict[str, int]
    stages: int
    sdsp_transitions: Tuple[str, ...]
    dummy_transitions: Tuple[str, ...]
    run_place: str = RUN_PLACE

    @property
    def timed(self) -> TimedPetriNet:
        return TimedPetriNet(self.net, self.durations)

    @property
    def size(self) -> int:
        """``n`` — SDSP (instruction) transitions only."""
        return len(self.sdsp_transitions)

    def priority_order(self) -> Tuple[str, ...]:
        """The adjacency-list tie-breaking order of Assumption 5.2.1 —
        instruction transitions in their construction order, which for
        graphs built by the loop frontend is the program order of the
        loop body."""
        return self.sdsp_transitions


def build_sdsp_scp_pn(
    base: SdspPetriNet,
    stages: int,
    expand_ack_places: bool = True,
) -> SdspScpNet:
    """Construct the SDSP-SCP-PN from an SDSP-PN.

    Parameters
    ----------
    stages:
        Pipeline depth ``l >= 1``.  The paper's Table 2 uses ``l = 8``.
    expand_ack_places:
        The paper performs series expansion "for each place in the
        SDSP-PN", i.e. acknowledgement places too — acknowledgement
        signals travel through the pipeline like data.  Disabling this
        models a machine with a dedicated zero-latency acknowledgement
        network, an ablation studied in the benchmarks.
    """
    if stages < 1:
        raise NetConstructionError(f"pipeline needs >= 1 stage, got {stages}")

    source_net = base.net
    net = PetriNet(f"{source_net.name}-scp{stages}")
    tokens: Dict[str, int] = {}
    durations: Dict[str, int] = {}
    dummies: List[str] = []

    for transition in source_net.transition_names:
        net.add_transition(transition, annotation="sdsp")
        durations[transition] = 1

    for place_obj in source_net.places:
        place = place_obj.name
        (producer,) = source_net.input_transitions(place)
        (consumer,) = source_net.output_transitions(place)
        initial_tokens = base.initial[place]
        expand = stages > 1 and (
            expand_ack_places or place_obj.annotation != "ack"
        )
        if not expand:
            net.add_place(place, annotation=place_obj.annotation)
            net.add_arc(producer, place)
            net.add_arc(place, consumer)
            if initial_tokens:
                tokens[place] = initial_tokens
            continue
        dummy = f"delay[{place}]"
        head = place  # producer -> head -> dummy
        tail = f"{place}~ready"  # dummy -> tail -> consumer
        net.add_place(head, annotation=place_obj.annotation)
        net.add_transition(dummy, annotation="dummy")
        net.add_place(tail, annotation=place_obj.annotation)
        net.add_arc(producer, head)
        net.add_arc(head, dummy)
        net.add_arc(dummy, tail)
        net.add_arc(tail, consumer)
        durations[dummy] = stages - 1
        dummies.append(dummy)
        if initial_tokens:
            # Initial tokens represent values already available (loop
            # pre-state / free buffers): they sit past the delay.
            tokens[tail] = initial_tokens

    # Run place: one issue slot shared by all instruction transitions.
    net.add_place(RUN_PLACE, annotation="run")
    tokens[RUN_PLACE] = 1
    for transition in source_net.transition_names:
        net.add_arc(RUN_PLACE, transition)
        net.add_arc(transition, RUN_PLACE)

    return SdspScpNet(
        base=base,
        net=net,
        initial=Marking(tokens, net),
        durations=durations,
        stages=stages,
        sdsp_transitions=tuple(source_net.transition_names),
        dummy_transitions=tuple(dummies),
    )
