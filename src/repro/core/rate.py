"""Computation rates (Appendix A.7, Theorem 5.2.2, Section 6).

The *computation rate* of a transition is its average firings per time
unit; for a live timed marked graph every transition shares the same
rate, the reciprocal of the cycle time::

    gamma = min over simple cycles C of  M(C) / Ω(C)

This is **time-optimal**: no machine model can do better, and an ideal
machine (unbounded parallelism, earliest firing) achieves it.  For the
SDSP-SCP-PN the single issue slot adds the resource bound of
Theorem 5.2.2: no instruction can fire more often than ``1/n``.

>>> from repro.loops import parse_loop, translate
>>> from repro.core import build_sdsp_pn
>>> pn = build_sdsp_pn(translate(parse_loop(
...     "do tiny:\\n  A[i] = A[i-1] + IN[i]")).graph, include_io=False)
>>> optimal_rate(pn)             # one-cycle recurrence: rate 1
Fraction(1, 1)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..errors import AnalysisError
from ..obs.metrics import timed
from ..petrinet.analysis import CriticalCycleReport, critical_cycle_report
from ..petrinet.behavior import CyclicFrustum
from ..petrinet.howard import cycle_time_howard
from .scp import SdspScpNet
from .sdsp_pn import SdspPetriNet, build_sdsp_pn

__all__ = [
    "optimal_rate",
    "critical_cycles",
    "scp_rate_upper_bound",
    "dependence_cycle_time",
    "dependence_bound_rate",
    "frustum_rate",
    "pipeline_utilization",
]


@timed("core.critical_cycles")
def critical_cycles(pn: SdspPetriNet) -> CriticalCycleReport:
    """Full critical-cycle analysis of an SDSP-PN.

    The enumeration report (every critical cycle, for attribution and
    the dashboard) is cross-checked against Howard's policy iteration —
    two independent algorithms agreeing on the cycle time is a strong
    internal consistency guarantee, and the check is near-linear so it
    costs nothing next to the enumeration itself.
    """
    report = critical_cycle_report(pn.view(), pn.durations)
    alpha = cycle_time_howard(pn.view(), pn.durations)
    if alpha != report.cycle_time:
        raise AnalysisError(
            "cycle-time cross-check failed: Howard's policy iteration "
            f"found {alpha} but cycle enumeration found {report.cycle_time}"
        )
    return report


@timed("core.optimal_rate")
def optimal_rate(pn: SdspPetriNet) -> Fraction:
    """The time-optimal computation rate ``γ`` of the loop: the hard
    upper bound the critical cycles impose on any schedule.

    Computed as ``1 / α`` with the cycle time ``α`` from Howard's
    policy iteration (:mod:`repro.petrinet.howard`) — exact
    :class:`~fractions.Fraction` arithmetic, near-linear practical
    time, no cycle enumeration."""
    return 1 / cycle_time_howard(pn.view(), pn.durations)


@timed("core.dependence_cycle_time")
def dependence_cycle_time(source, include_io: bool = True,
                          durations=None) -> Fraction:
    """Cycle time of the *dependence subnet*: data places only, the
    acknowledgement discipline stripped.

    Howard's policy iteration models non-reentrance as an implicit
    self-loop of weight ``τ(t)`` and height 1 per transition, so the
    analysis stays well-defined even when the data arcs alone are
    acyclic (a DOALL body): the answer is then just ``max τ``.  For a
    loop-carried body it is the classic recurrence bound
    ``max over data cycles of Ω(C)/M(C)``.

    ``source`` is an :class:`~repro.core.sdsp.Sdsp` or a raw
    :class:`~repro.dataflow.graph.DataflowGraph` (validated on the way
    in), mirroring :func:`~repro.core.sdsp_pn.build_sdsp_pn`.
    """
    pn = build_sdsp_pn(
        source,
        durations=durations,
        include_acks=False,
        include_io=include_io,
    )
    return cycle_time_howard(pn.view(), pn.durations)


def dependence_bound_rate(source, include_io: bool = True,
                          durations=None) -> Fraction:
    """The dependence bound ``γ* = 1 / dependence_cycle_time``: the
    hard per-base-instruction rate ceiling the loop-carried dependences
    impose, independent of any buffering discipline.  This is the rate
    the unrolled loop closes on (``compile_loop(..., unroll="auto")``
    picks the smallest factor that reaches it exactly)."""
    return 1 / dependence_cycle_time(
        source, include_io=include_io, durations=durations
    )


def scp_rate_upper_bound(scp: SdspScpNet) -> Fraction:
    """Theorem 5.2.2: with ``n`` instructions sharing one clean
    pipeline, no instruction's rate can exceed ``1/n`` — one issue slot
    per cycle divided among ``n`` instructions per iteration.  This
    bound is independent of the conflict-resolution policy."""
    return Fraction(1, scp.size)


def frustum_rate(frustum: CyclicFrustum, instruction: str) -> Fraction:
    """Measured steady-state rate of one instruction (the Tables 1/2
    *computation rate* column): frustum firing count over frustum
    length.

    Analysis-path failures surface as :class:`~repro.errors.
    AnalysisError`: an empty frustum has no steady state to measure,
    and an instruction the frustum never recorded is a caller bug (the
    old behavior silently reported rate 0 for a typo'd name).
    """
    if frustum.length == 0:
        raise AnalysisError(
            f"cannot measure the rate of {instruction!r}: the frustum "
            "is empty (no steady-state period was detected)"
        )
    if instruction not in frustum.firing_counts:
        raise AnalysisError(
            f"instruction {instruction!r} does not fire in the frustum; "
            f"known instructions: {sorted(frustum.firing_counts)}"
        )
    return frustum.computation_rate(instruction)


def pipeline_utilization(scp: SdspScpNet, frustum: CyclicFrustum) -> Fraction:
    """Fraction of cycles the SCP issues an instruction in steady state
    (Table 2's *processor usage*): total instruction firings per
    frustum, times the 1-cycle issue slot, over the frustum length.

    Equals 1 exactly when the Theorem 5.2.2 bound is met.
    """
    if frustum.length == 0:
        raise AnalysisError(
            "cannot compute pipeline utilization on an empty frustum"
        )
    issue_cycles = sum(
        frustum.firing_counts.get(t, 0) for t in scp.sdsp_transitions
    )
    return Fraction(issue_cycles, frustum.length)
