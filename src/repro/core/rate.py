"""Computation rates (Appendix A.7, Theorem 5.2.2, Section 6).

The *computation rate* of a transition is its average firings per time
unit; for a live timed marked graph every transition shares the same
rate, the reciprocal of the cycle time::

    gamma = min over simple cycles C of  M(C) / Ω(C)

This is **time-optimal**: no machine model can do better, and an ideal
machine (unbounded parallelism, earliest firing) achieves it.  For the
SDSP-SCP-PN the single issue slot adds the resource bound of
Theorem 5.2.2: no instruction can fire more often than ``1/n``.

>>> from repro.loops import parse_loop, translate
>>> from repro.core import build_sdsp_pn
>>> pn = build_sdsp_pn(translate(parse_loop(
...     "do tiny:\\n  A[i] = A[i-1] + IN[i]")).graph, include_io=False)
>>> optimal_rate(pn)             # one-cycle recurrence: rate 1
Fraction(1, 1)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..errors import AnalysisError
from ..obs.metrics import timed
from ..petrinet.analysis import CriticalCycleReport, critical_cycle_report
from ..petrinet.behavior import CyclicFrustum
from ..petrinet.howard import cycle_time_howard
from .scp import SdspScpNet
from .sdsp_pn import SdspPetriNet

__all__ = [
    "optimal_rate",
    "critical_cycles",
    "scp_rate_upper_bound",
    "frustum_rate",
    "pipeline_utilization",
]


@timed("core.critical_cycles")
def critical_cycles(pn: SdspPetriNet) -> CriticalCycleReport:
    """Full critical-cycle analysis of an SDSP-PN.

    The enumeration report (every critical cycle, for attribution and
    the dashboard) is cross-checked against Howard's policy iteration —
    two independent algorithms agreeing on the cycle time is a strong
    internal consistency guarantee, and the check is near-linear so it
    costs nothing next to the enumeration itself.
    """
    report = critical_cycle_report(pn.view(), pn.durations)
    alpha = cycle_time_howard(pn.view(), pn.durations)
    if alpha != report.cycle_time:
        raise AnalysisError(
            "cycle-time cross-check failed: Howard's policy iteration "
            f"found {alpha} but cycle enumeration found {report.cycle_time}"
        )
    return report


@timed("core.optimal_rate")
def optimal_rate(pn: SdspPetriNet) -> Fraction:
    """The time-optimal computation rate ``γ`` of the loop: the hard
    upper bound the critical cycles impose on any schedule.

    Computed as ``1 / α`` with the cycle time ``α`` from Howard's
    policy iteration (:mod:`repro.petrinet.howard`) — exact
    :class:`~fractions.Fraction` arithmetic, near-linear practical
    time, no cycle enumeration."""
    return 1 / cycle_time_howard(pn.view(), pn.durations)


def scp_rate_upper_bound(scp: SdspScpNet) -> Fraction:
    """Theorem 5.2.2: with ``n`` instructions sharing one clean
    pipeline, no instruction's rate can exceed ``1/n`` — one issue slot
    per cycle divided among ``n`` instructions per iteration.  This
    bound is independent of the conflict-resolution policy."""
    return Fraction(1, scp.size)


def frustum_rate(frustum: CyclicFrustum, instruction: str) -> Fraction:
    """Measured steady-state rate of one instruction (the Tables 1/2
    *computation rate* column): frustum firing count over frustum
    length."""
    return frustum.computation_rate(instruction)


def pipeline_utilization(scp: SdspScpNet, frustum: CyclicFrustum) -> Fraction:
    """Fraction of cycles the SCP issues an instruction in steady state
    (Table 2's *processor usage*): total instruction firings per
    frustum, times the 1-cycle issue slot, over the frustum length.

    Equals 1 exactly when the Theorem 5.2.2 bound is met.
    """
    issue_cycles = sum(
        frustum.firing_counts.get(t, 0) for t in scp.sdsp_transitions
    )
    if frustum.length == 0:
        raise ZeroDivisionError("empty frustum")
    return Fraction(issue_cycles, frustum.length)
