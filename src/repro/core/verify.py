"""Schedule validation: dependences, resources, rate and semantics.

A derived schedule is only trustworthy if it can be *replayed* against
everything it promised:

* **Dependence feasibility** — for every place of the SDSP-PN (data and
  acknowledgement alike) with producer ``u``, consumer ``v`` and ``r``
  initial tokens, FIFO matching forces ``start_v(i) >= start_u(i − r) +
  latency(u)`` for all iterations ``i >= r``.  This single rule covers
  forward dependences, loop-carried dependences, and the buffer
  (acknowledgement) constraints.
* **Resource feasibility** — at most ``capacity`` instructions issue
  per cycle (1 for the single clean pipeline).
* **Rate achievement** — the kernel's ``k / II`` equals the optimal
  rate from critical-cycle analysis (for the ideal model), making the
  schedule time-optimal, or the documented resource bound (SCP).
* **Semantic preservation** — the schedule is executed with real
  values, producer results flowing to consumers at the scheduled
  iteration distances, and the output arrays compared against a direct
  interpretation of the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..dataflow.actors import ActorKind, EvalContext
from ..dataflow.graph import DataflowGraph
from ..errors import ScheduleError
from ..obs.metrics import timed
from .schedule import PipelinedSchedule, ScheduledOp
from .sdsp_pn import SdspPetriNet

__all__ = [
    "VerificationReport",
    "verify_dependences",
    "verify_resource",
    "verify_rate",
    "execute_schedule",
    "verify_schedule",
]


@dataclass
class VerificationReport:
    """Aggregated validation outcome; ``violations`` is empty on
    success."""

    violations: List[str] = field(default_factory=list)
    checked_constraints: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def require(self) -> None:
        if self.violations:
            raise ScheduleError(
                "schedule verification failed:\n  - "
                + "\n  - ".join(self.violations[:20])
            )


def verify_dependences(
    pn: SdspPetriNet,
    schedule: PipelinedSchedule,
    iterations: int = 12,
    latency_of: Optional[Callable[[str], int]] = None,
) -> VerificationReport:
    """Check every place's FIFO precedence constraint over the first
    ``iterations`` iterations.

    ``latency_of`` maps a producer to the delay before its token is
    available; it defaults to the net's execution times.  For a
    schedule meant for an ``l``-stage pipeline pass ``lambda t: l``.
    """
    if latency_of is None:
        latency_of = lambda t: pn.durations[t]  # noqa: E731
    report = VerificationReport()
    scheduled = set(schedule.instructions)
    for place in pn.net.place_names:
        (producer,) = pn.net.input_transitions(place)
        (consumer,) = pn.net.output_transitions(place)
        if producer not in scheduled or consumer not in scheduled:
            continue
        tokens = pn.initial[place]
        for i in range(tokens, iterations):
            consumer_start = schedule.start_of(consumer, i)
            producer_start = schedule.start_of(producer, i - tokens)
            ready = producer_start + latency_of(producer)
            report.checked_constraints += 1
            if consumer_start < ready:
                report.violations.append(
                    f"place {place!r}: {consumer!r} iteration {i} starts at "
                    f"{consumer_start} before {producer!r} iteration "
                    f"{i - tokens} is ready at {ready}"
                )
    return report


def verify_resource(
    schedule: PipelinedSchedule,
    iterations: int = 12,
    capacity: int = 1,
    instructions: Optional[Sequence[str]] = None,
) -> VerificationReport:
    """At most ``capacity`` issues per cycle among ``instructions``
    (default: all scheduled instructions)."""
    report = VerificationReport()
    keep = set(instructions) if instructions is not None else None
    per_cycle: Dict[int, int] = {}
    for op in schedule.expand(iterations):
        if keep is not None and op.instruction not in keep:
            continue
        per_cycle[op.time] = per_cycle.get(op.time, 0) + 1
    for time, count in sorted(per_cycle.items()):
        report.checked_constraints += 1
        if count > capacity:
            report.violations.append(
                f"cycle {time}: {count} instructions issued, capacity "
                f"{capacity}"
            )
    return report


def verify_rate(
    schedule: PipelinedSchedule, expected_rate: Fraction
) -> VerificationReport:
    """The kernel rate must equal the analytically optimal rate."""
    report = VerificationReport()
    report.checked_constraints += 1
    if schedule.rate != expected_rate:
        report.violations.append(
            f"schedule rate {schedule.rate} differs from expected "
            f"{expected_rate}"
        )
    return report


def execute_schedule(
    graph: DataflowGraph,
    schedule: PipelinedSchedule,
    arrays: Optional[Mapping[str, Sequence[Any]]] = None,
    iterations: int = 8,
    initial_values: Optional[Mapping[str, Any]] = None,
) -> Dict[str, List[Any]]:
    """Execute the scheduled instruction instances with real values.

    Instances run in issue order.  Operand values flow along the data
    arcs at the arc's iteration distance (its initial token count);
    LOAD/STORE actors absent from the schedule (abstract mode) are
    evaluated implicitly at the consumer/producer's iteration.  Returns
    the per-array output streams, to be compared against the reference
    interpretation.
    """
    arrays = dict(arrays or {})
    initial_values = dict(initial_values or {})
    context = EvalContext(arrays)
    scheduled = set(schedule.instructions)

    # values[(actor, iteration)][port] -> value
    values: Dict[Tuple[str, int], List[Any]] = {}

    def value_of(actor_name: str, iteration: int, port: int, arc_id: str) -> Any:
        if iteration < 0:
            if arc_id in initial_values:
                return initial_values[arc_id]
            return 0
        actor = graph.actor(actor_name)
        if actor.kind is ActorKind.LOAD and actor_name not in scheduled:
            array = arrays[actor.param("array")]
            return array[iteration + actor.param("offset", 0)]
        key = (actor_name, iteration)
        if key not in values:
            raise ScheduleError(
                f"operand of iteration {iteration} of {actor_name!r} "
                "consumed before it was produced — dependence violation"
            )
        return values[key][port]

    stores: Dict[str, Dict[int, Any]] = {}

    def run_instance(name: str, iteration: int) -> None:
        actor = graph.actor(name)
        inputs = []
        for arc in graph.in_arcs(name):
            inputs.append(
                value_of(
                    arc.source,
                    iteration - arc.initial_tokens,
                    arc.source_port,
                    arc.identifier,
                )
            )
        if actor.kind is ActorKind.LOAD:
            array = arrays[actor.param("array")]
            values[(name, iteration)] = [
                array[iteration + actor.param("offset", 0)]
            ]
            return
        if actor.kind is ActorKind.STORE:
            stores.setdefault(actor.param("array"), {})[iteration] = inputs[0]
            return
        outputs = actor.evaluate(inputs, context)
        values[(name, iteration)] = outputs

    for op in schedule.expand(iterations):
        run_instance(op.instruction, op.iteration)

    # Stores absent from the schedule (abstract mode): their value is
    # the producer's output at the same iteration.
    for actor in graph.actors:
        if actor.kind is not ActorKind.STORE or actor.name in scheduled:
            continue
        (arc,) = graph.in_arcs(actor.name)
        out: Dict[int, Any] = {}
        for iteration in range(iterations):
            key = (arc.source, iteration - arc.initial_tokens)
            if key in values:
                out[iteration] = values[key][arc.source_port]
        stores[actor.param("array")] = out

    return {
        array: [mapping[i] for i in sorted(mapping)]
        for array, mapping in stores.items()
    }


@timed("core.verify_schedule")
def verify_schedule(
    pn: SdspPetriNet,
    schedule: PipelinedSchedule,
    iterations: int = 12,
    expected_rate: Optional[Fraction] = None,
    capacity: Optional[int] = None,
    latency_of: Optional[Callable[[str], int]] = None,
) -> VerificationReport:
    """Run the structural checks together and merge the reports."""
    combined = VerificationReport()
    for report in [
        verify_dependences(pn, schedule, iterations, latency_of),
        (
            verify_resource(schedule, iterations, capacity)
            if capacity is not None
            else VerificationReport()
        ),
        (
            verify_rate(schedule, expected_rate)
            if expected_rate is not None
            else VerificationReport()
        ),
    ]:
        combined.violations.extend(report.violations)
        combined.checked_constraints += report.checked_constraints
    return combined
