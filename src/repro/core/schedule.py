"""Time-optimal loop schedules derived from cyclic frustums
(Figure 1(g) and Section 3.3).

A software-pipelined schedule has two parts:

* a **prologue** — the transient firings before the steady state is
  entered (the behavior graph before the initial instantaneous state);
* a **kernel** — the repeating pattern: ``initiation interval`` (II)
  cycles long, covering ``iterations_per_kernel`` (k) loop iterations.

From the frustum these fall out directly: II is the frustum length
``p = Ω(C*)`` and k its uniform transition count ``M(C*)``; the
schedule is *time-optimal* because its rate ``k / II`` equals the
net's optimal computation rate (Appendix A.7) — a fact the test suite
checks for every Livermore loop rather than assuming.

Instances are labelled with absolute iteration numbers so the schedule
can be expanded, validated against dependences and resources, and
executed semantically (:mod:`repro.core.verify`).

>>> from repro.loops import parse_loop, translate
>>> from repro.core import build_sdsp_pn
>>> from repro.petrinet import detect_frustum
>>> pn = build_sdsp_pn(translate(parse_loop(
...     "do tiny:\\n  A[i] = A[i-1] + IN[i]")).graph, include_io=False)
>>> frustum, behavior = detect_frustum(pn.timed, pn.initial)
>>> schedule = derive_schedule(frustum, behavior)
>>> schedule.initiation_interval, schedule.iterations_per_kernel
(1, 1)
>>> schedule.rate
Fraction(1, 1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ScheduleError
from ..obs.metrics import timed
from ..petrinet.behavior import BehaviorGraph, CyclicFrustum

__all__ = ["ScheduledOp", "PipelinedSchedule", "derive_schedule"]


@dataclass(frozen=True)
class ScheduledOp:
    """One instruction instance: ``instruction`` of loop iteration
    ``iteration`` issues at absolute ``time``."""

    time: int
    instruction: str
    iteration: int


@dataclass
class PipelinedSchedule:
    """A software-pipelined (prologue + kernel) schedule.

    ``kernel`` entries are ``(relative_time, instruction,
    base_iteration)``: in the m-th kernel repetition the instance
    executes iteration ``base_iteration + m·k`` at absolute time
    ``start_time + m·II + relative_time``.
    """

    prologue: List[ScheduledOp]
    kernel: List[Tuple[int, str, int]]
    start_time: int
    initiation_interval: int
    iterations_per_kernel: int
    instructions: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.initiation_interval <= 0:
            raise ScheduleError("initiation interval must be positive")
        if self.iterations_per_kernel <= 0:
            raise ScheduleError("kernel must cover at least one iteration")

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def rate(self) -> Fraction:
        """Steady-state computation rate: iterations per cycle."""
        return Fraction(self.iterations_per_kernel, self.initiation_interval)

    @property
    def kernel_span(self) -> int:
        """How many distinct iterations the kernel overlaps — the degree
        of software pipelining (1 = no overlap)."""
        if not self.kernel:
            return 0
        per_instruction: Dict[str, List[int]] = {}
        for _, instruction, base in self.kernel:
            per_instruction.setdefault(instruction, []).append(base)
        lows = [min(v) for v in per_instruction.values()]
        highs = [max(v) for v in per_instruction.values()]
        return max(highs) - min(lows) + 1

    # ------------------------------------------------------------------
    # Lookup / expansion
    # ------------------------------------------------------------------
    def start_of(self, instruction: str, iteration: int) -> int:
        """Issue time of one instruction instance."""
        if instruction not in self.instructions:
            raise ScheduleError(f"unknown instruction {instruction!r}")
        for op in self.prologue:
            if op.instruction == instruction and op.iteration == iteration:
                return op.time
        prologue_count = sum(
            1 for op in self.prologue if op.instruction == instruction
        )
        index = iteration - prologue_count
        if index < 0:
            raise ScheduleError(
                f"iteration {iteration} of {instruction!r} precedes the "
                "schedule (negative index after prologue)"
            )
        kernel_instances = sorted(
            (rel, base)
            for rel, name, base in self.kernel
            if name == instruction
        )
        if not kernel_instances:
            raise ScheduleError(
                f"instruction {instruction!r} does not appear in the kernel"
            )
        k = self.iterations_per_kernel
        m, j = divmod(index, k)
        rel, _base = kernel_instances[j]
        return self.start_time + m * self.initiation_interval + rel

    def expand(self, iterations: int) -> List[ScheduledOp]:
        """All instances covering iterations ``0 .. iterations-1`` of
        every instruction, sorted by time then instruction name."""
        ops: List[ScheduledOp] = [
            op for op in self.prologue if op.iteration < iterations
        ]
        per_instruction_prologue: Dict[str, int] = {
            name: 0 for name in self.instructions
        }
        for op in self.prologue:
            per_instruction_prologue[op.instruction] += 1
        kernel_sorted = sorted(self.kernel)
        k = self.iterations_per_kernel
        for rel, name, base in kernel_sorted:
            m = 0
            while True:
                iteration = base + m * k
                if iteration >= iterations:
                    break
                time = self.start_time + m * self.initiation_interval + rel
                ops.append(ScheduledOp(time, name, iteration))
                m += 1
        ops.sort(key=lambda op: (op.time, op.instruction, op.iteration))
        return ops

    def kernel_rows(self) -> List[Tuple[int, List[Tuple[str, int]]]]:
        """Kernel as Figure 1(g)-style rows: for each relative cycle,
        the instructions issued with their iteration offsets."""
        rows: Dict[int, List[Tuple[str, int]]] = {}
        for rel, name, base in sorted(self.kernel):
            rows.setdefault(rel, []).append((name, base))
        return sorted(rows.items())


@timed("core.derive_schedule")
def derive_schedule(
    frustum: CyclicFrustum,
    behavior: BehaviorGraph,
    instructions: Optional[Iterable[str]] = None,
) -> PipelinedSchedule:
    """Extract the static parallel schedule from a detected frustum.

    ``instructions`` restricts the schedule to a subset of transitions —
    used for SDSP-SCP-PN nets, whose dummy (pipeline-delay) transitions
    are wiring rather than instructions.  Iteration numbers are the
    cumulative firing counts observed in the behavior graph, so the j-th
    firing of an instruction anywhere in the trace is iteration j.
    """
    if instructions is None:
        keep: Set[str] = set(frustum.firing_counts)
        for _time, fired in (
            step_pair for step_pair in _all_steps(behavior)
        ):
            keep.update(fired)
    else:
        keep = set(instructions)

    counts_in_kernel = {
        name: frustum.firing_counts.get(name, 0) for name in keep
    }
    distinct = set(counts_in_kernel.values())
    if len(distinct) != 1:
        raise ScheduleError(
            "instructions fire unequal numbers of times per frustum "
            f"({sorted(distinct)}); restrict `instructions` to the loop body"
        )
    k = distinct.pop()
    if k == 0:
        raise ScheduleError("no instruction fires inside the frustum")

    cumulative: Dict[str, int] = {name: 0 for name in keep}
    prologue: List[ScheduledOp] = []
    kernel: List[Tuple[int, str, int]] = []
    for time, fired in _all_steps(behavior):
        for name in fired:
            if name not in keep:
                continue
            iteration = cumulative[name]
            cumulative[name] = iteration + 1
            if time < frustum.start_time:
                prologue.append(ScheduledOp(time, name, iteration))
            elif time < frustum.repeat_time:
                kernel.append((time - frustum.start_time, name, iteration))

    return PipelinedSchedule(
        prologue=prologue,
        kernel=kernel,
        start_time=frustum.start_time,
        initiation_interval=frustum.length,
        iterations_per_kernel=k,
        instructions=tuple(sorted(keep)),
    )


def _all_steps(behavior: BehaviorGraph) -> List[Tuple[int, Tuple[str, ...]]]:
    return [(step.time, step.fired) for step in behavior.steps]
