PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify test smoke sweep-smoke trace-smoke explain-smoke serve-smoke unroll-smoke stagecache-smoke doctest linkcheck docstring-lint bench bench-check baseline dash clean

verify: test doctest linkcheck docstring-lint smoke sweep-smoke trace-smoke explain-smoke serve-smoke unroll-smoke stagecache-smoke

test:
	$(PYTHON) -m pytest -x -q

doctest:
	$(PYTHON) -m pytest --doctest-modules src/repro/petrinet src/repro/core -q

linkcheck:
	$(PYTHON) tools/check_links.py

# module/public-def docstrings are mandatory in the operated subsystems
docstring-lint:
	$(PYTHON) tools/docstring_lint.py

smoke:
	$(PYTHON) -m repro trace examples/l1.loop --abstract -o /tmp/l1.trace.json
	$(PYTHON) -m repro trace examples/l2.loop --abstract --format jsonl -o /tmp/l2.trace.jsonl
	$(PYTHON) -m repro schedule examples/l2.loop --abstract --profile
	$(PYTHON) -m repro dash examples/l1.loop -o /tmp/l1.dash.html
	$(PYTHON) -m repro dash examples/l2.loop --abstract -o /tmp/l2.dash.html

# cold sweep fills the cache, warm sweep must hit 100% and merge to
# the same bytes — the cache-correctness smoke the CI gate runs twice
sweep-smoke:
	rm -rf /tmp/repro-sweep-cache
	$(PYTHON) -m repro sweep benchmarks/manifests/scaling.json \
		--cache-dir /tmp/repro-sweep-cache -o /tmp/sweep.cold.json
	$(PYTHON) -m repro sweep benchmarks/manifests/scaling.json \
		--cache-dir /tmp/repro-sweep-cache --workers 2 --require-hits \
		-o /tmp/sweep.warm.json
	cmp /tmp/sweep.cold.json /tmp/sweep.warm.json

# traced parallel sweep end to end: the merged trace must be lint-clean
# with a lane per worker, and the exposition must parse as OpenMetrics
trace-smoke:
	$(PYTHON) -m repro sweep benchmarks/manifests/scaling.json \
		--no-cache --workers 4 --no-progress \
		--trace /tmp/sweep.trace.json --metrics-out /tmp/sweep.metrics.txt
	$(PYTHON) tools/trace_lint.py /tmp/sweep.trace.json --require-lanes 4 --strict
	$(PYTHON) -c "import pathlib; from repro.obs import parse_exposition; \
		parse_exposition(pathlib.Path('/tmp/sweep.metrics.txt').read_text()); \
		print('/tmp/sweep.metrics.txt: exposition is valid OpenMetrics')"

# the service end to end: healthz, cold/warm compile byte-identical to
# `repro compile`, OpenMetrics, and a clean SIGTERM drain
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

# rate-optimal unrolling end to end: two fractional-γ loops compiled
# with `--unroll auto` must report achieved == γ* Fraction-exact
unroll-smoke:
	$(PYTHON) tools/unroll_smoke.py

# the staged compiler core end to end: upstream artifacts are reused
# across requests, rebuilds from the stage store are byte-identical,
# and failures name their stage
stagecache-smoke:
	$(PYTHON) tools/stagecache_smoke.py

# causal blame end to end: the observed critical path must match a
# structural critical cycle, the flow trace must be lint-clean, and the
# wait-state exposition must parse as OpenMetrics
explain-smoke:
	$(PYTHON) -m repro explain examples/l1.loop --abstract \
		-o /tmp/explain.l1.txt \
		--trace /tmp/explain.flow.json --metrics-out /tmp/explain.metrics.txt
	grep -q "matches a structural critical cycle\|matches the Howard witness" \
		/tmp/explain.l1.txt
	$(PYTHON) -m repro explain examples/l2.loop --abstract -o /tmp/explain.l2.txt
	grep -q "matches the Howard witness" /tmp/explain.l2.txt
	$(PYTHON) tools/trace_lint.py /tmp/explain.flow.json --strict
	$(PYTHON) -c "import pathlib; from repro.obs import parse_exposition; \
		parse_exposition(pathlib.Path('/tmp/explain.metrics.txt').read_text()); \
		print('/tmp/explain.metrics.txt: exposition is valid OpenMetrics')"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# the CI perf gate: current results vs the committed baseline records
bench-check:
	$(PYTHON) -m repro bench-check

# rewrite benchmarks/ledger/baseline.jsonl from the current results
baseline:
	$(PYTHON) -m repro bench-check --update-baseline

dash:
	$(PYTHON) -m repro dash examples/l1.loop -o benchmarks/results/l1.dash.html
	$(PYTHON) -m repro dash examples/l2.loop --abstract -o benchmarks/results/l2.dash.html

clean:
	rm -f /tmp/l1.trace.json /tmp/l2.trace.jsonl /tmp/l1.dash.html /tmp/l2.dash.html
	rm -rf /tmp/repro-sweep-cache /tmp/sweep.cold.json /tmp/sweep.warm.json
	rm -f /tmp/sweep.trace.json /tmp/sweep.metrics.txt
	rm -f /tmp/explain.flow.json /tmp/explain.metrics.txt
	rm -f /tmp/explain.l1.txt /tmp/explain.l2.txt
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
