PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify test smoke bench clean

verify: test smoke

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) -m repro trace examples/l1.loop --abstract -o /tmp/l1.trace.json
	$(PYTHON) -m repro trace examples/l2.loop --abstract --format jsonl -o /tmp/l2.trace.jsonl
	$(PYTHON) -m repro schedule examples/l2.loop --abstract --profile

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

clean:
	rm -f /tmp/l1.trace.json /tmp/l2.trace.jsonl
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
