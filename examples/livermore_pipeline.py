"""Schedule every Livermore kernel of the paper and check semantics.

Run with::

    python examples/livermore_pipeline.py

For each kernel this compiles the loop, derives the time-optimal
schedule, *executes* the schedule with real input data, and compares
the results against a direct sequential evaluation of the loop — the
full compile-and-run story of the paper's Section 5 experiments, with
the semantic check the paper's testbed performed implicitly.
"""

import numpy as np

from repro.core import (
    build_sdsp_pn,
    derive_schedule,
    execute_schedule,
    optimal_rate,
)
from repro.loops import paper_kernel_set, reference_execute
from repro.petrinet import detect_frustum
from repro.report import render_table

ITERATIONS = 10


def main() -> None:
    rows = []
    for kernel in paper_kernel_set():
        translation = kernel.translation()
        pn = build_sdsp_pn(translation.graph)
        frustum, behavior = detect_frustum(pn.timed, pn.initial)
        schedule = derive_schedule(frustum, behavior)

        arrays = {
            name: list(values)
            for name, values in kernel.make_inputs(ITERATIONS).items()
        }
        outputs = execute_schedule(
            translation.graph,
            schedule,
            arrays,
            ITERATIONS,
            translation.initial_values_for(kernel.boundary_values()),
        )
        reference = reference_execute(
            kernel.loop(),
            arrays,
            kernel.scalar_bindings(),
            ITERATIONS,
            kernel.boundary_values(),
        )
        ok = all(
            np.allclose(outputs[name], stream)
            for name, stream in reference.items()
        )
        rows.append(
            [
                kernel.key,
                kernel.title,
                pn.size,
                optimal_rate(pn),
                schedule.initiation_interval,
                frustum.repeat_time,
                "ok" if ok else "MISMATCH",
            ]
        )

    print(
        render_table(
            [
                "kernel",
                "description",
                "n",
                "rate",
                "II",
                "detected at",
                "semantics",
            ],
            rows,
            title=(
                f"Livermore kernels: schedule + semantic check over "
                f"{ITERATIONS} iterations"
            ),
        )
    )


if __name__ == "__main__":
    main()
