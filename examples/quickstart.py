"""Quickstart: compile the paper's loop L1 to a verified time-optimal
software-pipelined schedule.

Run with::

    python examples/quickstart.py

This walks the whole pipeline of the paper on the Section 2 example:
loop text -> dataflow graph -> SDSP-PN -> behavior graph -> cyclic
frustum -> schedule, printing each artifact.
"""

from repro import compile_loop
from repro.report import (
    render_behavior_graph,
    render_dataflow_graph,
    render_petri_net,
    render_schedule,
)

L1 = """
doall L1:
    A[i] = X[i] + 5
    B[i] = Y[i] + A[i]
    C[i] = A[i] + Z[i]
    D[i] = B[i] + C[i]
    E[i] = W[i] + D[i]
"""


def main() -> None:
    # include_io=False reproduces the paper's Figure 1 exactly: only
    # the five compute instructions A..E become net transitions.
    result = compile_loop(L1, include_io=False)

    print("=== static dataflow graph (Figure 1c) ===")
    print(render_dataflow_graph(result.translation.graph))

    print("\n=== SDSP-PN (Figure 1d) ===")
    print(render_petri_net(result.pn.net, result.pn.initial, result.pn.durations))

    print("\n=== behavior graph with cyclic frustum (Figure 1e) ===")
    print(render_behavior_graph(result.behavior, result.frustum))

    print("\n=== time-optimal schedule (Figure 1g) ===")
    print(render_schedule(result.schedule))

    print("\nSummary")
    print(f"  loop body size n        : {result.pn.size}")
    print(f"  optimal computation rate: {result.optimal_rate}")
    print(f"  schedule rate           : {result.schedule.rate}")
    print(f"  initiation interval II  : {result.schedule.initiation_interval}")
    print(f"  frustum found at step   : {result.frustum.repeat_time}"
          f"  (2n bound: {2 * result.pn.size})")
    print(f"  theory worst case       : O(n^4) = "
          f"{result.bounds.step_bound} steps "
          f"({result.bounds.case} critical cycle case)")


if __name__ == "__main__":
    main()
