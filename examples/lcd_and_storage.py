"""Loop-carried dependences and storage optimisation (Sections 3/6).

Run with::

    python examples/lcd_and_storage.py

Uses the paper's loop L2 (Figure 2) to show:

* how a loop-carried dependence appears as a feedback arc whose data
  place starts marked;
* critical-cycle analysis — the recurrence C → D → E → C caps the rate
  at 1/3 no matter the machine;
* the Section 6 storage rewrite: merging acknowledgement arcs of
  non-critical cycles shrinks buffer count while the rate is preserved
  (proved by re-analysis and re-simulation, not assumed).
"""

from repro import compile_loop
from repro.core import (
    apply_allocation,
    balancing_ratios,
    critical_cycles,
    optimize_storage,
    verify_allocation,
)
from repro.petrinet import TimedPetriNet, detect_frustum
from repro.report import render_dataflow_graph

L2 = """
do L2:
    A[i] = X[i] + 5
    B[i] = Y[i] + A[i]
    C[i] = A[i] + E[i-1]
    D[i] = B[i] + C[i]
    E[i] = W[i] + D[i]
"""


def main() -> None:
    result = compile_loop(L2, include_io=False)
    print("=== L2 dataflow graph (feedback arc marked 'carried') ===")
    print(render_dataflow_graph(result.translation.graph))

    report = critical_cycles(result.pn)
    print("\n=== critical-cycle analysis ===")
    print(f"cycle time {report.cycle_time}  =>  optimal rate "
          f"{report.computation_rate}")
    for cycle in report.critical_cycles:
        print("  critical cycle:", " -> ".join(cycle.transitions))

    print("\n=== balancing ratios (Section 6) ===")
    for cycle, ratio in sorted(
        balancing_ratios(result.pn), key=lambda pair: pair[1]
    ):
        print(f"  {' -> '.join(cycle):<24} M(C)/|C| = {ratio}")

    print("\n=== storage optimisation (Figure 4) ===")
    allocation = optimize_storage(result.pn)
    print(f"baseline locations : {allocation.baseline_locations}")
    print(f"optimised locations: {allocation.locations} "
          f"(saved {allocation.savings})")
    for chain in allocation.chains:
        path = " -> ".join([chain.head] + [a.target for a in chain.arcs])
        print(f"  one location covers: {path}")

    rate = verify_allocation(result.pn, allocation)
    print(f"cycle time after optimisation: {rate} (unchanged)")

    net, marking = apply_allocation(result.pn, allocation)
    frustum, _ = detect_frustum(
        TimedPetriNet(net, result.pn.durations), marking
    )
    print(f"simulated rate of optimised net: {frustum.uniform_rate()}")


if __name__ == "__main__":
    main()
