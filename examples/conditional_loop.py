"""Conditional loop bodies: well-formed switch/merge subgraphs
(Section 3.2).

Run with::

    python examples/conditional_loop.py

The paper's loop class allows conditional constructs "as long as the
overall structure of the loop remains a well-formed dataflow graph":
switch and merge actors route operands into the selected branch and
circulate dummy tokens through the unselected one, so structurally
they fire like regular nodes and the SDSP-PN machinery applies
unchanged.  This example compiles an absolute-difference loop, shows
the switch/merge structure, derives and semantically validates the
schedule, and demonstrates the buffering cure for the unbalanced
control path.
"""

import numpy as np

from repro import compile_loop
from repro.core import build_sdsp_pn, execute_schedule
from repro.loops import parse_loop, reference_execute
from repro.petrinet import detect_frustum
from repro.report import render_dataflow_graph, render_schedule

SOURCE = """
doall absdiff:
    A[i] = where(X[i] < Y[i], Y[i] - X[i], X[i] - Y[i])
"""


def main() -> None:
    result = compile_loop(SOURCE)

    print("=== dataflow graph: switches gate operands, merge joins ===")
    print(render_dataflow_graph(result.translation.graph))

    print("\n=== derived schedule ===")
    print(render_schedule(result.schedule))
    print(f"net is a marked graph: {result.pn.net.is_marked_graph()}"
          f" (conditionals stay inside the SDSP class)")

    rng = np.random.default_rng(1)
    arrays = {
        "X": list(rng.uniform(0, 2, 10)),
        "Y": list(rng.uniform(0, 2, 10)),
    }
    outputs = execute_schedule(
        result.translation.graph, result.schedule, arrays, 10, {}
    )
    reference = reference_execute(parse_loop(SOURCE), arrays, iterations=10)
    ok = np.allclose(outputs["A"], reference["A"])
    print(f"\nscheduled execution matches |x - y| reference: {ok}")

    print("\n=== the unbalanced control path, and its buffering cure ===")
    for capacity in (1, 2):
        pn = build_sdsp_pn(result.translation.graph, buffer_capacity=capacity)
        frustum, _ = detect_frustum(pn.timed, pn.initial)
        print(f"  buffer capacity {capacity}: steady rate "
              f"{frustum.uniform_rate()}")
    print("  (the condition reaches the merge in one hop but the data "
        "takes two,\n   so one-token arcs stall; a second buffer slot "
        "restores rate 1/2)")


if __name__ == "__main__":
    main()
