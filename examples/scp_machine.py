"""Resource-constrained scheduling on a single clean pipeline
(Section 5.2) and the baseline comparison (Section 7).

Run with::

    python examples/scp_machine.py

Builds the SDSP-SCP-PN of Livermore loop 7 for an 8-stage pipeline,
derives the resource-constrained steady schedule, replays it on the
independent cycle-accurate machine model, and compares against modulo
scheduling and non-pipelined list scheduling on the same machine.
"""

from fractions import Fraction

from repro.baselines import (
    DependenceGraph,
    list_schedule,
    modulo_schedule,
)
from repro.core import (
    build_sdsp_pn,
    build_sdsp_scp_pn,
    derive_schedule,
    pipeline_utilization,
    scp_rate_upper_bound,
)
from repro.loops import kernel
from repro.machine import FifoRunPlacePolicy, ScpMachine
from repro.petrinet import detect_frustum

STAGES = 8


def main() -> None:
    k = kernel("loop7")
    pn = build_sdsp_pn(k.translation().graph)
    scp = build_sdsp_scp_pn(pn, stages=STAGES)
    policy = FifoRunPlacePolicy(scp.net, scp.run_place, scp.priority_order())

    frustum, behavior = detect_frustum(scp.timed, scp.initial, policy)
    schedule = derive_schedule(
        frustum, behavior, instructions=scp.sdsp_transitions
    )

    print(f"loop 7 ({k.title}) on a {STAGES}-stage clean pipeline")
    print(f"  instructions n       : {scp.size}")
    print(f"  steady period        : {frustum.length} cycles")
    print(f"  rate per instruction : {schedule.rate} "
          f"(Theorem 5.2.2 bound: {scp_rate_upper_bound(scp)})")
    print(f"  pipeline utilisation : {pipeline_utilization(scp, frustum)}")

    # Replay on the independent machine model (not a Petri net).
    machine = ScpMachine(pn, stages=STAGES)
    replay = machine.run_schedule(schedule, iterations=30)
    dynamic = machine.run_dynamic(iterations=60)
    print("\ncycle-accurate machine cross-check")
    print(f"  static replay        : {replay.issues} issues in "
          f"{replay.cycles} cycles (util {replay.utilization})")
    print(f"  dynamic FIFO issue   : steady period "
          f"{dynamic.steady_period} = net frustum {frustum.length}")

    # Baselines on the same machine.
    graph = DependenceGraph.from_sdsp_pn(pn)
    modulo = modulo_schedule(graph, units=1, latency=STAGES)
    listed = list_schedule(graph, units=1, latency=STAGES)
    print("\nbaselines (same 1-issue machine)")
    print(f"  PN steady II         : {frustum.length}")
    print(f"  modulo scheduling II : {modulo.initiation_interval} "
          f"(MII {modulo.mii})")
    print(f"  list scheduling II   : {listed.initiation_interval} "
          "(no software pipelining)")
    speedup = Fraction(listed.initiation_interval, frustum.length)
    print(f"  software pipelining speedup over list scheduling: "
          f"{float(speedup):.2f}x")


if __name__ == "__main__":
    main()
