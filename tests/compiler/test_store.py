"""The per-stage artifact store: verified reads, corrupt healing,
counters, and the request-key discipline."""

from __future__ import annotations

import json

from repro.compiler import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    stage_store_dir,
)
from repro.obs.metrics import MetricsRegistry


def registry():
    reg = MetricsRegistry()
    reg.enable()
    return reg


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("parse", "k" * 64, "f" * 64, {"loop": "L1"})
        entry = store.load("parse", "k" * 64)
        assert entry is not None
        assert entry["fingerprint"] == "f" * 64
        assert entry["data"] == {"loop": "L1"}
        assert ("parse", "k" * 64) in store
        assert len(store) == 1

    def test_miss_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("parse", "absent" * 10) is None

    def test_entries_partition_by_stage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("parse", "k" * 64, "f" * 64, {"a": 1})
        assert store.load("translate", "k" * 64) is None
        assert (tmp_path / "parse" / ("k" * 64 + ".json")).is_file()

    def test_stage_store_dir_nests_under_cache_dir(self, tmp_path):
        assert stage_store_dir(tmp_path) == tmp_path / "stages"


class TestCorruptHealing:
    def test_truncated_entry_is_a_counted_corrupt_miss(self, tmp_path):
        reg = registry()
        store = ArtifactStore(tmp_path, registry=reg)
        store.store("parse", "k" * 64, "f" * 64, {"a": 1})
        path = store.path_for("parse", "k" * 64)
        path.write_text("{not json", encoding="utf-8")
        assert store.load("parse", "k" * 64) is None
        assert reg.counter("stage.cache.corrupt").value == 1
        # the corrupt file was removed, so the entry can be re-stored
        assert not path.exists()

    def test_tampered_data_is_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("parse", "k" * 64, "f" * 64, {"a": 1})
        path = store.path_for("parse", "k" * 64)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["data"]["a"] = 2  # bytes no longer match data_sha256
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.load("parse", "k" * 64) is None

    def test_schema_bump_invalidates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("parse", "k" * 64, "f" * 64, {"a": 1})
        path = store.path_for("parse", "k" * 64)
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["store_schema"] == STORE_SCHEMA_VERSION
        entry["store_schema"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.load("parse", "k" * 64) is None


class TestCounters:
    def test_hit_miss_store_counters(self, tmp_path):
        reg = registry()
        store = ArtifactStore(tmp_path, registry=reg)
        assert store.load("parse", "k" * 64) is None
        store.store("parse", "k" * 64, "f" * 64, {"a": 1})
        assert store.load("parse", "k" * 64) is not None
        assert reg.counter("stage.cache.miss").value == 1
        assert reg.counter("stage.cache.store").value == 1
        assert reg.counter("stage.cache.hit").value == 1
        assert reg.counter("stage.cache.hit.parse").value == 1
