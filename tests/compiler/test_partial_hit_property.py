"""Property: a partial-hit staged compile is byte-identical to a cold
one.

For random loops, warm the artifact store at one unroll factor and
recompile at another: the second compile reuses the frontend artifacts
(parse, translate, the rate analysis) from the first request, and the
payload it produces must equal — byte for byte — what a cold store
would have produced for the same request.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import ArtifactStore, compile_staged, make_request
from repro.obs import stable_json
from tests.integration.test_property_based import loop_sources

COMMON = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    source=loop_sources(),
    warm_unroll=st.integers(1, 3),
    target_unroll=st.integers(1, 3),
)
@settings(**COMMON)
def test_partial_hit_equals_cold(tmp_path_factory, source, warm_unroll,
                                 target_unroll):
    base = tmp_path_factory.mktemp("stores")
    cold_store = ArtifactStore(base / "cold")
    warm_store = ArtifactStore(base / "warm")

    # warm the store with a different (or identical) unroll factor
    compile_staged(
        make_request(source, include_io=False, unroll=warm_unroll),
        warm_store,
    )

    request = make_request(source, include_io=False, unroll=target_unroll)
    cold_payload, _ = compile_staged(request, cold_store)
    warm_payload, outcomes = compile_staged(request, warm_store)

    assert stable_json(warm_payload) == stable_json(cold_payload)
    # the frontend is unroll-independent, so the warm run never
    # recomputed it (hit, or hydrated when live objects were needed)
    assert outcomes["parse"] in ("hit", "hydrated")
    assert outcomes["translate"] in ("hit", "hydrated")
    assert outcomes["rate_analysis"] == "hit"
