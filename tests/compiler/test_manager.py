"""PassManager semantics: partial hits, cross-request convergence,
hydration accounting and failing-stage attribution."""

from __future__ import annotations

import pytest

from repro.compiler import (
    ArtifactStore,
    PassManager,
    compile_staged,
    failing_stage,
    make_request,
    mark_stage,
)
from repro.errors import ReproError, ScheduleError
from repro.obs.metrics import MetricsRegistry
from tests.conftest import L1_SOURCE, L2_SOURCE

FRAC5 = """
do F5:
    A[i] = X[i] + B[i-5]
    B[i] = A[i] * 2
"""


def staged(source, store, **kwargs):
    return compile_staged(make_request(source, **kwargs), store)


class TestPartialHits:
    def test_downstream_param_change_reuses_upstream(self, tmp_path):
        store = ArtifactStore(tmp_path)
        staged(L2_SOURCE, store, include_io=False)
        _, outcomes = staged(
            L2_SOURCE, store, include_io=False, pipeline_stages=2
        )
        # the whole core pipeline is untouched by the SCP depth: every
        # stage resolves from the store ("hit", or "hydrated" when the
        # new SCP suffix needed its live objects back) — never computed
        for name in (
            "parse",
            "translate",
            "rate_analysis",
            "unroll",
            "build_pn",
            "simulate",
            "rate",
        ):
            assert outcomes[name] in ("hit", "hydrated"), (name, outcomes)
        # the expensive simulation is served purely from projections
        assert outcomes["simulate"] == "hit"
        assert outcomes["rate"] == "hit"
        # only the SCP suffix is new work
        assert outcomes["scp_build"] == "computed"
        assert outcomes["scp_simulate"] == "computed"
        assert outcomes["scp_extract"] == "computed"

    def test_source_change_misses_everything_cacheable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        staged(L1_SOURCE, store, include_io=False)
        _, outcomes = staged(L2_SOURCE, store, include_io=False)
        assert set(outcomes.values()) == {"computed"}

    def test_unroll_change_reuses_the_frontend(self, tmp_path):
        store = ArtifactStore(tmp_path)
        staged(FRAC5, store, include_io=False, unroll=1)
        _, outcomes = staged(FRAC5, store, include_io=False, unroll=2)
        assert outcomes["rate_analysis"] == "hit"
        # parse and translate hit the store and then hydrated: the
        # recomputing unroll stage needs the live dataflow graph back
        assert outcomes["translate"] == "hydrated"
        assert outcomes["parse"] == "hydrated"
        assert outcomes["unroll"] == "computed"
        assert outcomes["simulate"] == "computed"


class TestConvergence:
    def test_auto_converges_onto_explicit_factor(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload_auto, _ = staged(FRAC5, store, include_io=False, unroll="auto")
        factor = payload_auto["unroll"]
        assert factor > 1
        _, outcomes = staged(FRAC5, store, include_io=False, unroll=factor)
        # the unrolled graphs are identical, so every stage downstream
        # of unroll converges onto the auto request's artifacts
        for name in ("build_pn", "simulate", "extract_kernel", "rate"):
            assert outcomes[name] == "hit", (name, outcomes)

    def test_engines_converge_downstream_of_simulate(self, tmp_path):
        store = ArtifactStore(tmp_path)
        staged(L2_SOURCE, store, include_io=False, engine="event")
        _, outcomes = staged(L2_SOURCE, store, include_io=False, engine="step")
        # both engines detect bit-identical frusta: simulate itself
        # re-runs (its params include the engine) but its fingerprint
        # matches, so kernel extraction and verification still hit
        assert outcomes["simulate"] == "computed"
        assert outcomes["extract_kernel"] == "hit"
        assert outcomes["verify"] == "hit"

    def test_payloads_identical_cold_vs_partial(self, tmp_path):
        from repro.obs import stable_json

        cold_store = ArtifactStore(tmp_path / "cold")
        warm_store = ArtifactStore(tmp_path / "warm")
        staged(FRAC5, warm_store, include_io=False, unroll=1)
        cold, _ = staged(FRAC5, cold_store, include_io=False, unroll=2)
        warm, _ = staged(FRAC5, warm_store, include_io=False, unroll=2)
        assert stable_json(cold) == stable_json(warm)


class TestHydration:
    def test_hydrations_are_counted_separately(self, tmp_path):
        reg = MetricsRegistry()
        reg.enable()
        store = ArtifactStore(tmp_path, registry=reg)
        staged(FRAC5, store, include_io=False, unroll=1)
        hits_before = reg.counter("stage.cache.hit").value
        staged(FRAC5, store, include_io=False, unroll=2)
        assert reg.counter("stage.cache.hydrate").value >= 1
        assert reg.counter("stage.cache.hydrate.translate").value == 1
        # hydration never double-counts as a hit: translate was loaded
        # from the store exactly once (the warm run), and hydrating it
        # left the hit counter alone
        assert reg.counter("stage.cache.hit.translate").value == 1
        assert reg.counter("stage.cache.hit").value > hits_before

    def test_fully_warm_run_hydrates_nothing(self, tmp_path):
        reg = MetricsRegistry()
        reg.enable()
        store = ArtifactStore(tmp_path, registry=reg)
        staged(L1_SOURCE, store, include_io=False)
        staged(L1_SOURCE, store, include_io=False)
        assert reg.counter("stage.cache.hydrate").value == 0


class TestFailureAttribution:
    def test_parse_failure_names_parse(self, tmp_path):
        with pytest.raises(ReproError) as info:
            staged("not a loop at all", ArtifactStore(tmp_path))
        assert failing_stage(info.value) == "parse"

    def test_bad_unroll_is_tagged_validate(self):
        with pytest.raises(ReproError) as info:
            make_request(L1_SOURCE, unroll=0)
        assert failing_stage(info.value) == "validate"

    def test_compute_failure_is_tagged_by_the_manager(
        self, tmp_path, monkeypatch
    ):
        import dataclasses

        from repro.compiler.stages import STAGES

        def explode(ctx):
            raise ScheduleError("forced verification failure")

        monkeypatch.setitem(
            STAGES,
            "verify",
            dataclasses.replace(STAGES["verify"], compute=explode),
        )
        with pytest.raises(ScheduleError) as info:
            staged(L2_SOURCE, ArtifactStore(tmp_path), include_io=False)
        assert failing_stage(info.value) == "verify"

    def test_first_tag_wins(self):
        error = ReproError("boom")
        mark_stage(error, "simulate")
        mark_stage(error, "verify")
        assert failing_stage(error) == "simulate"

    def test_untagged_exception_has_no_stage(self):
        assert failing_stage(ValueError("plain")) is None

    def test_failures_are_never_cached(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ReproError):
            staged("still not a loop", store)
        assert len(store) == 0
