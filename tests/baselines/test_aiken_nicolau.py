"""The Aiken–Nicolau greedy pattern baseline."""

from fractions import Fraction

import pytest

from repro.baselines import DependenceGraph, aiken_nicolau_schedule
from repro.core import build_sdsp_pn
from repro.errors import AnalysisError
from repro.loops import KERNELS


def graph_for(key):
    return DependenceGraph.from_sdsp_pn(
        build_sdsp_pn(KERNELS[key].translation().graph)
    )


class TestDoallLoops:
    def test_unbounded_rate_on_doall(self):
        pattern = aiken_nicolau_schedule(graph_for("loop1"))
        assert pattern.period == 0
        assert pattern.rate is None

    def test_all_iterations_start_simultaneously(self):
        pattern = aiken_nicolau_schedule(graph_for("loop12"))
        for node, slope in pattern.slopes.items():
            assert slope == 0


class TestLcdLoops:
    def test_loop5_rate_is_recurrence_bound(self):
        """X = Z*(Y - X[i-1]): 2-op recurrence, greedy rate 1/2."""
        pattern = aiken_nicolau_schedule(graph_for("loop5"))
        assert pattern.rate == Fraction(1, 2)

    def test_loop11_rate_one(self):
        """X = X[i-1] + Y: 1-op recurrence, one iteration per cycle."""
        pattern = aiken_nicolau_schedule(graph_for("loop11"))
        assert pattern.rate == Fraction(1, 1)

    def test_l2_rate_one_third(self, l2_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract)
        pattern = aiken_nicolau_schedule(graph)
        assert pattern.rate == Fraction(1, 3)

    def test_source_nodes_have_slope_zero(self):
        pattern = aiken_nicolau_schedule(graph_for("loop5"))
        loads = [n for n in pattern.slopes if n.startswith("ld_")]
        assert loads
        assert all(pattern.slopes[n] == 0 for n in loads)

    def test_recurrence_nodes_have_positive_slope(self):
        pattern = aiken_nicolau_schedule(graph_for("loop5"))
        assert pattern.slopes["X"] == 2


class TestPatternStructure:
    def test_start_times_respect_dependences(self, l2_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract)
        pattern = aiken_nicolau_schedule(graph)
        for edge in graph.edges:
            for i in range(edge.distance, pattern.iterations_computed):
                assert (
                    pattern.start_times[edge.target][i]
                    >= pattern.start_times[edge.source][i - edge.distance]
                    + graph.latencies[edge.source]
                )

    def test_start_of_extends_pattern(self, l2_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract)
        pattern = aiken_nicolau_schedule(graph)
        far = pattern.iterations_computed + 10
        delta = pattern.start_of("E", far + 1) - pattern.start_of("E", far)
        assert delta == pattern.slopes["E"]

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError, match="empty"):
            aiken_nicolau_schedule(DependenceGraph({}, []))

    def test_budget_exhaustion(self, l2_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract)
        with pytest.raises(AnalysisError, match="no periodic pattern"):
            aiken_nicolau_schedule(graph, max_iterations=2)

    def test_pattern_found_quickly_in_practice(self, l2_pn_abstract):
        """Mirrors the paper's observation that real loops stabilise in
        O(n) — far below the O(n²) worst case."""
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract)
        pattern = aiken_nicolau_schedule(graph)
        assert pattern.iterations_computed <= 2 * graph.size
