"""Iterative modulo scheduling."""

from fractions import Fraction

import pytest

from repro.baselines import DependenceGraph, modulo_schedule
from repro.core import build_sdsp_pn
from repro.errors import AnalysisError
from repro.loops import KERNELS


def graph_for(key):
    return DependenceGraph.from_sdsp_pn(
        build_sdsp_pn(KERNELS[key].translation().graph)
    )


class TestMii:
    def test_res_mii_dominates_on_doall(self):
        graph = graph_for("loop1")  # 9 instructions, no recurrence
        schedule = modulo_schedule(graph, units=1)
        assert schedule.res_mii == 9
        assert schedule.rec_mii == 0
        assert schedule.mii == 9

    def test_rec_mii_dominates_with_long_latency(self):
        graph = graph_for("loop5")  # 2-op recurrence
        schedule = modulo_schedule(graph, units=8, latency=8)
        assert schedule.rec_mii == Fraction(16, 1)
        assert schedule.mii == 16


class TestScheduleValidity:
    @pytest.mark.parametrize("key", ["loop1", "loop5", "loop11", "loop12"])
    @pytest.mark.parametrize("latency", [1, 4])
    def test_all_constraints_satisfied(self, key, latency):
        graph = graph_for(key)
        schedule = modulo_schedule(graph, units=1, latency=latency)
        ii = schedule.initiation_interval
        # dependences (spanning iterations)
        for edge in graph.edges:
            assert (
                schedule.start_times[edge.target] + edge.distance * ii
                >= schedule.start_times[edge.source] + latency
            )
        # modulo resource
        slots = [start % ii for start in schedule.start_times.values()]
        assert len(slots) == len(set(slots))

    def test_start_of_advances_by_ii(self):
        schedule = modulo_schedule(graph_for("loop12"), units=1)
        ii = schedule.initiation_interval
        assert schedule.start_of("X", 3) - schedule.start_of("X", 2) == ii

    def test_achieves_mii_on_simple_loops(self):
        schedule = modulo_schedule(graph_for("loop12"), units=1)
        assert schedule.achieves_mii

    def test_rate(self):
        schedule = modulo_schedule(graph_for("loop12"), units=1)
        assert schedule.rate == Fraction(1, schedule.initiation_interval)

    def test_budget_exhaustion_raises(self):
        graph = graph_for("loop5")
        with pytest.raises(AnalysisError, match="no modulo schedule"):
            modulo_schedule(graph, units=1, latency=8, max_ii=1)


class TestComparisonShape:
    def test_modulo_ii_between_mii_and_list_schedule(self):
        """Modulo scheduling sits between the lower bound and the
        non-pipelined baseline."""
        from repro.baselines import list_schedule

        graph = graph_for("loop7")
        modulo = modulo_schedule(graph, units=1, latency=8)
        listed = list_schedule(graph, units=1, latency=8)
        assert modulo.mii <= modulo.initiation_interval
        assert modulo.initiation_interval <= listed.initiation_interval
