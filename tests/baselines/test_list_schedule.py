"""Classic list scheduling."""

from fractions import Fraction

import pytest

from repro.baselines import DependenceGraph, list_schedule
from repro.core import build_sdsp_pn
from repro.errors import AnalysisError
from repro.loops import KERNELS


def graph_for(key):
    return DependenceGraph.from_sdsp_pn(
        build_sdsp_pn(KERNELS[key].translation().graph)
    )


class TestListSchedule:
    def test_single_unit_unit_latency_makespan_is_n(self):
        graph = graph_for("loop12")  # 4 instructions, shallow DAG
        schedule = list_schedule(graph, units=1)
        assert schedule.makespan == graph.size
        assert schedule.rate == Fraction(1, graph.size)

    def test_wide_machine_hits_critical_path(self, l1_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l1_pn_abstract)
        schedule = list_schedule(graph, units=8)
        assert schedule.makespan == graph.critical_path()

    def test_dependences_respected(self, l1_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l1_pn_abstract)
        schedule = list_schedule(graph, units=2)
        for edge in graph.edges:
            if edge.distance:
                continue
            assert (
                schedule.start_times[edge.target]
                >= schedule.start_times[edge.source] + graph.latencies[edge.source]
            )

    def test_unit_capacity_respected(self):
        graph = graph_for("loop7")
        schedule = list_schedule(graph, units=2)
        per_cycle = {}
        for start in schedule.start_times.values():
            per_cycle[start] = per_cycle.get(start, 0) + 1
        assert max(per_cycle.values()) <= 2

    def test_latency_override_stretches_makespan(self):
        graph = graph_for("loop5")
        fast = list_schedule(graph, units=1, latency=1)
        slow = list_schedule(graph, units=1, latency=8)
        assert slow.makespan > fast.makespan

    def test_zero_units_rejected(self):
        with pytest.raises(AnalysisError):
            list_schedule(graph_for("loop5"), units=0)

    def test_ii_is_makespan(self):
        schedule = list_schedule(graph_for("loop5"), units=1, latency=4)
        assert schedule.initiation_interval == schedule.makespan

    def test_non_pipelined_ii_worse_than_pn_schedule(self, l1_pn_abstract):
        """The point of software pipelining: back-to-back iterations
        (II = makespan) lose to the overlapped PN schedule (II = 2)."""
        graph = DependenceGraph.from_sdsp_pn(l1_pn_abstract)
        schedule = list_schedule(graph, units=8)
        assert schedule.initiation_interval > 2
