"""The dependence-graph abstraction under the baselines."""

from fractions import Fraction

import pytest

from repro.baselines import DepEdge, DependenceGraph
from repro.core import build_sdsp_pn
from repro.errors import AnalysisError
from repro.loops import KERNELS


class TestConstruction:
    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(AnalysisError, match="unknown"):
            DependenceGraph({"a": 1}, [DepEdge("a", "ghost", 0)])

    def test_negative_distance_rejected(self):
        with pytest.raises(AnalysisError, match="negative"):
            DependenceGraph({"a": 1}, [DepEdge("a", "a", -1)])

    def test_from_sdsp_pn_keeps_data_arcs_only(self, l2_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract)
        assert graph.size == 5
        # 5 forward + 1 feedback data arcs, no acks
        assert len(graph.edges) == 6
        assert sum(e.distance for e in graph.edges) == 1

    def test_latency_override(self, l2_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract, latency=8)
        assert set(graph.latencies.values()) == {8}


class TestAnalyses:
    def test_recurrence_mii_matches_pn_recurrence(self, l2_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract)
        # C -> D -> E -> C: latency 3 over distance 1
        assert graph.recurrence_mii() == Fraction(3, 1)

    def test_acyclic_recurrence_mii_zero(self, l1_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l1_pn_abstract)
        assert graph.recurrence_mii() == 0

    def test_zero_distance_cycle_rejected(self):
        graph = DependenceGraph(
            {"a": 1, "b": 1},
            [DepEdge("a", "b", 0), DepEdge("b", "a", 0)],
        )
        with pytest.raises(AnalysisError, match="zero-distance"):
            graph.recurrence_mii()

    def test_resource_mii(self, l1_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l1_pn_abstract)
        assert graph.resource_mii(1) == 5
        assert graph.resource_mii(2) == 3
        with pytest.raises(AnalysisError):
            graph.resource_mii(0)

    def test_critical_path(self, l1_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l1_pn_abstract)
        # A -> B -> D -> E: 4 unit latencies
        assert graph.critical_path() == 4

    def test_predecessors_successors(self, l2_pn_abstract):
        graph = DependenceGraph.from_sdsp_pn(l2_pn_abstract)
        assert {e.source for e in graph.predecessors("D")} == {"B", "C"}
        assert {e.target for e in graph.successors("A")} == {"B", "C"}
