"""The FIFO-queued dataflow extension (Section 7 future work):
buffer capacities above one token per arc."""

from fractions import Fraction

import pytest

from repro.core import build_sdsp_pn, optimal_rate
from repro.errors import NetConstructionError
from repro.loops import KERNELS
from repro.petrinet import detect_frustum, is_bounded


def pn_for(key, capacity):
    return build_sdsp_pn(
        KERNELS[key].translation().graph, buffer_capacity=capacity
    )


class TestConstruction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(NetConstructionError, match=">= 1"):
            pn_for("loop1", 0)

    def test_ack_tokens_scale_with_capacity(self):
        pn = pn_for("loop1", 3)
        ack_counts = {
            pn.initial[place]
            for place in pn.net.place_names
            if pn.net.place(place).annotation == "ack"
        }
        assert ack_counts == {3}

    def test_feedback_pair_total_equals_capacity(self):
        pn = pn_for("loop5", 2)
        (feedback,) = pn.sdsp.feedback_arcs
        data = pn.data_place_of[feedback.identifier]
        ack = pn.ack_place_of[feedback.identifier]
        assert pn.initial[data] + pn.initial[ack] == 2

    def test_net_bounded_by_capacity(self):
        pn = pn_for("loop12", 2)
        assert is_bounded(pn.net, pn.initial, bound=2)

    def test_still_live_marked_graph(self):
        pn = pn_for("loop1", 4)
        assert pn.net.is_marked_graph()
        assert pn.view().is_live()


class TestRates:
    def test_doall_rate_lifts_to_one(self):
        """Capacity 2 removes the acknowledgement round-trip limit; the
        non-reentrant unit-time actors then run at rate 1."""
        assert detect_frustum(
            *_timed(pn_for("loop1", 1))
        )[0].uniform_rate() == Fraction(1, 2)
        assert detect_frustum(
            *_timed(pn_for("loop1", 2))
        )[0].uniform_rate() == Fraction(1, 1)

    def test_extra_capacity_beyond_two_is_wasted(self):
        rates = {
            capacity: detect_frustum(*_timed(pn_for("loop12", capacity)))[
                0
            ].uniform_rate()
            for capacity in (2, 3, 4)
        }
        assert set(rates.values()) == {Fraction(1, 1)}

    def test_recurrence_rate_unmoved_by_buffering(self):
        """Loop 5's critical cycle is the true recurrence: buffering
        cannot accelerate it (only the critical cycle's own tokens
        matter, and those are the loop-carried values)."""
        for capacity in (1, 2, 4):
            frustum, _ = detect_frustum(*_timed(pn_for("loop5", capacity)))
            assert frustum.uniform_rate() == Fraction(1, 2)

    def test_analytic_rate_matches_simulation(self):
        for capacity in (1, 2, 3):
            pn = pn_for("loop7", capacity)
            frustum, _ = detect_frustum(*_timed(pn))
            assert frustum.uniform_rate() == optimal_rate(pn)


def _timed(pn):
    return pn.timed, pn.initial
