"""Buffer balancing: minimal per-arc capacities for a target rate."""

from fractions import Fraction

import pytest

from repro.core import balance_buffers, build_sdsp_pn
from repro.errors import AnalysisError
from repro.loops import KERNELS, parse_loop, translate
from repro.petrinet import detect_frustum

CONDITIONAL = """
doall cond:
  A[i] = where(X[i] < 1, Y[i] * 2, Y[i] + X[i])
"""


class TestTargets:
    def test_default_target_doall_is_rate_one(self):
        pn = build_sdsp_pn(KERNELS["loop1"].translation().graph)
        balance = balance_buffers(pn)
        assert balance.target_period == 1
        # every pair needs two slots to hide the ack round trip
        assert set(balance.capacities.values()) == {2}

    def test_default_target_recurrence_limited(self):
        pn = build_sdsp_pn(KERNELS["loop5"].translation().graph)
        balance = balance_buffers(pn)
        assert balance.target_period == 2  # the 2-op recurrence
        # at the recurrence rate, single buffering suffices everywhere
        assert set(balance.capacities.values()) == {1}

    def test_explicit_slow_target_needs_less(self):
        pn = build_sdsp_pn(KERNELS["loop1"].translation().graph)
        fast = balance_buffers(pn, target_rate=Fraction(1, 1))
        slow = balance_buffers(pn, target_rate=Fraction(1, 2))
        assert slow.total < fast.total
        assert set(slow.capacities.values()) == {1}

    def test_infeasible_target_rejected(self):
        pn = build_sdsp_pn(KERNELS["loop5"].translation().graph)
        with pytest.raises(AnalysisError, match="infeasible"):
            balance_buffers(pn, target_rate=Fraction(1, 1))  # beats recurrence


class TestSelectiveBuffering:
    def test_conditional_buffers_only_the_short_path(self):
        """At rate 1/2 the conditional loop needs extra slots only on
        the control's short path to the merge — far cheaper than the
        uniform capacity-2 allocation."""
        pn = build_sdsp_pn(translate(parse_loop(CONDITIONAL)).graph)
        balance = balance_buffers(pn, target_rate=Fraction(1, 2))
        uniform_two = 2 * len(balance.capacities)
        assert balance.total < uniform_two
        assert max(balance.capacities.values()) == 2
        assert min(balance.capacities.values()) == 1

    def test_balanced_net_achieves_target_in_simulation(self):
        """Build the balanced net and *run* it: the steady rate must
        meet the target."""
        pn = build_sdsp_pn(translate(parse_loop(CONDITIONAL)).graph)
        balance = balance_buffers(pn, target_rate=Fraction(1, 2))
        # rebuild with per-arc capacities via the verification helper's
        # construction: simplest route is per-arc manual marking
        from repro.core.storage import _verify_balance  # white-box

        _verify_balance(pn, balance)  # raises if the target is missed

    def test_self_arcs_stay_capacity_one(self):
        pn = build_sdsp_pn(KERNELS["loop3"].translation().graph)
        balance = balance_buffers(pn)
        (self_arc,) = [
            a for a in pn.sdsp.feedback_arcs if a.source == a.target
        ]
        assert balance.capacities[self_arc.identifier] == 1

    @pytest.mark.parametrize("key", ["loop1", "loop5", "loop7", "loop12"])
    def test_totals_never_below_arc_count(self, key):
        pn = build_sdsp_pn(KERNELS[key].translation().graph)
        balance = balance_buffers(pn)
        assert balance.total >= len(balance.capacities)
