"""SDSP → SDSP-PN translation: structure and the paper's two
construction guarantees (live+safe initial marking; marked graph)."""

import pytest

from repro.core import build_sdsp_pn
from repro.errors import NetConstructionError
from repro.loops import KERNELS
from repro.petrinet import is_live, is_persistent, is_safe


class TestFigure1d:
    """Abstract mode reproduces Figure 1(d) exactly."""

    def test_five_transitions(self, l1_pn_abstract):
        assert set(l1_pn_abstract.net.transition_names) == {
            "A", "B", "C", "D", "E",
        }

    def test_ten_places(self, l1_pn_abstract):
        assert len(l1_pn_abstract.net.place_names) == 10

    def test_data_and_ack_split(self, l1_pn_abstract):
        annotations = [p.annotation for p in l1_pn_abstract.net.places]
        assert annotations.count("data") == 5
        assert annotations.count("ack") == 5

    def test_initial_marking_all_on_acks(self, l1_pn_abstract):
        for place in l1_pn_abstract.net.places:
            expected = 1 if place.annotation == "ack" else 0
            assert l1_pn_abstract.initial[place.name] == expected

    def test_marked_graph(self, l1_pn_abstract):
        assert l1_pn_abstract.net.is_marked_graph()


class TestFigure2d:
    """L2: the feedback data place starts marked, its ack empty."""

    def test_feedback_place_marked(self, l2_pn_abstract):
        (feedback,) = l2_pn_abstract.sdsp.feedback_arcs
        data_place = l2_pn_abstract.data_place_of[feedback.identifier]
        ack_place = l2_pn_abstract.ack_place_of[feedback.identifier]
        assert l2_pn_abstract.initial[data_place] == 1
        assert l2_pn_abstract.initial[ack_place] == 0

    def test_every_pair_carries_one_token(self, l2_pn_abstract):
        pn = l2_pn_abstract
        for identifier, data_place in pn.data_place_of.items():
            ack_place = pn.ack_place_of[identifier]
            assert pn.initial[data_place] + pn.initial[ack_place] == 1


class TestConstructionGuarantees:
    @pytest.mark.parametrize("key", ["loop1", "loop3", "loop5", "loop12"])
    def test_live_and_safe_by_reachability(self, key):
        pn = build_sdsp_pn(KERNELS[key].translation().graph)
        assert is_live(pn.net, pn.initial)
        assert is_safe(pn.net, pn.initial)

    @pytest.mark.parametrize("key", sorted(KERNELS))
    def test_live_and_safe_by_marked_graph_theorems(self, key):
        pn = build_sdsp_pn(KERNELS[key].translation().graph)
        view = pn.view()
        assert view.is_live()
        assert view.is_safe()

    def test_persistent(self, l1_pn_abstract):
        assert is_persistent(l1_pn_abstract.net, l1_pn_abstract.initial)

    @pytest.mark.parametrize("key", sorted(KERNELS))
    def test_always_marked_graph(self, key):
        pn = build_sdsp_pn(KERNELS[key].translation().graph)
        assert pn.net.is_marked_graph()

    def test_self_feedback_has_no_ack_place(self):
        pn = build_sdsp_pn(KERNELS["loop3"].translation().graph)
        (self_arc,) = [
            a for a in pn.sdsp.feedback_arcs if a.source == a.target
        ]
        assert self_arc.identifier in pn.data_place_of
        assert self_arc.identifier not in pn.ack_place_of


class TestOptions:
    def test_default_unit_durations(self, l1_pn_full):
        assert set(l1_pn_full.durations.values()) == {1}

    def test_custom_durations(self, l1_graph):
        durations = {name: 2 for name in l1_graph.actor_names}
        pn = build_sdsp_pn(l1_graph, durations=durations)
        assert pn.durations["A"] == 2

    def test_missing_duration_rejected(self, l1_graph):
        with pytest.raises(NetConstructionError, match="no execution time"):
            build_sdsp_pn(l1_graph, durations={"A": 1})

    def test_no_acks_mode(self, l1_graph):
        pn = build_sdsp_pn(l1_graph, include_acks=False, include_io=False)
        assert all(p.annotation != "ack" for p in pn.net.places)
        # without acks forward places are unbounded: not a safe net
        assert not pn.view().is_live() or not pn.view().is_safe()

    def test_include_io_counts(self, l1_graph):
        full = build_sdsp_pn(l1_graph, include_io=True)
        abstract = build_sdsp_pn(l1_graph, include_io=False)
        assert full.size == 14   # 5 compute + 4 loads + 5 stores
        assert abstract.size == 5

    def test_abstract_mode_with_pure_io_loop_rejected(self):
        from repro.dataflow import GraphBuilder

        b = GraphBuilder("copy")
        b.load("x", "X")
        b.store("st", "OUT", "x")
        with pytest.raises(NetConstructionError, match="no compute"):
            build_sdsp_pn(b.build(), include_io=False)

    def test_arc_of_place_lookup(self, l2_pn_abstract):
        pn = l2_pn_abstract
        (feedback,) = pn.sdsp.feedback_arcs
        data_place = pn.data_place_of[feedback.identifier]
        assert pn.arc_of_place(data_place) == feedback
        ack_place = pn.ack_place_of[feedback.identifier]
        assert pn.arc_of_place(ack_place) == feedback
        assert pn.arc_of_place("nonexistent") is None

    def test_timed_view(self, l1_pn_abstract):
        timed = l1_pn_abstract.timed
        assert timed.duration("A") == 1
